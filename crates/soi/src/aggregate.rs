//! Incremental aggregate state, one per `(op, target)` pair of a rule.
//!
//! The paper's γ-memory stores, for each aggregate operation, "the
//! aggregate's current value followed by a list of (value, counter) pairs
//! representing the values in the WMEs used in the computation". That is
//! exactly what [`AggState`] maintains:
//!
//! - aggregates range over the **WMEs** matched by the target CE within the
//!   SOI (not over join rows — a WME joined against three partners still
//!   contributes once), so we track distinct time tags with a per-tag row
//!   reference count;
//! - the `(value, counter)` multiset lives in a `BTreeMap`, giving O(log n)
//!   updates and O(1) `min`/`max` without rescans;
//! - `count` over an element variable counts distinct WMEs; over a
//!   set-oriented pattern variable it counts distinct *values* in the
//!   variable's domain (paper §4.1: domains are sets of values).

use sorete_base::{FxHashMap, TimeTag, Value};
use sorete_lang::analyze::{AggSpec, AggTarget};
use sorete_lang::ast::AggOp;
use std::collections::BTreeMap;

/// Incrementally-maintained state for one aggregate operation.
#[derive(Clone, Debug)]
pub struct AggState {
    /// What is being computed.
    pub spec: AggSpec,
    /// Distinct contributing WMEs: tag → (value, #rows referencing it).
    tag_refs: FxHashMap<TimeTag, (Value, u32)>,
    /// The paper's `(value, counter)` pairs: value → #distinct WMEs.
    value_counts: BTreeMap<Value, u32>,
    /// Running integer sum of numeric contributions.
    sum_i: i64,
    /// Running float sum of numeric contributions.
    sum_f: f64,
    /// Number of numeric contributions (for `avg`).
    numeric: u32,
    /// Number of integer contributions (to decide `Int` vs `Float` results).
    integral: u32,
}

impl AggState {
    /// Fresh (empty-set) state.
    pub fn new(spec: AggSpec) -> AggState {
        AggState {
            spec,
            tag_refs: FxHashMap::default(),
            value_counts: BTreeMap::new(),
            sum_i: 0,
            sum_f: 0.0,
            numeric: 0,
            integral: 0,
        }
    }

    /// The positive CE whose column feeds this aggregate.
    pub fn source_ce(&self) -> usize {
        match self.spec.target {
            AggTarget::Pv { pos_ce, .. } | AggTarget::Ce { pos_ce, .. } => pos_ce,
        }
    }

    /// Estimated live bytes: the state header plus the tag-reference map
    /// and the `(value, counter)` multiset (live entries × element size —
    /// see [`sorete_base::MemoryReport`] for the methodology).
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        (size_of::<AggState>()
            + self.tag_refs.len() * size_of::<(TimeTag, (Value, u32))>()
            + self.value_counts.len() * size_of::<(Value, u32)>()) as u64
    }

    /// A row referencing WME `tag` (with attribute value `value`) joined the
    /// SOI. Returns `true` if this WME is a *new* contributor (first row
    /// referencing it) — i.e. the multiset actually changed.
    pub fn add_row(&mut self, tag: TimeTag, value: Value) -> bool {
        let slot = self.tag_refs.entry(tag).or_insert((value, 0));
        slot.1 += 1;
        if slot.1 > 1 {
            return false;
        }
        *self.value_counts.entry(value).or_insert(0) += 1;
        match value {
            Value::Int(i) => {
                self.sum_i = self.sum_i.wrapping_add(i);
                self.sum_f += i as f64;
                self.numeric += 1;
                self.integral += 1;
            }
            Value::Float(f) => {
                self.sum_f += f;
                self.numeric += 1;
            }
            _ => {}
        }
        true
    }

    /// A row referencing WME `tag` left the SOI. Returns `true` if the WME
    /// no longer contributes (last referencing row removed).
    pub fn remove_row(&mut self, tag: TimeTag) -> bool {
        let Some(slot) = self.tag_refs.get_mut(&tag) else {
            debug_assert!(false, "removing a row whose WME was never added");
            return false;
        };
        slot.1 -= 1;
        if slot.1 > 0 {
            return false;
        }
        let (value, _) = self.tag_refs.remove(&tag).unwrap();
        match self.value_counts.get_mut(&value) {
            Some(c) if *c > 1 => {
                *c -= 1;
            }
            _ => {
                self.value_counts.remove(&value);
            }
        }
        match value {
            Value::Int(i) => {
                self.sum_i = self.sum_i.wrapping_sub(i);
                self.sum_f -= i as f64;
                self.numeric -= 1;
                self.integral -= 1;
            }
            Value::Float(f) => {
                self.sum_f -= f;
                self.numeric -= 1;
            }
            _ => {}
        }
        true
    }

    /// The aggregate's current value. `sum`/`min`/`max`/`avg` of an empty
    /// (or wholly non-numeric, for the numeric ops) set is `nil`;
    /// `count` of an empty set is `0`.
    pub fn current(&self) -> Value {
        match self.spec.op {
            AggOp::Count => match self.spec.target {
                AggTarget::Ce { .. } => Value::Int(self.tag_refs.len() as i64),
                AggTarget::Pv { .. } => Value::Int(self.value_counts.len() as i64),
            },
            AggOp::Sum => {
                if self.numeric == 0 {
                    Value::Nil
                } else if self.integral == self.numeric {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggOp::Avg => {
                if self.numeric == 0 {
                    Value::Nil
                } else {
                    Value::Float(self.sum_f / self.numeric as f64)
                }
            }
            AggOp::Min => self
                .value_counts
                .keys()
                .next()
                .copied()
                .unwrap_or(Value::Nil),
            AggOp::Max => self
                .value_counts
                .keys()
                .next_back()
                .copied()
                .unwrap_or(Value::Nil),
        }
    }

    /// Number of distinct contributing WMEs.
    pub fn wme_count(&self) -> usize {
        self.tag_refs.len()
    }

    /// The `(value, counter)` pairs, in value order (for inspection/tests).
    pub fn value_pairs(&self) -> impl Iterator<Item = (&Value, &u32)> {
        self.value_counts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::Symbol;

    fn spec(op: AggOp, pv: bool) -> AggSpec {
        let var = Symbol::new("v");
        AggSpec {
            op,
            target: if pv {
                AggTarget::Pv {
                    var,
                    pos_ce: 0,
                    attr: Symbol::new("a"),
                }
            } else {
                AggTarget::Ce { var, pos_ce: 0 }
            },
        }
    }

    fn t(n: u64) -> TimeTag {
        TimeTag::new(n)
    }

    #[test]
    fn count_ce_counts_distinct_wmes() {
        let mut s = AggState::new(spec(AggOp::Count, false));
        assert_eq!(s.current(), Value::Int(0));
        assert!(s.add_row(t(1), Value::sym("Sue")));
        assert!(s.add_row(t(2), Value::sym("Sue")));
        // Same WME referenced by a second join row: not a new contributor.
        assert!(!s.add_row(t(1), Value::sym("Sue")));
        assert_eq!(s.current(), Value::Int(2));
        assert!(!s.remove_row(t(1)));
        assert_eq!(s.current(), Value::Int(2));
        assert!(s.remove_row(t(1)));
        assert_eq!(s.current(), Value::Int(1));
    }

    #[test]
    fn count_pv_counts_distinct_values() {
        let mut s = AggState::new(spec(AggOp::Count, true));
        s.add_row(t(1), Value::sym("Sue"));
        s.add_row(t(2), Value::sym("Sue"));
        s.add_row(t(3), Value::sym("Jack"));
        // Two distinct values across three WMEs (paper: Sue appears twice
        // in team B but is one domain value).
        assert_eq!(s.current(), Value::Int(2));
        s.remove_row(t(2));
        assert_eq!(s.current(), Value::Int(2));
        s.remove_row(t(1));
        assert_eq!(s.current(), Value::Int(1));
    }

    #[test]
    fn sum_and_avg_bag_semantics_over_wmes() {
        let mut s = AggState::new(spec(AggOp::Sum, true));
        s.add_row(t(1), Value::Int(10));
        s.add_row(t(2), Value::Int(10)); // distinct WME, same value: counts again
        s.add_row(t(3), Value::Int(5));
        assert_eq!(s.current(), Value::Int(25));
        let mut a = AggState::new(spec(AggOp::Avg, true));
        a.add_row(t(1), Value::Int(10));
        a.add_row(t(2), Value::Int(20));
        assert_eq!(a.current(), Value::Float(15.0));
    }

    #[test]
    fn sum_promotes_to_float() {
        let mut s = AggState::new(spec(AggOp::Sum, true));
        s.add_row(t(1), Value::Int(1));
        s.add_row(t(2), Value::Float(0.5));
        assert_eq!(s.current(), Value::Float(1.5));
        s.remove_row(t(2));
        assert_eq!(s.current(), Value::Int(1));
    }

    #[test]
    fn min_max_track_extremes_through_removal() {
        let mut s = AggState::new(spec(AggOp::Min, true));
        let mut m = AggState::new(spec(AggOp::Max, true));
        for (tag, v) in [(1, 5), (2, 1), (3, 9)] {
            s.add_row(t(tag), Value::Int(v));
            m.add_row(t(tag), Value::Int(v));
        }
        assert_eq!(s.current(), Value::Int(1));
        assert_eq!(m.current(), Value::Int(9));
        // Removing the current extremum reveals the next one (the paper's
        // (value, counter) list exists exactly for this).
        s.remove_row(t(2));
        m.remove_row(t(3));
        assert_eq!(s.current(), Value::Int(5));
        assert_eq!(m.current(), Value::Int(5));
    }

    #[test]
    fn empty_set_values() {
        for op in [AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Avg] {
            let s = AggState::new(spec(op, true));
            assert_eq!(s.current(), Value::Nil, "{:?}", op);
        }
        assert_eq!(
            AggState::new(spec(AggOp::Count, true)).current(),
            Value::Int(0)
        );
    }

    #[test]
    fn value_pairs_expose_the_papers_counters() {
        // The γ-memory's "(value, counter) pairs".
        let mut s = AggState::new(spec(AggOp::Count, true));
        s.add_row(t(1), Value::sym("Sue"));
        s.add_row(t(2), Value::sym("Sue"));
        s.add_row(t(3), Value::sym("Jack"));
        let pairs: Vec<(String, u32)> = s.value_pairs().map(|(v, c)| (v.to_string(), *c)).collect();
        assert_eq!(pairs, vec![("Jack".to_string(), 1), ("Sue".to_string(), 2)]);
        assert_eq!(s.wme_count(), 3);
    }

    #[test]
    fn non_numeric_sum_is_nil() {
        let mut s = AggState::new(spec(AggOp::Sum, true));
        s.add_row(t(1), Value::sym("a"));
        assert_eq!(s.current(), Value::Nil);
        // Min/max still work on symbols (lexical order).
        let mut m = AggState::new(spec(AggOp::Max, true));
        m.add_row(t(1), Value::sym("a"));
        m.add_row(t(2), Value::sym("c"));
        assert_eq!(m.current(), Value::sym("c"));
    }
}
