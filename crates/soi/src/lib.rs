#![warn(missing_docs)]
//! The paper's core contribution, matcher-agnostic: aggregation of regular
//! instantiations into **set-oriented instantiations** (SOIs) via the
//! S-node algorithm of Figure 3.
//!
//! "The key insight is that set-oriented instantiations are made up of
//! aggregations of regular instantiations" (§5). Any tuple-level matcher —
//! Rete, TREAT, even a naive recompute — can therefore bolt an [`SNode`]
//! onto the end of a set-oriented rule: it feeds complete candidate rows in
//! with `+`/`-` signs and forwards the `+`/`-`/`time` deltas that come out.
//!
//! ```
//! use sorete_soi::SNode;
//! use sorete_base::{CsDelta, RuleId, Symbol, TimeTag, Value, Wme};
//! use sorete_lang::{analyze_rule, parse_rule};
//! use std::sync::Arc;
//!
//! let rule = Arc::new(analyze_rule(&parse_rule(
//!     "(p dups { [item ^k <k>] <P> } :scalar (<k>) :test ((count <P>) > 1) (set-remove <P>))"
//! ).unwrap()).unwrap());
//! let mut snode = SNode::new(RuleId::new(0), rule);
//!
//! // Two WMEs with the same key: the second token crosses the count
//! // threshold and the SOI flows to the conflict set.
//! let w = |tag: u64| Wme::new(TimeTag::new(tag), Symbol::new("item"),
//!                             vec![(Symbol::new("k"), Value::Int(7))]);
//! let wm = [w(1), w(2)];
//! let lookup = |t: TimeTag, a: Symbol| wm[(t.raw() - 1) as usize].get(a);
//! let mut out = Vec::new();
//! snode.insert_row(&[TimeTag::new(1)], &lookup, &mut out);
//! assert!(out.is_empty(), "count=1 fails the test");
//! snode.insert_row(&[TimeTag::new(2)], &lookup, &mut out);
//! assert!(matches!(out[0], CsDelta::Insert(_)));
//! ```

pub mod aggregate;
pub mod snode;

pub use aggregate::AggState;
pub use snode::{SNode, SoiStats};

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::{CsDelta, FxHashMap, RuleId, Symbol, TimeTag, Value, Wme};
    use sorete_lang::{analyze_rule, parse_rule};
    use std::sync::Arc;

    /// Tiny fake working memory for driving an S-node by hand.
    struct Wm {
        wmes: FxHashMap<TimeTag, Wme>,
        next: u64,
    }

    impl Wm {
        fn new() -> Wm {
            Wm {
                wmes: FxHashMap::default(),
                next: 1,
            }
        }

        fn make(&mut self, class: &str, slots: &[(&str, Value)]) -> TimeTag {
            let tag = TimeTag::new(self.next);
            self.next += 1;
            let wme = Wme::new(
                tag,
                Symbol::new(class),
                slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
            );
            self.wmes.insert(tag, wme);
            tag
        }

        fn lookup(&self) -> impl Fn(TimeTag, Symbol) -> Value + '_ {
            move |tag, attr| self.wmes[&tag].get(attr)
        }
    }

    fn snode(src: &str) -> SNode {
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        SNode::new(RuleId::new(0), rule)
    }

    #[test]
    fn chg_new_emits_insert_when_test_passes() {
        let mut sn = snode("(p r [player ^name <n> ^team A] (write <n>))");
        let mut wm = Wm::new();
        let w1 = wm.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        );
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        assert_eq!(out.len(), 1);
        let CsDelta::Insert(item) = &out[0] else {
            panic!("expected insert, got {:?}", out)
        };
        assert_eq!(item.rows.len(), 1);
        assert!(item.key.is_soi());
        assert_eq!(sn.candidate_count(), 1);
    }

    #[test]
    fn chg_new_with_failing_test_stays_inactive() {
        // Needs at least 2 WMEs before flowing.
        let mut sn = snode("(p r { [player ^team A] <P> } :test ((count <P>) > 1) (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("player", &[("team", Value::sym("A"))]);
        let w2 = wm.make("player", &[("team", Value::sym("A"))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        assert!(out.is_empty(), "chg=new then fail must not flow: {:?}", out);
        assert_eq!(sn.candidate_count(), 1, "candidate SOI still tracked");
        // Second token crosses the threshold. It is more recent, so the
        // figure's `new-time` + inactive path activates with `+`.
        sn.insert_row(&[w2], &wm.lookup(), &mut out);
        assert_eq!(out.len(), 1);
        let CsDelta::Insert(item) = &out[0] else {
            panic!("{:?}", out)
        };
        assert_eq!(item.aggregates, vec![Value::Int(2)]);
        assert_eq!(item.rows.len(), 2);
        // Head row is the most recent.
        assert_eq!(item.rows[0].as_ref(), &[w2]);
    }

    #[test]
    fn chg_fail_deactivates_active_soi() {
        let mut sn = snode("(p r { [player ^team A] <P> } :test ((count <P>) > 1) (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("player", &[("team", Value::sym("A"))]);
        let w2 = wm.make("player", &[("team", Value::sym("A"))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        sn.insert_row(&[w2], &wm.lookup(), &mut out);
        out.clear();
        // Dropping back below the threshold → `-` token.
        sn.remove_row(&[w2], &wm.lookup(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], CsDelta::Remove(_)), "{:?}", out);
        // The candidate SOI survives in the γ-memory (one row left).
        assert_eq!(sn.candidate_count(), 1);
    }

    #[test]
    fn chg_delete_removes_candidate_and_emits_remove_if_active() {
        let mut sn = snode("(p r [player ^team A] (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("player", &[("team", Value::sym("A"))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        out.clear();
        sn.remove_row(&[w1], &wm.lookup(), &mut out);
        assert!(matches!(&out[0], CsDelta::Remove(_)));
        assert_eq!(sn.candidate_count(), 0);
    }

    #[test]
    fn chg_delete_of_inactive_soi_emits_nothing() {
        let mut sn = snode("(p r { [player ^team A] <P> } :test ((count <P>) > 1) (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("player", &[("team", Value::sym("A"))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        sn.remove_row(&[w1], &wm.lookup(), &mut out);
        assert!(out.is_empty(), "{:?}", out);
        assert_eq!(sn.candidate_count(), 0);
    }

    #[test]
    fn chg_new_time_on_active_soi_emits_time_token() {
        let mut sn = snode("(p r [player ^team A] (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("player", &[("team", Value::sym("A"))]);
        let w2 = wm.make("player", &[("team", Value::sym("A"))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        out.clear();
        // w2 is more recent → becomes head → new-time → `time` token.
        sn.insert_row(&[w2], &wm.lookup(), &mut out);
        assert_eq!(out.len(), 1);
        let CsDelta::Retime(info) = &out[0] else {
            panic!("{:?}", out)
        };
        assert_eq!(info.recency.as_ref(), &[w2]);
        // The slim token materializes back to the full SOI on demand.
        let item = sn
            .materialize(match &info.key {
                sorete_base::InstKey::Soi { parts, .. } => parts,
                other => panic!("{:?}", other),
            })
            .expect("active SOI materializes");
        assert_eq!(item.rows.len(), 2);
    }

    #[test]
    fn chg_same_time_on_active_soi_updates_contents() {
        // Two CEs so a *less* recent combined row can arrive second.
        let mut sn = snode("(p r [a ^x <x>] [b ^y <y>] (halt))");
        let mut wm = Wm::new();
        let a1 = wm.make("a", &[("x", Value::Int(1))]);
        let b1 = wm.make("b", &[("y", Value::Int(1))]);
        let a0 = wm.make("a", &[("x", Value::Int(0))]);
        let mut out = Vec::new();
        // Row (a0, b1) has recency [3,2]; insert it first.
        sn.insert_row(&[a0, b1], &wm.lookup(), &mut out);
        out.clear();
        // Row (a1, b1) has recency [2,1] — strictly less recent → same-time.
        sn.insert_row(&[a1, b1], &wm.lookup(), &mut out);
        assert_eq!(out.len(), 1);
        let CsDelta::Retime(info) = &out[0] else {
            panic!("{:?}", out)
        };
        let item = sn
            .materialize(match &info.key {
                sorete_base::InstKey::Soi { parts, .. } => parts,
                other => panic!("{:?}", other),
            })
            .expect("active SOI materializes");
        assert_eq!(item.rows.len(), 2);
        // Head is unchanged.
        assert_eq!(item.rows[0].as_ref(), &[a0, b1]);
        assert_eq!(item.rows[1].as_ref(), &[a1, b1]);
    }

    #[test]
    fn same_time_activation_extension() {
        // Threshold 2, tokens arriving out of recency order: the second
        // token is *older* than the head, so chg=same-time — the printed
        // figure would leave the SOI inactive forever; our documented
        // extension activates it.
        let mut sn = snode("(p r { [a ^x <x>] <P> } :test ((count <P>) > 1) (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("a", &[("x", Value::Int(1))]);
        let w2 = wm.make("a", &[("x", Value::Int(2))]);
        let mut out = Vec::new();
        sn.insert_row(&[w2], &wm.lookup(), &mut out); // head (newer)
        assert!(out.is_empty());
        sn.insert_row(&[w1], &wm.lookup(), &mut out); // older → same-time
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], CsDelta::Insert(_)), "{:?}", out);
    }

    #[test]
    fn scalar_ce_partitions_into_separate_sois() {
        // Figure 2, compete2: set CE + regular CE → one SOI per regular match.
        let mut sn =
            snode("(p compete2 [player ^name <n> ^team A] (player ^name <n> ^team B) (halt))");
        let mut wm = Wm::new();
        let jack_a = wm.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        );
        let jack_b1 = wm.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("B"))],
        );
        let jack_b2 = wm.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("B"))],
        );
        let mut out = Vec::new();
        sn.insert_row(&[jack_a, jack_b1], &wm.lookup(), &mut out);
        sn.insert_row(&[jack_a, jack_b2], &wm.lookup(), &mut out);
        // Two distinct scalar-CE WMEs → two SOIs.
        assert_eq!(sn.candidate_count(), 2);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| matches!(d, CsDelta::Insert(_))));
    }

    #[test]
    fn scalar_pv_partitions_by_value() {
        // RemoveDups-style: :scalar (<n>) partitions one set CE by value.
        let mut sn = snode(
            "(p r { [player ^name <n>] <P> } :scalar (<n>) :test ((count <P>) > 1) (set-remove <P>))",
        );
        let mut wm = Wm::new();
        let s1 = wm.make("player", &[("name", Value::sym("Sue"))]);
        let s2 = wm.make("player", &[("name", Value::sym("Sue"))]);
        let j1 = wm.make("player", &[("name", Value::sym("Jack"))]);
        let mut out = Vec::new();
        sn.insert_row(&[s1], &wm.lookup(), &mut out);
        sn.insert_row(&[j1], &wm.lookup(), &mut out);
        sn.insert_row(&[s2], &wm.lookup(), &mut out);
        assert_eq!(sn.candidate_count(), 2, "partitioned by <n>'s value");
        // Only the Sue-partition (2 WMEs) passes the count test.
        assert_eq!(out.len(), 1);
        let CsDelta::Insert(item) = &out[0] else {
            panic!("{:?}", out)
        };
        assert_eq!(item.rows.len(), 2);
        assert_eq!(item.aggregates, vec![Value::Int(2)]);
    }

    #[test]
    fn test_referencing_scalar_variable() {
        // `:test` mixing an aggregate with a scalar var bound by a regular CE.
        let mut sn =
            snode("(p r (limit ^n <k>) { [item ^kind x] <P> } :test ((count <P>) >= <k>) (halt))");
        let mut wm = Wm::new();
        let lim = wm.make("limit", &[("n", Value::Int(2))]);
        let i1 = wm.make("item", &[("kind", Value::sym("x"))]);
        let i2 = wm.make("item", &[("kind", Value::sym("x"))]);
        let mut out = Vec::new();
        sn.insert_row(&[lim, i1], &wm.lookup(), &mut out);
        assert!(out.is_empty(), "1 < 2: {:?}", out);
        sn.insert_row(&[lim, i2], &wm.lookup(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], CsDelta::Insert(_)));
    }

    #[test]
    fn version_bumps_on_every_content_change() {
        let mut sn = snode("(p r [a ^x <x>] (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("a", &[("x", Value::Int(1))]);
        let w2 = wm.make("a", &[("x", Value::Int(2))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        let v1 = match &out[0] {
            CsDelta::Insert(i) => i.version,
            other => panic!("{:?}", other),
        };
        out.clear();
        sn.insert_row(&[w2], &wm.lookup(), &mut out);
        let v2 = match &out[0] {
            CsDelta::Retime(i) => i.version,
            other => panic!("{:?}", other),
        };
        assert!(
            v2 > v1,
            "an SOI that changes becomes eligible to fire again"
        );
    }

    #[test]
    fn stats_count_work() {
        let mut sn = snode("(p r { [a ^x <x>] <P> } :test ((count <P>) > 0) (halt))");
        let mut wm = Wm::new();
        let w1 = wm.make("a", &[("x", Value::Int(1))]);
        let mut out = Vec::new();
        sn.insert_row(&[w1], &wm.lookup(), &mut out);
        let st = sn.stats();
        assert_eq!(st.activations, 1);
        assert!(st.test_evals >= 1);
        assert!(st.aggregate_updates >= 1);
    }
}
