//! The S-node algorithm — Figure 3 of the paper, line for line.
//!
//! An S-node sits after the last test node of a set-oriented rule. Its
//! γ-memory holds one entry per *candidate set-oriented instantiation*
//! (SOI); each entry is the paper's `(Tokens, Status, AV)` triple. Tokens
//! arriving from the join network (complete candidate instantiations, i.e.
//! rows of matched WME tags) are processed in three stages:
//!
//! 1. **Find the SOI and the place within it** — locate the γ-entry whose
//!    key (scalar-CE tags `C` + scalar-PV values `P`) matches the token,
//!    insert/remove the token at its conflict-set-ordered position, and set
//!    `chg ∈ {new, delete, new-time, same-time}`.
//! 2. **Update the aggregates and re-evaluate** — incrementally maintain
//!    `APVs`/`ACEs` and evaluate the test expression `T`; on failure
//!    `chg := fail`.
//! 3. **Decide the flow of the SOI** — emit `+`, `-` or `time` tokens to
//!    the production node.
//!
//! Two documented extensions to the figure as printed:
//!
//! - `chg = same-time` with a previously **inactive** entry whose test now
//!   passes activates the SOI (the figure only activates on `new-time`;
//!   without this, a count crossing its threshold via a non-head token
//!   would never reach the conflict set);
//! - `chg = same-time` with an **active** entry emits a `time` token, so
//!   the conflict set learns the SOI changed and may fire it again (§6).
//!   Like the paper's pointer-shared SOI ("updates to an active SOI …
//!   transparently update the SOI in the conflict set"), `time` tokens are
//!   slim: consumers re-materialize the SOI's rows only when it fires.

use crate::aggregate::AggState;
use sorete_base::{
    ConflictItem, CsDelta, FxHashMap, InstKey, KeyPart, MatchStats, RetimeInfo, RuleId, Symbol,
    TimeTag, TraceEvent, Tracer, Value,
};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::ast::AggOp;
use sorete_lang::eval::{eval_truthy, Env};
use std::sync::Arc;

/// Work counters for one S-node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SoiStats {
    /// Tokens processed (S-node activations).
    pub activations: u64,
    /// Incremental aggregate multiset updates.
    pub aggregate_updates: u64,
    /// Test-expression evaluations.
    pub test_evals: u64,
    /// `+` tokens emitted (SOI entered the conflict set).
    pub plus_tokens: u64,
    /// `-` tokens emitted (SOI left the conflict set).
    pub minus_tokens: u64,
    /// `time` tokens emitted (active SOI changed content/recency).
    pub retime_tokens: u64,
    /// γ-entries created (candidate SOIs appearing).
    pub gamma_created: u64,
    /// γ-entries dropped (candidate SOIs emptied out).
    pub gamma_dropped: u64,
    /// Full aggregate-value materializations (every `AV` re-read when an
    /// SOI is delivered to the conflict set) — the non-incremental
    /// counterpart of `aggregate_updates`.
    pub aggregate_recomputes: u64,
}

impl SoiStats {
    /// Component-wise sum.
    pub fn merged(&self, other: &SoiStats) -> SoiStats {
        SoiStats {
            activations: self.activations + other.activations,
            aggregate_updates: self.aggregate_updates + other.aggregate_updates,
            test_evals: self.test_evals + other.test_evals,
            plus_tokens: self.plus_tokens + other.plus_tokens,
            minus_tokens: self.minus_tokens + other.minus_tokens,
            retime_tokens: self.retime_tokens + other.retime_tokens,
            gamma_created: self.gamma_created + other.gamma_created,
            gamma_dropped: self.gamma_dropped + other.gamma_dropped,
            aggregate_recomputes: self.aggregate_recomputes + other.aggregate_recomputes,
        }
    }

    /// Fold these counters into a [`MatchStats`]. This is the *single*
    /// point where S-node activity reaches the matcher-level counters:
    /// matchers never increment `snode_activations` / `aggregate_updates`
    /// themselves, so the two views cannot diverge.
    pub fn merge_into(&self, stats: &mut MatchStats) {
        stats.snode_activations += self.activations;
        stats.aggregate_updates += self.aggregate_updates;
    }
}

/// The paper's `chg` variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Chg {
    New,
    Delete,
    Fail,
    NewTime,
    SameTime,
}

/// One candidate SOI: the `(Tokens, Status, AV)` triple of the γ-memory.
#[derive(Clone, Debug)]
struct GammaEntry {
    /// Candidate rows, conflict-set ordered: most recent first.
    rows: Vec<Row>,
    /// `Status`: is this SOI currently in the conflict set?
    active: bool,
    /// `AV`: one incremental state per aggregate operation.
    aggs: Vec<AggState>,
    /// Content-change counter (re-arms refraction, §6).
    version: u64,
}

#[derive(Clone, Debug)]
struct Row {
    /// Matched WME per positive CE.
    tags: Box<[TimeTag]>,
    /// Tags sorted descending — the OPS5 recency key.
    recency: Box<[TimeTag]>,
}

fn recency_of(tags: &[TimeTag]) -> Box<[TimeTag]> {
    let mut r: Vec<TimeTag> = tags.to_vec();
    r.sort_unstable_by(|a, b| b.cmp(a));
    r.into_boxed_slice()
}

/// An S-node: γ-memory plus the rule-derived static data
/// `(C, P, APVs, ACEs, T)`.
pub struct SNode {
    rule_id: RuleId,
    rule: Arc<AnalyzedRule>,
    /// `C`: positive indices of non-set-oriented CEs (key tags).
    key_tags: Vec<usize>,
    /// `P`: scalar-PV value sources `(pos_ce, attr)` (key values).
    key_vals: Vec<(usize, Symbol)>,
    /// Scalar variables readable inside `T`: `(var, pos_ce, attr)`.
    scalar_vars: Vec<(Symbol, usize, Symbol)>,
    /// The γ-memory.
    entries: FxHashMap<Box<[KeyPart]>, GammaEntry>,
    stats: SoiStats,
    tracer: Tracer,
}

impl SNode {
    /// Build the S-node for a set-oriented rule.
    pub fn new(rule_id: RuleId, rule: Arc<AnalyzedRule>) -> SNode {
        debug_assert!(rule.is_set_oriented);
        let key_tags = rule.scalar_ces.clone();
        let key_vals: Vec<(usize, Symbol)> =
            rule.scalar_pvs.iter().map(|p| (p.pos_ce, p.attr)).collect();
        let scalar_vars: Vec<(Symbol, usize, Symbol)> = rule
            .var_sources
            .iter()
            .filter(|(_, s)| !s.set_oriented)
            .map(|(v, s)| (*v, s.pos_ce, s.attr))
            .collect();
        SNode {
            rule_id,
            rule,
            key_tags,
            key_vals,
            scalar_vars,
            entries: FxHashMap::default(),
            stats: SoiStats::default(),
            tracer: Tracer::null(),
        }
    }

    /// Install the tracer through which the node emits `snode` /
    /// `aggregate` events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Counters.
    pub fn stats(&self) -> SoiStats {
        self.stats
    }

    /// Number of candidate SOIs currently in the γ-memory.
    pub fn candidate_count(&self) -> usize {
        self.entries.len()
    }

    /// Total candidate rows across every γ-entry.
    pub fn gamma_rows(&self) -> u64 {
        self.entries.values().map(|e| e.rows.len() as u64).sum()
    }

    /// Estimated live bytes of the γ-memory — keys, `(Tokens, Status, AV)`
    /// triples, and the incremental aggregate states. Live-set methodology
    /// (see [`sorete_base::MemoryReport`]): element sizes × live counts,
    /// no allocator slack.
    pub fn gamma_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = 0u64;
        for (key, entry) in &self.entries {
            bytes += (size_of::<Box<[KeyPart]>>() + key.len() * size_of::<KeyPart>()) as u64;
            bytes += size_of::<GammaEntry>() as u64;
            for row in &entry.rows {
                // `tags` and `recency` are two boxed slices per row.
                bytes += 2
                    * (size_of::<Box<[TimeTag]>>() + row.tags.len() * size_of::<TimeTag>()) as u64;
            }
            bytes += entry.aggs.iter().map(AggState::approx_bytes).sum::<u64>();
        }
        bytes
    }

    /// The rule this node serves.
    pub fn rule(&self) -> &Arc<AnalyzedRule> {
        &self.rule
    }

    fn key_of(
        &self,
        tags: &[TimeTag],
        lookup: &dyn Fn(TimeTag, Symbol) -> Value,
    ) -> Box<[KeyPart]> {
        let mut key = Vec::with_capacity(self.key_tags.len() + self.key_vals.len());
        for &pos in &self.key_tags {
            key.push(KeyPart::Tag(tags[pos]));
        }
        for &(pos, attr) in &self.key_vals {
            key.push(KeyPart::Val(lookup(tags[pos], attr)));
        }
        key.into_boxed_slice()
    }

    /// Process a `+` token (a complete candidate instantiation joined).
    pub fn insert_row(
        &mut self,
        tags: &[TimeTag],
        lookup: &dyn Fn(TimeTag, Symbol) -> Value,
        out: &mut Vec<CsDelta>,
    ) {
        self.stats.activations += 1;
        let rule_name = self.rule.name;
        self.tracer.emit_physical(|| TraceEvent::SnodeActivation {
            rule: rule_name,
            insert: true,
        });
        let key = self.key_of(tags, lookup);

        // Stage 1: find the SOI and place the token within it.
        if !self.entries.contains_key(&key) {
            self.stats.gamma_created += 1;
        }
        let entry = self
            .entries
            .entry(key.clone())
            .or_insert_with(|| GammaEntry {
                rows: Vec::new(),
                active: false,
                aggs: self
                    .rule
                    .aggregates
                    .iter()
                    .map(|s| AggState::new(*s))
                    .collect(),
                version: 0,
            });
        let row = Row {
            tags: tags.into(),
            recency: recency_of(tags),
        };
        let mut chg = if entry.rows.is_empty() {
            entry.rows.push(row);
            Chg::New
        } else {
            let pos = entry
                .rows
                .iter()
                .position(|r| row.recency > r.recency)
                .unwrap_or(entry.rows.len());
            entry.rows.insert(pos, row);
            if pos == 0 {
                Chg::NewTime
            } else {
                Chg::SameTime
            }
        };
        entry.version += 1;

        // Stage 2: update the aggregates and re-evaluate the test.
        let mut touched = 0u64;
        for agg in &mut entry.aggs {
            let src = agg.source_ce();
            let value = match agg.spec.target {
                sorete_lang::analyze::AggTarget::Pv { attr, .. } => lookup(tags[src], attr),
                sorete_lang::analyze::AggTarget::Ce { .. } => Value::Nil,
            };
            if agg.add_row(tags[src], value) {
                self.stats.aggregate_updates += 1;
                touched += 1;
            }
        }
        if touched > 0 {
            self.tracer.emit_physical(|| TraceEvent::AggregateUpdate {
                rule: rule_name,
                count: touched,
            });
        }
        if !self.eval_test(&key, lookup) {
            chg = Chg::Fail;
        }

        // Stage 3: decide the flow of the SOI.
        self.flow(&key, chg, out);
    }

    /// Process a `-` token (a candidate instantiation un-joined).
    pub fn remove_row(
        &mut self,
        tags: &[TimeTag],
        lookup: &dyn Fn(TimeTag, Symbol) -> Value,
        out: &mut Vec<CsDelta>,
    ) {
        self.stats.activations += 1;
        let rule_name = self.rule.name;
        self.tracer.emit_physical(|| TraceEvent::SnodeActivation {
            rule: rule_name,
            insert: false,
        });
        let key = self.key_of(tags, lookup);

        // Stage 1.
        let Some(entry) = self.entries.get_mut(&key) else {
            debug_assert!(false, "removal for an unknown SOI key");
            return;
        };
        let Some(pos) = entry.rows.iter().position(|r| r.tags.as_ref() == tags) else {
            debug_assert!(false, "removal for a token not in the SOI");
            return;
        };
        entry.rows.remove(pos);
        entry.version += 1;
        let mut chg = if entry.rows.is_empty() {
            Chg::Delete
        } else if pos == 0 {
            Chg::NewTime
        } else {
            Chg::SameTime
        };

        // Stage 2 (skipped for delete, per the figure).
        if chg != Chg::Delete {
            let mut touched = 0u64;
            for agg in &mut entry.aggs {
                let src = agg.source_ce();
                if agg.remove_row(tags[src]) {
                    self.stats.aggregate_updates += 1;
                    touched += 1;
                }
            }
            if touched > 0 {
                self.tracer.emit_physical(|| TraceEvent::AggregateUpdate {
                    rule: rule_name,
                    count: touched,
                });
            }
            if !self.eval_test(&key, lookup) {
                chg = Chg::Fail;
            }
        }

        // Stage 3.
        self.flow(&key, chg, out);
    }

    fn flow(&mut self, key: &[KeyPart], chg: Chg, out: &mut Vec<CsDelta>) {
        match chg {
            Chg::New => {
                // The figure sends `+` for `new`; a failing test would have
                // rewritten chg to `fail`, so reaching here means T passed.
                let item = self.item_for(key);
                self.stats.aggregate_recomputes += item.aggregates.len() as u64;
                self.stats.plus_tokens += 1;
                let entry = self.entries.get_mut(key).unwrap();
                entry.active = true;
                out.push(CsDelta::Insert(item));
            }
            Chg::Delete => {
                let entry = self.entries.remove(key).unwrap();
                self.stats.gamma_dropped += 1;
                if entry.active {
                    self.stats.minus_tokens += 1;
                    out.push(CsDelta::Remove(self.inst_key(key)));
                }
            }
            Chg::Fail => {
                let entry = self.entries.get_mut(key).unwrap();
                if entry.active {
                    entry.active = false;
                    self.stats.minus_tokens += 1;
                    out.push(CsDelta::Remove(self.inst_key(key)));
                }
            }
            Chg::NewTime | Chg::SameTime => {
                let entry = &self.entries[key];
                if entry.active {
                    // "Only a pointer is passed": a slim `time` token —
                    // consumers re-materialize the SOI when it fires.
                    self.stats.retime_tokens += 1;
                    out.push(CsDelta::Retime(RetimeInfo {
                        key: self.inst_key(key),
                        version: entry.version,
                        recency: entry.rows[0].recency.clone(),
                    }));
                } else {
                    let item = self.item_for(key);
                    self.stats.aggregate_recomputes += item.aggregates.len() as u64;
                    self.stats.plus_tokens += 1;
                    self.entries.get_mut(key).unwrap().active = true;
                    out.push(CsDelta::Insert(item));
                }
            }
        }
    }

    /// Current full contents of an *active* SOI, for `Matcher::materialize`.
    pub fn materialize(&self, parts: &[KeyPart]) -> Option<ConflictItem> {
        let key: Box<[KeyPart]> = parts.into();
        let entry = self.entries.get(&key)?;
        if !entry.active {
            return None;
        }
        Some(self.item_for(&key))
    }

    fn inst_key(&self, key: &[KeyPart]) -> InstKey {
        InstKey::Soi {
            rule: self.rule_id,
            parts: key.into(),
        }
    }

    fn item_for(&self, key: &[KeyPart]) -> ConflictItem {
        let entry = &self.entries[key];
        ConflictItem {
            key: self.inst_key(key),
            rows: entry.rows.iter().map(|r| r.tags.clone()).collect(),
            aggregates: entry.aggs.iter().map(|a| a.current()).collect(),
            version: entry.version,
            recency: entry.rows[0].recency.clone(),
            specificity: self.rule.specificity,
        }
    }

    /// Evaluate `T` for the entry under `key`. Evaluation errors count as
    /// failure (the SOI simply does not flow), matching OPS5's forgiving
    /// predicate semantics.
    ///
    /// `lookup` must resolve every tag currently held by the entry's rows —
    /// including, during removal, the WME being removed (matchers call the
    /// S-node before forgetting the WME).
    fn eval_test(&mut self, key: &[KeyPart], lookup: &dyn Fn(TimeTag, Symbol) -> Value) -> bool {
        if self.rule.tests.is_empty() {
            return true;
        }
        self.stats.test_evals += 1;
        let entry = &self.entries[key];
        let env = GammaEnv {
            node: self,
            entry,
            key,
            lookup,
        };
        self.rule
            .tests
            .iter()
            .all(|t| eval_truthy(t, &env).unwrap_or(false))
    }
}

/// Evaluation environment over a γ-entry: scalar variables resolve through
/// the key (for `:scalar` PVs) or the head row + WM lookup (for variables
/// bound by regular CEs, whose WME is shared by every row of the SOI);
/// aggregates resolve to their incremental state.
struct GammaEnv<'a> {
    node: &'a SNode,
    entry: &'a GammaEntry,
    key: &'a [KeyPart],
    lookup: &'a dyn Fn(TimeTag, Symbol) -> Value,
}

impl Env for GammaEnv<'_> {
    fn var(&self, v: Symbol) -> Option<Value> {
        // `:scalar` PVs are part of the key.
        if let Some(i) = self.node.rule.scalar_pvs.iter().position(|p| p.var == v) {
            if let KeyPart::Val(val) = &self.key[self.node.key_tags.len() + i] {
                return Some(*val);
            }
        }
        let (_, pos_ce, attr) = self
            .node
            .scalar_vars
            .iter()
            .find(|(name, _, _)| *name == v)?;
        let tag = self.entry.rows.first()?.tags[*pos_ce];
        Some((self.lookup)(tag, *attr))
    }

    fn agg(&self, op: AggOp, var: Symbol) -> Option<Value> {
        let idx = self.node.rule.agg_index(op, var)?;
        Some(self.entry.aggs[idx].current())
    }
}
