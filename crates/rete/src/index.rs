//! Hash-index support for equality joins.
//!
//! Two building blocks, both designed so the indexed matcher produces a
//! delta stream *byte-identical* to the pure-scan matcher:
//!
//! * [`IndexedList`] — an insertion-ordered list with O(1) tombstone
//!   removal. Scan-mode iteration walks the list in arrival order exactly
//!   like the plain `Vec` it replaces, while removal no longer pays the
//!   O(n) `iter().position()` walk.
//! * [`JoinIndex`] — buckets of list entries keyed by the values of the
//!   equality-tested attributes ([`IndexKey`]). A bucket preserves the
//!   arrival order of its members, so probing a bucket visits candidates
//!   in the same relative order a full scan would.
//!
//! Both use *sequence-stamped* entries: every insertion gets a fresh
//! sequence number, and an entry is live only while the owner's live map
//! (or the token slab) still maps the item to that exact sequence. This
//! makes tombstones immune to id reuse — a rolled-back transaction
//! re-asserts the same `TimeTag`, and the token slab recycles `TokId`s,
//! but stale bucket entries can never alias the reincarnation because the
//! sequence differs.

use sorete_base::{FxHashMap, Symbol, Value, Wme};
use std::hash::Hash;

/// Values of the equality-tested attributes, in test order. Small arities
/// avoid the `Vec` allocation (almost every real rule joins on one or two
/// attributes).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// One equality test.
    One(Value),
    /// Two equality tests.
    Two(Value, Value),
    /// Three or more equality tests.
    Many(Box<[Value]>),
}

impl IndexKey {
    /// Build a key from the attribute values, in test order.
    pub fn from_values(mut vals: impl Iterator<Item = Value>) -> IndexKey {
        let a = vals
            .next()
            .expect("an equality index has at least one test");
        match vals.next() {
            None => IndexKey::One(a),
            Some(b) => match vals.next() {
                None => IndexKey::Two(a, b),
                Some(c) => {
                    let mut all = vec![a, b, c];
                    all.extend(vals);
                    IndexKey::Many(all.into())
                }
            },
        }
    }
}

/// Key of a WME under an equality index on `attrs`.
pub fn wme_key(attrs: &[Symbol], wme: &Wme) -> IndexKey {
    IndexKey::from_values(attrs.iter().map(|&a| wme.get(a)))
}

/// An insertion-ordered collection with O(1) removal.
///
/// Entries are `(item, seq)` pairs; `live` maps each present item to the
/// sequence of its current entry. Removal just drops the map entry;
/// iteration filters entries against the map; the entry vector is
/// compacted once tombstones outnumber live entries.
#[derive(Debug, Default)]
pub struct IndexedList<T> {
    entries: Vec<(T, u64)>,
    live: FxHashMap<T, u64>,
    next_seq: u64,
    dead: usize,
}

impl<T: Copy + Eq + Hash> IndexedList<T> {
    /// An empty list.
    pub fn new() -> IndexedList<T> {
        IndexedList {
            entries: Vec::new(),
            live: FxHashMap::default(),
            next_seq: 0,
            dead: 0,
        }
    }

    /// Append `item`; returns the sequence stamped on this entry.
    pub fn push(&mut self, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.live.insert(item, seq).is_some() {
            // Re-insertion of a present item orphans its old entry.
            self.dead += 1;
        }
        self.entries.push((item, seq));
        seq
    }

    /// Remove `item` in O(1); returns whether it was present.
    pub fn remove(&mut self, item: T) -> bool {
        if self.live.remove(&item).is_none() {
            return false;
        }
        self.dead += 1;
        if self.dead > self.live.len() && self.dead >= 16 {
            let live = &self.live;
            self.entries.retain(|&(t, s)| live.get(&t) == Some(&s));
            self.dead = 0;
        }
        true
    }

    /// Live element count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live elements remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The sequence of `item`'s current entry, if present.
    pub fn seq_of(&self, item: T) -> Option<u64> {
        self.live.get(&item).copied()
    }

    /// Live elements, in insertion order.
    pub fn iter_live(&self) -> impl Iterator<Item = T> + '_ {
        self.iter_live_seq().map(|(t, _)| t)
    }

    /// Live `(item, seq)` pairs, in insertion order.
    pub fn iter_live_seq(&self) -> impl Iterator<Item = (T, u64)> + '_ {
        self.entries
            .iter()
            .filter(|&&(t, s)| self.live.get(&t) == Some(&s))
            .map(|&(t, s)| (t, s))
    }

    /// Live elements collected into a `Vec`, in insertion order.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter_live().collect()
    }

    /// Estimated live bytes: each live element occupies one `(item, seq)`
    /// list entry plus one live-map slot (live-set methodology — see
    /// [`sorete_base::MemoryReport`]; tombstones and capacity slack are
    /// excluded, so the figure shrinks immediately on removal).
    pub fn approx_bytes(&self) -> u64 {
        (2 * self.live.len() * std::mem::size_of::<(T, u64)>()) as u64
    }
}

impl<T: Copy + Eq + Hash> FromIterator<T> for IndexedList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> IndexedList<T> {
        let mut list = IndexedList::new();
        for item in iter {
            list.push(item);
        }
        list
    }
}

/// One hash bucket: entries in arrival order plus a tombstone count.
#[derive(Debug)]
struct Bucket<T> {
    entries: Vec<(T, u64)>,
    dead: u32,
}

/// A hash index from [`IndexKey`] to the list entries carrying that key.
///
/// The index stores `(item, seq)` pairs and delegates liveness to the
/// caller (the owning list's live map, or the token slab), so removal is
/// a counter bump plus occasional bucket compaction — never a scan of the
/// whole memory.
#[derive(Debug, Default)]
pub struct JoinIndex<T> {
    buckets: FxHashMap<IndexKey, Bucket<T>>,
}

impl<T: Copy> JoinIndex<T> {
    /// An empty index.
    pub fn new() -> JoinIndex<T> {
        JoinIndex {
            buckets: FxHashMap::default(),
        }
    }

    /// Register an entry under `key`.
    pub fn insert(&mut self, key: IndexKey, item: T, seq: u64) {
        self.buckets
            .entry(key)
            .or_insert_with(|| Bucket {
                entries: Vec::new(),
                dead: 0,
            })
            .entries
            .push((item, seq));
    }

    /// Live members of `key`'s bucket, in arrival order.
    pub fn probe(&self, key: &IndexKey, live: impl Fn(T, u64) -> bool) -> Vec<T> {
        match self.buckets.get(key) {
            Some(b) => b
                .entries
                .iter()
                .filter(|&&(t, s)| live(t, s))
                .map(|&(t, _)| t)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Record that one entry under `key` died; compacts the bucket once
    /// tombstones reach half its length (dropping it when empty).
    pub fn note_dead(&mut self, key: &IndexKey, live: impl Fn(T, u64) -> bool) {
        let Some(b) = self.buckets.get_mut(key) else {
            return;
        };
        b.dead += 1;
        if b.dead as usize * 2 > b.entries.len() {
            b.entries.retain(|&(t, s)| live(t, s));
            b.dead = 0;
            if b.entries.is_empty() {
                self.buckets.remove(key);
            }
        }
    }

    /// Distinct keys currently bucketed.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Non-tombstoned entries across every bucket (each bucket's entry
    /// count minus its recorded dead entries).
    pub fn live_entry_count(&self) -> u64 {
        self.buckets
            .values()
            .map(|b| (b.entries.len() as u64).saturating_sub(b.dead as u64))
            .sum()
    }

    /// Estimated live bytes of the bucket table: one key per bucket (plus
    /// the spilled values of `Many` keys) and the live `(item, seq)`
    /// entries. Live-set methodology — see [`sorete_base::MemoryReport`].
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for (key, b) in &self.buckets {
            bytes += std::mem::size_of::<IndexKey>() as u64;
            if let IndexKey::Many(vals) = key {
                bytes += (vals.len() * std::mem::size_of::<Value>()) as u64;
            }
            bytes += (b.entries.len() as u64).saturating_sub(b.dead as u64)
                * std::mem::size_of::<(T, u64)>() as u64;
        }
        bytes
    }

    /// Live bucket contents, for validation against a rebuilt index.
    pub fn live_groups(&self, live: impl Fn(T, u64) -> bool) -> Vec<(IndexKey, Vec<T>)> {
        self.buckets
            .iter()
            .map(|(k, b)| {
                (
                    k.clone(),
                    b.entries
                        .iter()
                        .filter(|&&(t, s)| live(t, s))
                        .map(|&(t, _)| t)
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_list_preserves_order_and_reuses_nothing() {
        let mut l: IndexedList<u32> = IndexedList::new();
        l.push(1);
        l.push(2);
        l.push(3);
        assert_eq!(l.to_vec(), vec![1, 2, 3]);
        assert!(l.remove(2));
        assert!(!l.remove(2), "double remove is a no-op");
        assert_eq!(l.to_vec(), vec![1, 3]);
        assert_eq!(l.len(), 2);
        // Re-insertion lands at the *end* (arrival order, not old slot).
        l.push(2);
        assert_eq!(l.to_vec(), vec![1, 3, 2]);
    }

    #[test]
    fn indexed_list_reinsert_gets_fresh_seq() {
        let mut l: IndexedList<u32> = IndexedList::new();
        let s1 = l.push(7);
        l.remove(7);
        let s2 = l.push(7);
        assert_ne!(s1, s2);
        assert_eq!(l.seq_of(7), Some(s2));
        assert_eq!(l.to_vec(), vec![7]);
    }

    #[test]
    fn indexed_list_compacts_under_churn() {
        let mut l: IndexedList<u32> = IndexedList::new();
        for i in 0..64 {
            l.push(i);
        }
        for i in 0..63 {
            l.remove(i);
        }
        assert_eq!(l.to_vec(), vec![63]);
        assert!(l.entries.len() < 64, "tombstones were compacted");
    }

    #[test]
    fn join_index_probe_respects_seq_liveness() {
        // The owner's live map decides liveness; a stale seq never matches.
        let mut owner: IndexedList<u32> = IndexedList::new();
        let mut idx: JoinIndex<u32> = JoinIndex::new();
        let key = IndexKey::One(Value::Int(1));
        let s1 = owner.push(10);
        idx.insert(key.clone(), 10, s1);
        owner.remove(10);
        let s2 = owner.push(10); // same item reincarnated
        idx.insert(key.clone(), 10, s2);
        let live = |t, s| owner.seq_of(t) == Some(s);
        assert_eq!(idx.probe(&key, live), vec![10], "stale entry filtered");
    }

    #[test]
    fn join_index_note_dead_compacts_and_drops_empty_buckets() {
        let mut owner: IndexedList<u32> = IndexedList::new();
        let mut idx: JoinIndex<u32> = JoinIndex::new();
        let key = IndexKey::Two(Value::Int(1), Value::sym("x"));
        for i in 0..4 {
            let s = owner.push(i);
            idx.insert(key.clone(), i, s);
        }
        for i in 0..4 {
            owner.remove(i);
            idx.note_dead(&key, |t, s| owner.seq_of(t) == Some(s));
        }
        assert_eq!(idx.bucket_count(), 0, "empty bucket removed");
    }

    #[test]
    fn index_key_arities() {
        let one = IndexKey::from_values([Value::Int(1)].into_iter());
        assert_eq!(one, IndexKey::One(Value::Int(1)));
        let two = IndexKey::from_values([Value::Int(1), Value::Int(2)].into_iter());
        assert_eq!(two, IndexKey::Two(Value::Int(1), Value::Int(2)));
        let many = IndexKey::from_values((0..3).map(Value::Int));
        assert!(matches!(many, IndexKey::Many(_)));
    }

    #[test]
    fn numeric_cross_equality_hashes_to_one_bucket() {
        // `Value`'s Hash matches its PartialEq: Int(1) and Float(1.0) are
        // equal, so they must land in the same bucket.
        let k1 = IndexKey::One(Value::Int(1));
        let k2 = IndexKey::One(Value::Float(1.0));
        assert_eq!(k1, k2);
        let mut idx: JoinIndex<u32> = JoinIndex::new();
        idx.insert(k1, 1, 0);
        assert_eq!(idx.probe(&k2, |_, _| true), vec![1]);
    }
}
