//! Graphviz export of the Rete network — for debugging, documentation,
//! and seeing the paper's "network untouched except at the end" claim at a
//! glance (S-nodes hang off production nodes of set-oriented rules only).

use crate::matcher::ReteMatcher;
use crate::nodes::{BetaNode, EqJoin};
use sorete_base::NetProfile;
use std::fmt::Write as _;

/// `\n[idx: ^a ^b]` when the node equality-hashes on `^a ^b`, else empty —
/// so network dumps show at a glance which joins are indexed.
fn index_label(eq: &Option<EqJoin>) -> String {
    match eq {
        Some(e) => {
            let attrs: Vec<String> = e.attrs.iter().map(|a| format!("^{a}")).collect();
            format!("\\n[idx: {}]", attrs.join(" "))
        }
        None => String::new(),
    }
}

/// Heat annotations: per-node activation/self-time label lines and a
/// white→red fill colour scaled by the node's share of the hottest node's
/// self time. Built from a [`NetProfile`] when profiling is enabled.
struct Heat {
    /// `(label_suffix, fillcolor)` per profile node id ("α0", "n3", …).
    by_id: sorete_base::FxHashMap<String, (String, &'static str)>,
}

/// Orange-red ramp, cold to hot (Graphviz hex fills).
const HEAT_COLORS: [&str; 6] = [
    "#ffffff", "#fee6ce", "#fdae6b", "#f16913", "#d94801", "#7f2704",
];

impl Heat {
    fn from_profile(prof: &NetProfile) -> Heat {
        let max_nanos = prof.nodes.iter().map(|n| n.nanos).max().unwrap_or(0);
        let mut by_id = sorete_base::FxHashMap::default();
        for n in &prof.nodes {
            let bucket = if max_nanos == 0 || n.nanos == 0 {
                0
            } else {
                // 1..=5, proportional to the hottest node.
                1 + (n.nanos * (HEAT_COLORS.len() as u64 - 2) / max_nanos) as usize
            };
            let label = format!("\\n{} acts, {}µs", n.activations, n.nanos / 1_000);
            by_id.insert(n.id.clone(), (label, HEAT_COLORS[bucket]));
        }
        Heat { by_id }
    }

    /// Heat label suffix for a node, empty when unprofiled.
    fn label(&self, id: &str) -> &str {
        self.by_id.get(id).map(|(l, _)| l.as_str()).unwrap_or("")
    }

    /// `, fillcolor="#..."` style override for a node, empty when
    /// unprofiled.
    fn fill(&self, id: &str) -> String {
        match self.by_id.get(id) {
            Some((_, c)) => format!(", style=filled, fillcolor=\"{c}\""),
            None => String::new(),
        }
    }
}

impl ReteMatcher {
    /// Render the network as Graphviz DOT. Alpha memories are boxes, joins
    /// are diamonds, memories are ellipses (with live token counts),
    /// negatives are houses, productions are double octagons; set-oriented
    /// productions show their S-node γ-memory size.
    ///
    /// When per-node profiling is enabled, every node additionally carries
    /// a heat annotation (`N acts, Tµs`) and a white→red fill colour
    /// scaled by its share of the hottest node's self time.
    pub fn network_dot(&self) -> String {
        let heat = self
            .profiling_enabled()
            .then(|| Heat::from_profile(&self.build_profile()));
        let style_of = |id: &str, default: &str| -> String {
            match &heat {
                Some(h) => h.fill(id),
                None => default.to_string(),
            }
        };
        let heat_of = |id: &str| -> String {
            match &heat {
                Some(h) => h.label(id).to_string(),
                None => String::new(),
            }
        };
        let mut out = String::new();
        out.push_str("digraph rete {\n  rankdir=TB;\n  node [fontsize=10];\n");
        if heat.is_some() {
            out.push_str("  // heat: fill ∝ node self time, label = acts, self µs\n");
        }

        for (id, amem) in self.alpha_memories() {
            let pid = format!("α{id}");
            let mut label = format!("α{} {}", id, amem.key.class);
            for t in &amem.key.consts {
                let _ = write!(label, "\\n^{} {:?}", t.attr, t.kind);
            }
            let _ = writeln!(
                out,
                "  a{} [shape=box{}, label=\"{}\\n|{}| wmes{}\"];",
                id,
                style_of(&pid, ", style=filled, fillcolor=lightyellow"),
                label.replace('"', "'"),
                amem.wmes.len(),
                heat_of(&pid)
            );
            for succ in &amem.successors {
                let _ = writeln!(out, "  a{} -> n{} [style=dashed];", id, succ.index());
            }
        }

        for (id, node) in self.beta_nodes() {
            let i = id.index();
            let pid = format!("n{i}");
            match node {
                BetaNode::Memory {
                    tokens,
                    children,
                    parent,
                } => {
                    let kind = if parent.is_none() { "top" } else { "memory" };
                    let _ = writeln!(
                        out,
                        "  n{} [shape=ellipse{}, label=\"{} n{}\\n|{}| tokens{}\"];",
                        i,
                        style_of(&pid, ""),
                        kind,
                        i,
                        tokens.len(),
                        heat_of(&pid)
                    );
                    for c in children {
                        let _ = writeln!(out, "  n{} -> n{};", i, c.index());
                    }
                }
                BetaNode::Join {
                    children,
                    tests,
                    eq,
                    ..
                } => {
                    let _ = writeln!(
                        out,
                        "  n{} [shape=diamond{}, label=\"join n{}\\n{} tests{}{}\"];",
                        i,
                        style_of(&pid, ""),
                        i,
                        tests.len(),
                        index_label(eq),
                        heat_of(&pid)
                    );
                    for c in children {
                        let _ = writeln!(out, "  n{} -> n{};", i, c.index());
                    }
                }
                BetaNode::Negative {
                    children,
                    tokens,
                    eq,
                    ..
                } => {
                    let _ = writeln!(
                        out,
                        "  n{} [shape=house{}, \
                         label=\"negative n{}\\n|{}| tokens{}{}\"];",
                        i,
                        style_of(&pid, ", style=filled, fillcolor=mistyrose"),
                        i,
                        tokens.len(),
                        index_label(eq),
                        heat_of(&pid)
                    );
                    for c in children {
                        let _ = writeln!(out, "  n{} -> n{};", i, c.index());
                    }
                }
                BetaNode::Production { prod, tokens, .. } => {
                    let (name, snode_info) = self.production_label(*prod);
                    let _ = writeln!(
                        out,
                        "  n{} [shape=doubleoctagon{}, \
                         label=\"{}\\n|{}| matches{}{}\"];",
                        i,
                        style_of(&pid, ", style=filled, fillcolor=lightblue"),
                        name,
                        tokens.len(),
                        snode_info,
                        heat_of(&pid)
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_lang::matcher::Matcher;
    use sorete_lang::{analyze_rule, parse_rule};
    use std::sync::Arc;

    #[test]
    fn dot_export_shows_structure() {
        let mut m = ReteMatcher::new();
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r1 (a ^x <v>) -(b ^x <v>) (halt))").unwrap()).unwrap(),
        ));
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r2 [a ^x <v>] (halt))").unwrap()).unwrap(),
        ));
        let dot = m.network_dot();
        assert!(dot.starts_with("digraph rete {"), "{}", dot);
        assert!(dot.contains("join"), "{}", dot);
        assert!(dot.contains("negative"), "{}", dot);
        assert!(dot.contains("r1"), "{}", dot);
        assert!(dot.contains("S-node"), "set rule shows its S-node: {}", dot);
        assert!(dot.ends_with("}\n"));
        // Parenthesised sanity: every arrow references declared nodes.
        for line in dot.lines().filter(|l| l.contains("->")) {
            assert!(line.trim_start().starts_with('a') || line.trim_start().starts_with('n'));
        }
    }

    #[test]
    fn dot_export_shows_heat_when_profiling() {
        use sorete_base::{Symbol, TimeTag, Value, Wme};
        let mut m = ReteMatcher::new();
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r1 (a ^x <v>) (b ^x <v>) (halt))").unwrap()).unwrap(),
        ));
        let plain = m.network_dot();
        assert!(!plain.contains("// heat"), "no heat without profiling");
        m.set_profiling(true);
        let x = Symbol::new("x");
        m.insert_wme(&Wme::new(
            TimeTag::new(1),
            Symbol::new("a"),
            vec![(x, Value::Int(1))],
        ));
        m.insert_wme(&Wme::new(
            TimeTag::new(2),
            Symbol::new("b"),
            vec![(x, Value::Int(1))],
        ));
        let dot = m.network_dot();
        assert!(dot.contains("// heat"), "{}", dot);
        assert!(dot.contains(" acts, "), "heat labels on nodes: {}", dot);
        assert!(dot.contains("fillcolor=\"#"), "heat fills: {}", dot);
    }
}
