//! Graphviz export of the Rete network — for debugging, documentation,
//! and seeing the paper's "network untouched except at the end" claim at a
//! glance (S-nodes hang off production nodes of set-oriented rules only).

use crate::matcher::ReteMatcher;
use crate::nodes::{BetaNode, EqJoin};
use std::fmt::Write as _;

/// `\n[idx: ^a ^b]` when the node equality-hashes on `^a ^b`, else empty —
/// so network dumps show at a glance which joins are indexed.
fn index_label(eq: &Option<EqJoin>) -> String {
    match eq {
        Some(e) => {
            let attrs: Vec<String> = e.attrs.iter().map(|a| format!("^{a}")).collect();
            format!("\\n[idx: {}]", attrs.join(" "))
        }
        None => String::new(),
    }
}

impl ReteMatcher {
    /// Render the network as Graphviz DOT. Alpha memories are boxes, joins
    /// are diamonds, memories are ellipses (with live token counts),
    /// negatives are houses, productions are double octagons; set-oriented
    /// productions show their S-node γ-memory size.
    pub fn network_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph rete {\n  rankdir=TB;\n  node [fontsize=10];\n");

        for (id, amem) in self.alpha_memories() {
            let mut label = format!("α{} {}", id, amem.key.class);
            for t in &amem.key.consts {
                let _ = write!(label, "\\n^{} {:?}", t.attr, t.kind);
            }
            let _ = writeln!(
                out,
                "  a{} [shape=box, style=filled, fillcolor=lightyellow, label=\"{}\\n|{}| wmes\"];",
                id,
                label.replace('"', "'"),
                amem.wmes.len()
            );
            for succ in &amem.successors {
                let _ = writeln!(out, "  a{} -> n{} [style=dashed];", id, succ.index());
            }
        }

        for (id, node) in self.beta_nodes() {
            let i = id.index();
            match node {
                BetaNode::Memory {
                    tokens,
                    children,
                    parent,
                } => {
                    let kind = if parent.is_none() { "top" } else { "memory" };
                    let _ = writeln!(
                        out,
                        "  n{} [shape=ellipse, label=\"{} n{}\\n|{}| tokens\"];",
                        i,
                        kind,
                        i,
                        tokens.len()
                    );
                    for c in children {
                        let _ = writeln!(out, "  n{} -> n{};", i, c.index());
                    }
                }
                BetaNode::Join {
                    children,
                    tests,
                    eq,
                    ..
                } => {
                    let _ = writeln!(
                        out,
                        "  n{} [shape=diamond, label=\"join n{}\\n{} tests{}\"];",
                        i,
                        i,
                        tests.len(),
                        index_label(eq)
                    );
                    for c in children {
                        let _ = writeln!(out, "  n{} -> n{};", i, c.index());
                    }
                }
                BetaNode::Negative {
                    children,
                    tokens,
                    eq,
                    ..
                } => {
                    let _ = writeln!(
                        out,
                        "  n{} [shape=house, style=filled, fillcolor=mistyrose, \
                         label=\"negative n{}\\n|{}| tokens{}\"];",
                        i,
                        i,
                        tokens.len(),
                        index_label(eq)
                    );
                    for c in children {
                        let _ = writeln!(out, "  n{} -> n{};", i, c.index());
                    }
                }
                BetaNode::Production { prod, tokens, .. } => {
                    let (name, snode_info) = self.production_label(*prod);
                    let _ = writeln!(
                        out,
                        "  n{} [shape=doubleoctagon, style=filled, fillcolor=lightblue, \
                         label=\"{}\\n|{}| matches{}\"];",
                        i,
                        name,
                        tokens.len(),
                        snode_info
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_lang::matcher::Matcher;
    use sorete_lang::{analyze_rule, parse_rule};
    use std::sync::Arc;

    #[test]
    fn dot_export_shows_structure() {
        let mut m = ReteMatcher::new();
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r1 (a ^x <v>) -(b ^x <v>) (halt))").unwrap()).unwrap(),
        ));
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r2 [a ^x <v>] (halt))").unwrap()).unwrap(),
        ));
        let dot = m.network_dot();
        assert!(dot.starts_with("digraph rete {"), "{}", dot);
        assert!(dot.contains("join"), "{}", dot);
        assert!(dot.contains("negative"), "{}", dot);
        assert!(dot.contains("r1"), "{}", dot);
        assert!(dot.contains("S-node"), "set rule shows its S-node: {}", dot);
        assert!(dot.ends_with("}\n"));
        // Parenthesised sanity: every arrow references declared nodes.
        for line in dot.lines().filter(|l| l.contains("->")) {
            assert!(line.trim_start().starts_with('a') || line.trim_start().starts_with('n'));
        }
    }
}
