#![warn(missing_docs)]
//! Rete match network with the paper's S-node extension.
//!
//! The network structure is classic Rete — shared alpha memories, binary
//! join chains, Doorenbos-style token trees for incremental retraction,
//! negated-CE nodes — "leaving the network untouched, except at the end of
//! the network for each set-oriented rule" (§5), where an
//! [`sorete_soi::SNode`] aggregates candidate instantiations into SOIs.
//!
//! ```
//! use sorete_rete::ReteMatcher;
//! use sorete_lang::{analyze_rule, parse_rule, Matcher};
//! use sorete_base::{CsDelta, Symbol, TimeTag, Value, Wme};
//! use std::sync::Arc;
//!
//! let mut rete = ReteMatcher::new();
//! rete.add_rule(Arc::new(analyze_rule(&parse_rule(
//!     "(p pair (a ^x <v>) (b ^x <v>) (halt))").unwrap()).unwrap()));
//! let wme = |tag, class: &str| Wme::new(TimeTag::new(tag), Symbol::new(class),
//!                                       vec![(Symbol::new("x"), Value::Int(1))]);
//! rete.insert_wme(&wme(1, "a"));
//! rete.insert_wme(&wme(2, "b"));
//! let deltas = rete.drain_deltas();
//! assert!(matches!(deltas.as_slice(), [CsDelta::Insert(_)]));
//! ```

pub mod dot;
pub mod index;
pub mod matcher;
pub mod nodes;

pub use matcher::ReteMatcher;

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::{CsDelta, FxHashMap, InstKey, Symbol, TimeTag, Value, Wme};
    use sorete_lang::matcher::Matcher;
    use sorete_lang::{analyze_rule, parse_rule};
    use std::sync::Arc;

    /// Test harness: a matcher plus a hand-maintained conflict set.
    struct Harness {
        m: ReteMatcher,
        next_tag: u64,
        wmes: FxHashMap<TimeTag, Wme>,
        cs: FxHashMap<InstKey, sorete_base::ConflictItem>,
    }

    impl Harness {
        fn new(rules: &[&str]) -> Harness {
            let mut m = ReteMatcher::new();
            for src in rules {
                let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
                m.add_rule(r);
            }
            Harness {
                m,
                next_tag: 1,
                wmes: FxHashMap::default(),
                cs: FxHashMap::default(),
            }
        }

        fn make(&mut self, class: &str, slots: &[(&str, Value)]) -> TimeTag {
            let tag = TimeTag::new(self.next_tag);
            self.next_tag += 1;
            let wme = Wme::new(
                tag,
                Symbol::new(class),
                slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
            );
            self.wmes.insert(tag, wme.clone());
            self.m.insert_wme(&wme);
            self.apply_deltas();
            tag
        }

        fn remove(&mut self, tag: TimeTag) {
            let wme = self.wmes.remove(&tag).unwrap();
            self.m.remove_wme(&wme);
            self.apply_deltas();
        }

        fn apply_deltas(&mut self) {
            for d in self.m.drain_deltas() {
                match d {
                    CsDelta::Insert(item) => {
                        let prev = self.cs.insert(item.key.clone(), item);
                        assert!(prev.is_none(), "duplicate insert into conflict set");
                    }
                    CsDelta::Remove(key) => {
                        let prev = self.cs.remove(&key);
                        assert!(prev.is_some(), "removal of unknown conflict-set entry");
                    }
                    CsDelta::Retime(info) => {
                        // May be followed by a Remove in the same batch.
                        if let Some(fresh) = self.m.materialize(&info.key) {
                            let prev = self.cs.insert(info.key.clone(), fresh);
                            assert!(prev.is_some(), "retime of unknown conflict-set entry");
                        }
                    }
                }
            }
        }

        fn size(&self) -> usize {
            self.cs.len()
        }

        fn player(&mut self, name: &str, team: &str) -> TimeTag {
            self.make(
                "player",
                &[("name", Value::sym(name)), ("team", Value::sym(team))],
            )
        }
    }

    /// The paper's Figure 1 working memory.
    fn figure1_wm(h: &mut Harness) -> Vec<TimeTag> {
        vec![
            h.player("Jack", "A"),
            h.player("Janice", "A"),
            h.player("Sue", "B"),
            h.player("Jack", "B"),
            h.player("Sue", "B"),
        ]
    }

    const COMPETE: &str = "(p compete
        (player ^name <n1> ^team A)
        (player ^name <n2> ^team B)
        (write <n1> <n2>))";

    #[test]
    fn figure1_six_instantiations() {
        let mut h = Harness::new(&[COMPETE]);
        figure1_wm(&mut h);
        assert_eq!(h.size(), 6, "2 A-players × 3 B-players");
    }

    #[test]
    fn figure2_all_set_lhs_one_soi() {
        let mut h = Harness::new(&[
            "(p compete1 [player ^name <n1> ^team A] [player ^name <n2> ^team B] (halt))",
        ]);
        figure1_wm(&mut h);
        assert_eq!(h.size(), 1, "a fully set-oriented LHS produces one SOI");
        let item = h.cs.values().next().unwrap();
        assert_eq!(item.rows.len(), 6, "the SOI contains the entire relation");
    }

    #[test]
    fn figure2_mixed_lhs_partitions_by_regular_ce() {
        let mut h = Harness::new(&[
            "(p compete2 [player ^name <n1> ^team A] (player ^name <n2> ^team B) (halt))",
        ]);
        figure1_wm(&mut h);
        // One SOI per B-team WME (3 of them), each aggregating both A players.
        assert_eq!(h.size(), 3);
        for item in h.cs.values() {
            assert_eq!(item.rows.len(), 2);
        }
    }

    #[test]
    fn join_on_shared_variable() {
        let mut h = Harness::new(&[
            "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B) (halt))",
        ]);
        figure1_wm(&mut h);
        // Only Jack is on both teams.
        assert_eq!(h.size(), 1);
        let item = h.cs.values().next().unwrap();
        assert_eq!(item.rows[0].len(), 2);
    }

    #[test]
    fn incremental_removal() {
        let mut h = Harness::new(&[COMPETE]);
        let tags = figure1_wm(&mut h);
        assert_eq!(h.size(), 6);
        h.remove(tags[0]); // Jack leaves team A
        assert_eq!(h.size(), 3);
        h.remove(tags[2]); // one Sue leaves team B
        assert_eq!(h.size(), 2);
        h.remove(tags[1]); // Janice leaves team A
        assert_eq!(h.size(), 0);
        assert_eq!(h.m.token_count(), 1, "only the dummy token survives");
    }

    #[test]
    fn soi_tracks_removal() {
        let mut h = Harness::new(&["(p all [player ^team B ^name <n>] (halt))"]);
        let tags = figure1_wm(&mut h);
        assert_eq!(h.size(), 1);
        assert_eq!(h.cs.values().next().unwrap().rows.len(), 3);
        h.remove(tags[2]);
        assert_eq!(h.cs.values().next().unwrap().rows.len(), 2);
        h.remove(tags[3]);
        h.remove(tags[4]);
        assert_eq!(h.size(), 0, "empty SOI leaves the conflict set");
    }

    #[test]
    fn negation_blocks_and_unblocks() {
        let mut h = Harness::new(&[
            "(p lonely (player ^name <n> ^team A) -(player ^name <n> ^team B) (halt))",
        ]);
        let jack_a = h.player("Jack", "A");
        assert_eq!(h.size(), 1, "no B-team Jack yet");
        let jack_b = h.player("Jack", "B");
        assert_eq!(h.size(), 0, "blocked by B-team Jack");
        h.remove(jack_b);
        assert_eq!(h.size(), 1, "unblocked after retraction");
        h.remove(jack_a);
        assert_eq!(h.size(), 0);
    }

    #[test]
    fn negation_first_ce() {
        let mut h = Harness::new(&["(p empty -(player ^team A) (goal ^want check) (halt))"]);
        h.make("goal", &[("want", Value::sym("check"))]);
        assert_eq!(h.size(), 1);
        let a = h.player("X", "A");
        assert_eq!(h.size(), 0);
        h.remove(a);
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn same_wme_feeding_consecutive_ces_no_duplicates() {
        // A single WME satisfies both CEs; the deepest-first activation
        // ordering must produce exactly one instantiation (w, w).
        let mut h = Harness::new(&["(p twice (player ^name <n>) (player ^name <n>) (halt))"]);
        h.player("Solo", "A");
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn alpha_and_beta_sharing_across_rules() {
        let shared_a = "(p r1 (player ^team A ^name <n>) (player ^team B ^name <n>) (halt))";
        let shared_b = "(p r2 (player ^team A ^name <n>) (player ^team B ^name <n>) (write <n>))";
        let mut both = ReteMatcher::new();
        for src in [shared_a, shared_b] {
            both.add_rule(Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap()));
        }
        let mut single = ReteMatcher::new();
        single.add_rule(Arc::new(
            analyze_rule(&parse_rule(shared_a).unwrap()).unwrap(),
        ));
        // Identical LHS prefix: the second rule adds only its production node.
        assert_eq!(both.alpha_count(), single.alpha_count());
        assert_eq!(both.node_count(), single.node_count() + 1);
    }

    #[test]
    fn set_and_regular_rules_share_alpha_memories() {
        let mut m = ReteMatcher::new();
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r1 (player ^team A) (halt))").unwrap()).unwrap(),
        ));
        let before = m.alpha_count();
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r2 [player ^team A] (halt))").unwrap()).unwrap(),
        ));
        assert_eq!(
            m.alpha_count(),
            before,
            "set-oriented CE reuses the alpha memory"
        );
    }

    #[test]
    fn count_test_gates_soi() {
        let mut h = Harness::new(&["(p dups { [player ^name <n> ^team <t>] <P> }
               :scalar (<n> <t>)
               :test ((count <P>) > 1)
               (set-remove <P>))"]);
        h.player("Sue", "B");
        assert_eq!(h.size(), 0);
        h.player("Sue", "B");
        assert_eq!(h.size(), 1, "duplicate Sue/B detected");
        h.player("Jack", "B");
        assert_eq!(h.size(), 1, "Jack is unique — no new SOI");
        let item = h.cs.values().next().unwrap();
        assert_eq!(item.rows.len(), 2);
        assert_eq!(item.aggregates, vec![Value::Int(2)]);
    }

    #[test]
    fn switchteams_equal_count_test() {
        let mut h = Harness::new(&["(p SwitchTeams
               { [player ^team A] <ATeam> }
               { [player ^team B] <BTeam> }
               :test ((count <ATeam>) == (count <BTeam>))
               (set-modify <ATeam> ^team B)
               (set-modify <BTeam> ^team A))"]);
        h.player("Jack", "A");
        assert_eq!(h.size(), 0, "1 vs 0: no rows at all without a B player");
        h.player("Sue", "B");
        assert_eq!(h.size(), 1, "1 == 1");
        h.player("Janice", "A");
        assert_eq!(h.size(), 0, "2 vs 1");
        h.player("Mike", "B");
        assert_eq!(h.size(), 1, "2 == 2");
        let item = h.cs.values().next().unwrap();
        assert_eq!(item.rows.len(), 4, "full cross product of 2×2");
        assert_eq!(item.aggregates, vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn predicates_and_disjunction_in_alpha() {
        let mut h = Harness::new(&["(p sel (emp ^salary > 10000 ^dept << sales eng >>) (halt))"]);
        h.make(
            "emp",
            &[("salary", Value::Int(20000)), ("dept", Value::sym("sales"))],
        );
        h.make(
            "emp",
            &[("salary", Value::Int(5000)), ("dept", Value::sym("eng"))],
        );
        h.make(
            "emp",
            &[("salary", Value::Int(20000)), ("dept", Value::sym("hr"))],
        );
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn intra_ce_variable_test() {
        let mut h = Harness::new(&["(p self (edge ^from <x> ^to <x>) (halt))"]);
        h.make("edge", &[("from", Value::Int(1)), ("to", Value::Int(2))]);
        assert_eq!(h.size(), 0);
        h.make("edge", &[("from", Value::Int(3)), ("to", Value::Int(3))]);
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Harness::new(&[
            COMPETE,
            "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B) (halt))",
        ]);
        figure1_wm(&mut h);
        let s = h.m.stats();
        assert!(s.alpha_activations >= 5);
        assert!(s.tokens_created >= 6);
        // The `pair` rule joins on <n> — a pure-equality join, so the
        // default (indexed) matcher answers it with hash probes.
        assert!(s.indexed_nodes >= 1);
        assert!(s.index_probes > 0, "the `pair` rule probes its hash index");
        assert_eq!(s.join_tests, 0, "no residual tests remain");
    }

    #[test]
    fn scan_mode_counts_join_tests() {
        let mut m = ReteMatcher::with_indexing(false);
        m.add_rule(Arc::new(
            analyze_rule(
                &parse_rule(
                    "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B) (halt))",
                )
                .unwrap(),
            )
            .unwrap(),
        ));
        let mk = |tag: u64, name: &str, team: &str| {
            Wme::new(
                TimeTag::new(tag),
                Symbol::new("player"),
                vec![
                    (Symbol::new("name"), Value::sym(name)),
                    (Symbol::new("team"), Value::sym(team)),
                ],
            )
        };
        m.insert_wme(&mk(1, "Jack", "A"));
        m.insert_wme(&mk(2, "Jack", "B"));
        let s = m.stats();
        assert!(s.join_tests > 0, "scan mode evaluates every test");
        assert_eq!(s.index_probes, 0);
        assert_eq!(s.indexed_nodes, 0);
        assert_eq!(m.algorithm_name(), "rete-scan");
    }

    #[test]
    fn indexed_and_scan_agree_and_validate() {
        let rules = &[
            COMPETE,
            "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B) (halt))",
            "(p lonely (player ^name <n> ^team A) -(player ^name <n> ^team B) (halt))",
        ];
        let mut idx = ReteMatcher::new();
        let mut scan = ReteMatcher::with_indexing(false);
        for src in rules {
            let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
            idx.add_rule(r.clone());
            scan.add_rule(r);
        }
        let mk = |tag: u64, name: &str, team: &str| {
            Wme::new(
                TimeTag::new(tag),
                Symbol::new("player"),
                vec![
                    (Symbol::new("name"), Value::sym(name)),
                    (Symbol::new("team"), Value::sym(team)),
                ],
            )
        };
        let script = [
            mk(1, "Jack", "A"),
            mk(2, "Janice", "A"),
            mk(3, "Sue", "B"),
            mk(4, "Jack", "B"),
            mk(5, "Sue", "B"),
        ];
        for w in &script {
            idx.insert_wme(w);
            scan.insert_wme(w);
            assert_eq!(
                format!("{:?}", idx.drain_deltas()),
                format!("{:?}", scan.drain_deltas()),
                "indexed and scan delta streams must be byte-identical"
            );
            idx.validate_indexes().unwrap();
        }
        for w in [&script[3], &script[0]] {
            idx.remove_wme(w);
            scan.remove_wme(w);
            assert_eq!(
                format!("{:?}", idx.drain_deltas()),
                format!("{:?}", scan.drain_deltas())
            );
            idx.validate_indexes().unwrap();
        }
        let (si, ss) = (idx.stats(), scan.stats());
        assert!(si.join_tests <= ss.join_tests);
        assert!(si.index_probes > 0);
    }

    #[test]
    fn retime_emitted_on_soi_growth() {
        let mut h = Harness::new(&["(p all [player ^team A] (halt))"]);
        h.player("Jack", "A");
        h.player("Janice", "A");
        // Growth reported through Retime; conflict set still has one entry
        // whose version advanced.
        assert_eq!(h.size(), 1);
        let item = h.cs.values().next().unwrap();
        assert!(item.version >= 2);
        assert_eq!(item.rows.len(), 2);
    }
}
