//! Rete network data structures.
//!
//! The network is a graph with cycles of reference (nodes know their
//! children; alpha memories know their successor joins; tokens know parents
//! and children), so everything lives in typed-index arenas
//! ([`sorete_base::Arena`]) and refers to everything else by id — the
//! standard Rust idiom for graph-heavy code, and cache-friendlier than
//! `Rc<RefCell<...>>` webs.
//!
//! Topology (one level per condition element, in source order):
//!
//! ```text
//! TopMemory ── Join(CE₀) ── Memory ── Join(CE₁) ── Memory ── … ── Production
//!                │                      │
//!             AlphaMem(CE₀)          AlphaMem(CE₁)
//! ```
//!
//! A negated CE contributes a [`BetaNode::Negative`] in place of the
//! Join+Memory pair: it stores its own tokens (with per-token
//! negative-join-result lists, per Doorenbos) and only tokens with *empty*
//! join results count as present for downstream nodes. Set-oriented rules
//! end in a `Production` whose matches are routed through an
//! [`sorete_soi::SNode`] instead of going straight to the conflict set.

use crate::index::{wme_key, IndexKey, IndexedList, JoinIndex};
use sorete_base::{define_id, Symbol, TimeTag, Wme};
use sorete_lang::analyze::{ConstTest, IntraTest};
use sorete_lang::ast::Pred;

define_id!(
    /// Id of an alpha memory.
    pub struct AMemId
);
define_id!(
    /// Id of a beta-level node.
    pub struct NodeId
);
define_id!(
    /// Id of a token.
    pub struct TokId
);
define_id!(
    /// Id of a production (index into the matcher's production table).
    pub struct ProdId
);

/// Sharing key of an alpha memory: class + constant tests + intra-CE tests,
/// in source order. Two CEs with identical keys share one memory — the
/// paper's "all of the advantages of Rete such as shared tests remain".
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AlphaKey {
    /// WME class.
    pub class: Symbol,
    /// Constant tests.
    pub consts: Vec<ConstTest>,
    /// Same-WME variable tests.
    pub intras: Vec<IntraTest>,
}

impl AlphaKey {
    /// Does a WME (presented through an attribute reader) satisfy every
    /// test?
    pub fn matches(&self, class: Symbol, get: impl Fn(Symbol) -> sorete_base::Value) -> bool {
        if class != self.class {
            return false;
        }
        self.consts.iter().all(|t| t.matches(&get(t.attr)))
            && self
                .intras
                .iter()
                .all(|t| t.pred.apply(&get(t.attr), &get(t.other_attr)))
    }
}

/// An alpha memory: the WMEs passing one [`AlphaKey`], plus the beta-level
/// nodes to right-activate when it changes.
#[derive(Debug)]
pub struct AlphaMem {
    /// Sharing key.
    pub key: AlphaKey,
    /// Member WMEs, in arrival order (O(1) removal via tombstones).
    pub wmes: IndexedList<TimeTag>,
    /// Successor join/negative nodes. Kept **deepest-first** so that a WME
    /// feeding several levels of one chain activates descendants before
    /// ancestors (Doorenbos' ordering requirement — avoids duplicate
    /// matches when one WME satisfies consecutive CEs).
    pub successors: Vec<NodeId>,
    /// Equality-hash indexes over the members. One per distinct attribute
    /// tuple some successor equality-joins on; shared by all successors
    /// that join on the same attributes.
    pub indexes: Vec<AlphaIndex>,
}

/// A hash index over one alpha memory, keyed on the member WMEs' values of
/// `attrs` (in join-test order).
#[derive(Debug)]
pub struct AlphaIndex {
    /// The indexed attributes.
    pub attrs: Vec<Symbol>,
    /// Buckets of `(tag, seq)` entries; liveness delegated to `wmes`.
    pub map: JoinIndex<TimeTag>,
}

impl AlphaMem {
    /// Add a member: the arrival-order list plus every index.
    pub fn insert_wme(&mut self, tag: TimeTag, wme: &Wme) {
        let seq = self.wmes.push(tag);
        for idx in &mut self.indexes {
            idx.map.insert(wme_key(&idx.attrs, wme), tag, seq);
        }
    }

    /// Remove a member in O(1): tombstone the list and the affected
    /// bucket of every index.
    pub fn remove_wme(&mut self, tag: TimeTag, wme: &Wme) {
        if !self.wmes.remove(tag) {
            return;
        }
        let wmes = &self.wmes;
        for idx in &mut self.indexes {
            idx.map
                .note_dead(&wme_key(&idx.attrs, wme), |t, s| wmes.seq_of(t) == Some(s));
        }
    }

    /// Live members of index `i`'s bucket for `key`, in arrival order.
    pub fn probe(&self, i: usize, key: &IndexKey) -> Vec<TimeTag> {
        self.indexes[i]
            .map
            .probe(key, |t, s| self.wmes.seq_of(t) == Some(s))
    }
}

/// A beta-level join test compiled against the token chain:
/// `wme.get(attr) pred chain[ups].get(other_attr)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompiledTest {
    /// Attribute of the right (alpha) WME.
    pub attr: Symbol,
    /// Predicate.
    pub pred: Pred,
    /// How many parent links to walk from the left token (0 = the left
    /// token itself) to reach the referenced earlier CE.
    pub ups: usize,
    /// Attribute of the earlier CE's WME.
    pub other_attr: Symbol,
}

/// Compile-time plan for running a Join/Negative node's equality tests
/// through hash indexes instead of scans. Built in `add_rule` when at
/// least one of the node's [`CompiledTest`]s uses [`Pred::Eq`] (and the
/// matcher has indexing enabled).
#[derive(Debug)]
pub struct EqJoin {
    /// Right-side (alpha) attributes of the equality tests, in test order.
    pub attrs: Vec<Symbol>,
    /// Left-side extraction, one `(ups, other_attr)` per equality test:
    /// walk `ups` parent links from the left token, read `other_attr`.
    pub spec: Vec<(usize, Symbol)>,
    /// The non-equality tests, still evaluated on every bucket candidate.
    pub residual: Vec<CompiledTest>,
    /// Index into the alpha memory's `indexes` (left-activation probe).
    pub alpha: usize,
    /// Hash index over the left input's tokens (right-activation probe):
    /// the parent memory's tokens for a Join, the node's own tokens for a
    /// Negative. `None` when the Join's left input is a Negative node —
    /// its presence filter makes bucket maintenance not worth it, so right
    /// activations fall back to the scan there.
    pub left: Option<JoinIndex<TokId>>,
}

/// A beta-level node.
#[derive(Debug)]
pub enum BetaNode {
    /// A token store (the top node and one per positive CE).
    Memory {
        /// The join that feeds this memory (`None` for the top memory).
        parent: Option<NodeId>,
        /// Stored tokens, in arrival order (O(1) tombstone removal).
        tokens: IndexedList<TokId>,
        /// Children: joins, negatives, productions.
        children: Vec<NodeId>,
    },
    /// A two-input join node (no token storage).
    Join {
        /// Left input (a Memory or Negative node).
        parent: NodeId,
        /// Right input.
        amem: AMemId,
        /// Consistency tests.
        tests: Vec<CompiledTest>,
        /// Equality-hash plan (`None` ⇒ pure scan).
        eq: Option<EqJoin>,
        /// The single output Memory (plus possibly Productions).
        children: Vec<NodeId>,
        /// CE level (depth), for activation ordering.
        depth: u32,
    },
    /// A negated-CE node: stores its own tokens; a token is "present" for
    /// downstream purposes iff its negative join results are empty.
    Negative {
        /// Left input (Memory or Negative).
        parent: NodeId,
        /// Right input (the WMEs whose presence blocks).
        amem: AMemId,
        /// Consistency tests.
        tests: Vec<CompiledTest>,
        /// Equality-hash plan (`None` ⇒ pure scan). `left` indexes the
        /// node's *own* tokens, keyed through their parent chains.
        eq: Option<EqJoin>,
        /// Own tokens (blocked and unblocked), in arrival order.
        tokens: IndexedList<TokId>,
        /// Children: joins, negatives, productions.
        children: Vec<NodeId>,
        /// CE level (depth).
        depth: u32,
    },
    /// A production (terminal) node; stores one token per complete match.
    Production {
        /// Left input (Memory or Negative).
        parent: NodeId,
        /// The production it reports to.
        prod: ProdId,
        /// Tokens = current complete matches, in arrival order.
        tokens: IndexedList<TokId>,
    },
}

impl BetaNode {
    /// The children list (empty slice for productions).
    pub fn children(&self) -> &[NodeId] {
        match self {
            BetaNode::Memory { children, .. }
            | BetaNode::Join { children, .. }
            | BetaNode::Negative { children, .. } => children,
            BetaNode::Production { .. } => &[],
        }
    }

    /// Detach a child (used by excise).
    pub fn remove_child(&mut self, child: NodeId) {
        match self {
            BetaNode::Memory { children, .. }
            | BetaNode::Join { children, .. }
            | BetaNode::Negative { children, .. } => children.retain(|&c| c != child),
            BetaNode::Production { .. } => {}
        }
    }

    /// Append a child.
    pub fn push_child(&mut self, child: NodeId) {
        match self {
            BetaNode::Memory { children, .. }
            | BetaNode::Join { children, .. }
            | BetaNode::Negative { children, .. } => children.push(child),
            BetaNode::Production { .. } => panic!("productions have no children"),
        }
    }

    /// Static kind label, as used by trace events and profiles.
    pub fn kind_label(&self) -> &'static str {
        match self {
            BetaNode::Memory { parent: None, .. } => "top",
            BetaNode::Memory { .. } => "memory",
            BetaNode::Join { .. } => "join",
            BetaNode::Negative { .. } => "negative",
            BetaNode::Production { .. } => "production",
        }
    }

    /// Tokens currently stored by the node (0 for joins, which store none).
    pub fn held(&self) -> usize {
        match self {
            BetaNode::Memory { tokens, .. }
            | BetaNode::Negative { tokens, .. }
            | BetaNode::Production { tokens, .. } => tokens.len(),
            BetaNode::Join { .. } => 0,
        }
    }
}

/// A token: one node of the match tree. Chain position = CE index; positive
/// CEs contribute `wme: Some(..)`, negated CEs and productions `None`.
#[derive(Debug)]
pub struct Token {
    /// Parent token (`None` only for the dummy top token).
    pub parent: Option<TokId>,
    /// The WME matched at this level, if any.
    pub wme: Option<TimeTag>,
    /// The node whose memory holds this token.
    pub node: NodeId,
    /// Child tokens (for cascading deletion).
    pub children: Vec<TokId>,
    /// For tokens stored in a Negative node: the WMEs currently blocking it.
    pub join_results: Vec<TimeTag>,
    /// Allocation sequence (matcher-global, never reused). Hash-index
    /// entries are stamped with it so a recycled `TokId` can't alias a
    /// stale bucket entry.
    pub seq: u64,
}

/// Slab of tokens with id reuse, so long recognise–act runs don't leak.
#[derive(Default, Debug)]
pub struct TokenSlab {
    slots: Vec<Option<Token>>,
    free: Vec<TokId>,
}

impl TokenSlab {
    /// Insert a token, reusing a free slot when available.
    pub fn alloc(&mut self, token: Token) -> TokId {
        if let Some(id) = self.free.pop() {
            self.slots[id.index()] = Some(token);
            id
        } else {
            let id = TokId::new(self.slots.len());
            self.slots.push(Some(token));
            id
        }
    }

    /// Remove a token; its id may be reused.
    pub fn release(&mut self, id: TokId) -> Option<Token> {
        let t = self.slots.get_mut(id.index())?.take();
        if t.is_some() {
            self.free.push(id);
        }
        t
    }

    /// Shared access; `None` if deleted.
    pub fn get(&self, id: TokId) -> Option<&Token> {
        self.slots.get(id.index())?.as_ref()
    }

    /// Mutable access; `None` if deleted.
    pub fn get_mut(&mut self, id: TokId) -> Option<&mut Token> {
        self.slots.get_mut(id.index())?.as_mut()
    }

    /// Live token count.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Estimated live bytes: each live token plus its child list and
    /// negative-join-result list (live-set methodology — see
    /// [`sorete_base::MemoryReport`]; released slots are excluded, so the
    /// figure shrinks as match trees are torn down).
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        self.slots
            .iter()
            .flatten()
            .map(|t| {
                (size_of::<Token>()
                    + t.children.len() * size_of::<TokId>()
                    + t.join_results.len() * size_of::<TimeTag>()) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::Value;

    #[test]
    fn token_slab_reuses_slots() {
        let mut slab = TokenSlab::default();
        let a = slab.alloc(Token {
            parent: None,
            wme: None,
            node: NodeId::new(0),
            children: vec![],
            join_results: vec![],
            seq: 0,
        });
        assert_eq!(slab.live(), 1);
        slab.release(a);
        assert_eq!(slab.live(), 0);
        assert!(slab.get(a).is_none());
        let b = slab.alloc(Token {
            parent: None,
            wme: Some(TimeTag::new(7)),
            node: NodeId::new(1),
            children: vec![],
            join_results: vec![],
            seq: 0,
        });
        assert_eq!(b, a, "slot reused");
        assert_eq!(slab.get(b).unwrap().wme, Some(TimeTag::new(7)));
    }

    #[test]
    fn double_release_is_harmless() {
        let mut slab = TokenSlab::default();
        let a = slab.alloc(Token {
            parent: None,
            wme: None,
            node: NodeId::new(0),
            children: vec![],
            join_results: vec![],
            seq: 0,
        });
        assert!(slab.release(a).is_some());
        assert!(slab.release(a).is_none());
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.free.len(), 1, "freed exactly once");
    }

    #[test]
    fn alpha_key_matching() {
        use sorete_lang::analyze::{ConstTest, ConstTestKind};
        let class = Symbol::new("player");
        let key = AlphaKey {
            class,
            consts: vec![ConstTest {
                attr: Symbol::new("team"),
                kind: ConstTestKind::Pred(Pred::Eq, Value::sym("A")),
            }],
            intras: vec![],
        };
        let team_a = |attr: Symbol| {
            if attr == Symbol::new("team") {
                Value::sym("A")
            } else {
                Value::Nil
            }
        };
        assert!(key.matches(class, team_a));
        assert!(!key.matches(Symbol::new("emp"), team_a));
        assert!(!key.matches(class, |_| Value::sym("B")));
    }
}
