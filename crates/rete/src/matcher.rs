//! The Rete match engine.
//!
//! A faithful Rete (Forgy 1982) with Doorenbos-style token trees for
//! incremental removal, extended — exactly as the paper prescribes — "at the
//! end of the network for each set-oriented rule" with an S-node
//! (`sorete_soi::SNode`). The rest of the network is untouched, so regular
//! rules pay nothing, and alpha/beta node sharing works across regular and
//! set-oriented rules alike.

use crate::index::{wme_key, IndexKey, IndexedList, JoinIndex};
use crate::nodes::*;
use sorete_base::{
    Arena, ConflictItem, CsDelta, FxHashMap, InstKey, MatchStats, MemoryReport, NetProfile,
    NodeProfile, RuleId, SelfTimer, Symbol, TimeTag, TraceEvent, Tracer, Value, Wme,
};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::ast::Pred;
use sorete_lang::matcher::Matcher;
use sorete_soi::{SNode, SoiStats};
use std::sync::Arc;

struct ProdInfo {
    rule: Arc<AnalyzedRule>,
    id: RuleId,
    /// Index into `snodes` for set-oriented rules.
    snode: Option<usize>,
    /// The production's terminal node.
    pnode: NodeId,
    /// True once excised (the id stays allocated but inert).
    excised: bool,
}

struct WmeEntry {
    wme: Wme,
    /// Alpha memories this WME joined.
    amems: Vec<AMemId>,
    /// Tokens whose `wme` is this WME.
    tokens: Vec<TokId>,
    /// Negative-node tokens this WME currently blocks.
    blocked: Vec<TokId>,
}

/// The Rete matcher.
pub struct ReteMatcher {
    amems: Arena<AlphaMem, AMemId>,
    alpha_index: FxHashMap<AlphaKey, AMemId>,
    class_index: FxHashMap<Symbol, Vec<AMemId>>,
    nodes: Arena<BetaNode, NodeId>,
    tokens: TokenSlab,
    top: NodeId,
    prods: Vec<ProdInfo>,
    snodes: Vec<SNode>,
    wmes: FxHashMap<TimeTag, WmeEntry>,
    deltas: Vec<CsDelta>,
    stats: MatchStats,
    /// True while `add_rule` replays existing state into new nodes —
    /// build-time work is not charged to the runtime counters, so claim C1
    /// (regular programs unaffected) is measured on match work only.
    building: bool,
    /// Compile equality tests into hash-index probes (`true` for
    /// [`ReteMatcher::new`]); `false` reproduces the pure-scan Rete for
    /// differential testing and measurement.
    indexing: bool,
    /// Next token sequence number (never reused; stamps index entries).
    next_token_seq: u64,
    /// Physical-event stream (alpha/beta activations, probes, S-node
    /// activity). Disabled (no sinks) by default.
    tracer: Tracer,
    /// Per-node self-time profiler; `None` unless profiling is enabled.
    /// Slots interleave beta nodes (even: `node.index()*2`) and alpha
    /// memories (odd: `amem.index()*2 + 1`).
    prof: Option<SelfTimer>,
}

/// Profiler slot of a beta node.
#[inline]
fn beta_slot(node: NodeId) -> u32 {
    (node.index() * 2) as u32
}

/// Profiler slot of an alpha memory.
#[inline]
fn alpha_slot(amem: AMemId) -> u32 {
    (amem.index() * 2 + 1) as u32
}

impl Default for ReteMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ReteMatcher {
    /// An empty network with hash-join indexing enabled.
    pub fn new() -> ReteMatcher {
        Self::with_indexing(true)
    }

    /// An empty network; `indexing: false` keeps every join a pure memory
    /// scan (the classic Rete baseline). Both modes produce byte-identical
    /// delta streams — only the work counters differ.
    pub fn with_indexing(indexing: bool) -> ReteMatcher {
        let mut nodes = Arena::new();
        let top = nodes.alloc(BetaNode::Memory {
            parent: None,
            tokens: IndexedList::new(),
            children: Vec::new(),
        });
        let mut tokens = TokenSlab::default();
        let dummy = tokens.alloc(Token {
            parent: None,
            wme: None,
            node: top,
            children: Vec::new(),
            join_results: Vec::new(),
            seq: 0,
        });
        if let BetaNode::Memory { tokens: toks, .. } = &mut nodes[top] {
            toks.push(dummy);
        }
        ReteMatcher {
            amems: Arena::new(),
            alpha_index: FxHashMap::default(),
            class_index: FxHashMap::default(),
            nodes,
            tokens,
            top,
            prods: Vec::new(),
            snodes: Vec::new(),
            wmes: FxHashMap::default(),
            deltas: Vec::new(),
            stats: MatchStats::default(),
            building: false,
            indexing,
            next_token_seq: 1,
            tracer: Tracer::null(),
            prof: None,
        }
    }

    #[inline]
    fn prof_enter(&mut self, slot: u32) {
        if let Some(p) = &mut self.prof {
            if !self.building {
                p.enter(slot);
            }
        }
    }

    #[inline]
    fn prof_exit(&mut self) {
        if let Some(p) = &mut self.prof {
            if !self.building {
                p.exit();
            }
        }
    }

    /// Emit a physical beta-activation event for `node` (no-op while
    /// building or with no tracer attached, mirroring the stat counters).
    #[inline]
    fn trace_beta(&mut self, node: NodeId) {
        if self.tracer.sinks_enabled() && !self.building {
            let kind = self.nodes[node].kind_label();
            self.tracer.emit_physical(|| TraceEvent::BetaActivation {
                node: node.index() as u32,
                kind,
            });
        }
    }

    /// Live beta-level node count (for structure/sharing tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Alpha memory count (for sharing tests).
    pub fn alpha_count(&self) -> usize {
        self.amems.len()
    }

    /// Live token count.
    pub fn token_count(&self) -> usize {
        self.tokens.live()
    }

    /// Iterate alpha memories as `(index, &mem)` (for DOT export/tests).
    pub fn alpha_memories(&self) -> impl Iterator<Item = (usize, &AlphaMem)> {
        self.amems.iter().map(|(id, m)| (id.index(), m))
    }

    /// Iterate beta-level nodes as `(id, &node)` (for DOT export/tests).
    pub fn beta_nodes(&self) -> impl Iterator<Item = (NodeId, &BetaNode)> {
        self.nodes.iter()
    }

    /// Rule name + S-node annotation for a production (DOT export).
    pub(crate) fn production_label(&self, prod: ProdId) -> (String, String) {
        let info = &self.prods[prod.index()];
        let name = info.rule.name.to_string();
        let snode_info = match info.snode {
            Some(si) => format!("\\nS-node |{}| SOIs", self.snodes[si].candidate_count()),
            None => String::new(),
        };
        (name, snode_info)
    }

    // ------------------------------------------------------------ build

    fn get_or_create_amem(&mut self, key: AlphaKey) -> AMemId {
        if let Some(&id) = self.alpha_index.get(&key) {
            return id;
        }
        // Backfill from working memory so productions can be added after
        // WMEs (Doorenbos' update-new-node step, alpha half).
        let matching: Vec<TimeTag> = self
            .wmes
            .iter()
            .filter(|(_, e)| key.matches(e.wme.class, |attr| e.wme.get(attr)))
            .map(|(&t, _)| t)
            .collect();
        let id = self.amems.alloc(AlphaMem {
            key: key.clone(),
            wmes: matching.iter().copied().collect(),
            successors: Vec::new(),
            indexes: Vec::new(),
        });
        for t in &matching {
            self.wmes.get_mut(t).unwrap().amems.push(id);
        }
        self.class_index.entry(key.class).or_default().push(id);
        self.alpha_index.insert(key, id);
        id
    }

    fn find_shared_join(
        &self,
        parent: NodeId,
        amem: AMemId,
        tests: &[CompiledTest],
    ) -> Option<NodeId> {
        self.nodes[parent].children().iter().copied().find(|&c| {
            matches!(&self.nodes[c], BetaNode::Join { amem: a, tests: t, .. } if *a == amem && t == tests)
        })
    }

    fn find_shared_negative(
        &self,
        parent: NodeId,
        amem: AMemId,
        tests: &[CompiledTest],
    ) -> Option<NodeId> {
        self.nodes[parent].children().iter().copied().find(|&c| {
            matches!(&self.nodes[c], BetaNode::Negative { amem: a, tests: t, .. } if *a == amem && t == tests)
        })
    }

    #[inline]
    fn charge_beta(&mut self) {
        if !self.building {
            self.stats.beta_activations += 1;
        }
    }

    /// Account one index probe that returned `hits` of `total` scannable
    /// candidates, where the node has `n_eq` equality tests. The skipped
    /// estimate is deliberately conservative: a scan would have run at
    /// least one (failing) test on each filtered-out candidate and all
    /// `n_eq` equality tests on each hit.
    #[inline]
    fn charge_probe(&mut self, n_eq: u64, total: u64, hits: u64) {
        if !self.building {
            self.stats.index_probes += 1;
            self.stats.index_skipped_tests += (total - hits) + n_eq * hits;
        }
    }

    /// Compile the equality-test part of `tests` into an [`EqJoin`] plan:
    /// pick (or create) the shared alpha index, and — for the token side —
    /// build the left-input index, backfilled from whatever tokens the
    /// parent memory already holds.
    fn build_eq(
        &mut self,
        amem: AMemId,
        parent: NodeId,
        tests: &[CompiledTest],
        negated: bool,
    ) -> Option<EqJoin> {
        let eq_tests: Vec<CompiledTest> = tests
            .iter()
            .copied()
            .filter(|t| t.pred == Pred::Eq)
            .collect();
        if eq_tests.is_empty() {
            return None;
        }
        let residual: Vec<CompiledTest> = tests
            .iter()
            .copied()
            .filter(|t| t.pred != Pred::Eq)
            .collect();
        let attrs: Vec<Symbol> = eq_tests.iter().map(|t| t.attr).collect();
        let spec: Vec<(usize, Symbol)> = eq_tests.iter().map(|t| (t.ups, t.other_attr)).collect();
        let alpha = Self::ensure_alpha_index(&mut self.amems[amem], &attrs, &self.wmes);
        let left = if negated {
            // A Negative indexes its own tokens; it has none at creation
            // (the add_rule replay populates it via `left_activate`).
            Some(JoinIndex::new())
        } else {
            match &self.nodes[parent] {
                BetaNode::Memory { tokens, .. } => {
                    let existing: Vec<TokId> = tokens.to_vec();
                    let mut idx = JoinIndex::new();
                    for tok in existing {
                        let key = self.token_key(&spec, tok);
                        let seq = self.tokens.get(tok).unwrap().seq;
                        idx.insert(key, tok, seq);
                    }
                    Some(idx)
                }
                // Left input is a Negative: its presence filter (blocked
                // tokens don't count) makes the bucket bookkeeping not
                // worth it — right activations scan, left activations
                // still probe the alpha index.
                _ => None,
            }
        };
        self.stats.indexed_nodes += 1;
        Some(EqJoin {
            attrs,
            spec,
            residual,
            alpha,
            left,
        })
    }

    /// Find or create the alpha index over `attrs`, backfilling a new one
    /// from the memory's current members.
    fn ensure_alpha_index(
        amem: &mut AlphaMem,
        attrs: &[Symbol],
        wmes: &FxHashMap<TimeTag, WmeEntry>,
    ) -> usize {
        if let Some(i) = amem.indexes.iter().position(|ix| ix.attrs == attrs) {
            return i;
        }
        let mut map = JoinIndex::new();
        for (tag, seq) in amem.wmes.iter_live_seq() {
            map.insert(wme_key(attrs, &wmes[&tag].wme), tag, seq);
        }
        amem.indexes.push(AlphaIndex {
            attrs: attrs.to_vec(),
            map,
        });
        amem.indexes.len() - 1
    }

    /// Index key of the token chain rooted at `root` (the *left* value of
    /// a join) under the extraction spec: walk `ups` parents, read
    /// `other_attr`.
    fn token_key(&self, spec: &[(usize, Symbol)], root: TokId) -> IndexKey {
        IndexKey::from_values(spec.iter().map(|&(ups, attr)| {
            let mut cur = root;
            for _ in 0..ups {
                cur = self.tokens.get(cur).unwrap().parent.unwrap();
            }
            let tag = self
                .tokens
                .get(cur)
                .unwrap()
                .wme
                .expect("equality test references a positive CE");
            self.wmes[&tag].wme.get(attr)
        }))
    }

    /// Like [`Self::token_key`], but for a token already released from the
    /// slab (its ancestors are still live during post-order deletion).
    fn released_token_key(&self, spec: &[(usize, Symbol)], token: &Token) -> IndexKey {
        IndexKey::from_values(spec.iter().map(|&(ups, attr)| {
            let tag = if ups == 0 {
                token.wme.expect("equality test references a positive CE")
            } else {
                let mut cur = token.parent.expect("non-top token has a parent");
                for _ in 0..ups - 1 {
                    cur = self.tokens.get(cur).unwrap().parent.unwrap();
                }
                self.tokens
                    .get(cur)
                    .unwrap()
                    .wme
                    .expect("equality test references a positive CE")
            };
            self.wmes[&tag].wme.get(attr)
        }))
    }

    /// Register a token just stored in a memory with the left-input hash
    /// indexes of its child joins.
    fn index_left_token(&mut self, children: &[NodeId], tok: TokId) {
        for &c in children {
            let key = {
                let BetaNode::Join { eq: Some(eq), .. } = &self.nodes[c] else {
                    continue;
                };
                if eq.left.is_none() {
                    continue;
                }
                self.token_key(&eq.spec, tok)
            };
            let seq = self.tokens.get(tok).unwrap().seq;
            if let BetaNode::Join { eq: Some(eq), .. } = &mut self.nodes[c] {
                eq.left.as_mut().unwrap().insert(key, tok, seq);
            }
        }
    }

    /// Check every hash index against a from-scratch rebuild: grouping the
    /// live members of the indexed collection by key must reproduce the
    /// live bucket contents exactly, including order (probe order must
    /// equal scan order). O(network) — a test/debug aid, also reachable
    /// through [`Matcher::validate`].
    pub fn validate_indexes(&self) -> Result<(), String> {
        fn diff<K: std::fmt::Debug + Eq + std::hash::Hash, T: std::fmt::Debug + Eq>(
            what: String,
            expect: FxHashMap<K, Vec<T>>,
            got: Vec<(K, Vec<T>)>,
        ) -> Result<(), String> {
            let mut got: FxHashMap<K, Vec<T>> =
                got.into_iter().filter(|(_, v)| !v.is_empty()).collect();
            for (key, exp) in expect {
                match got.remove(&key) {
                    Some(g) if g == exp => {}
                    other => {
                        return Err(format!(
                            "{what}: key {key:?} expected {exp:?}, got {other:?}"
                        ))
                    }
                }
            }
            if let Some((key, v)) = got.into_iter().next() {
                return Err(format!("{what}: stray live bucket {key:?}: {v:?}"));
            }
            Ok(())
        }

        for (id, amem) in self.amems.iter() {
            for (i, idx) in amem.indexes.iter().enumerate() {
                let mut expect: FxHashMap<IndexKey, Vec<TimeTag>> = FxHashMap::default();
                for tag in amem.wmes.iter_live() {
                    expect
                        .entry(wme_key(&idx.attrs, &self.wmes[&tag].wme))
                        .or_default()
                        .push(tag);
                }
                let got = idx.map.live_groups(|t, s| amem.wmes.seq_of(t) == Some(s));
                diff(format!("alpha index α{}[{}]", id.index(), i), expect, got)?;
            }
        }
        for (nid, node) in self.nodes.iter() {
            let (eq, members) = match node {
                BetaNode::Join {
                    parent,
                    eq: Some(eq),
                    ..
                } if eq.left.is_some() => {
                    // Skip excised joins: the parent no longer feeds them,
                    // so their (unreachable) index may lag behind.
                    if !self.nodes[*parent].children().contains(&nid) {
                        continue;
                    }
                    match &self.nodes[*parent] {
                        BetaNode::Memory { tokens, .. } => (eq, tokens.to_vec()),
                        _ => continue,
                    }
                }
                BetaNode::Negative {
                    eq: Some(eq),
                    tokens,
                    ..
                } => (eq, tokens.to_vec()),
                _ => continue,
            };
            let negative = matches!(node, BetaNode::Negative { .. });
            let mut expect: FxHashMap<IndexKey, Vec<TokId>> = FxHashMap::default();
            for tok in members {
                let root = if negative {
                    self.tokens.get(tok).unwrap().parent.unwrap()
                } else {
                    tok
                };
                expect
                    .entry(self.token_key(&eq.spec, root))
                    .or_default()
                    .push(tok);
            }
            let slab = &self.tokens;
            let got = eq
                .left
                .as_ref()
                .unwrap()
                .live_groups(|t, s| slab.get(t).is_some_and(|tk| tk.seq == s));
            diff(format!("left index of n{}", nid.index()), expect, got)?;
        }
        Ok(())
    }

    fn attach_successor(&mut self, amem: AMemId, node: NodeId) {
        // Deepest-first ordering: nodes are created top-down, so inserting
        // at the front keeps descendants ahead of ancestors.
        self.amems[amem].successors.insert(0, node);
    }

    /// Combined counters of every S-node in the network. Via
    /// [`SoiStats::merge_into`] this is the *single* source of the
    /// `snode_activations` / `aggregate_updates` fields of
    /// [`MatchStats`] — the matcher itself never increments them.
    pub fn soi_stats(&self) -> SoiStats {
        self.snodes
            .iter()
            .fold(SoiStats::default(), |acc, sn| acc.merged(&sn.stats()))
    }

    /// True when per-node profiling is enabled.
    pub(crate) fn profiling_enabled(&self) -> bool {
        self.prof.is_some()
    }

    /// Build the per-node profile: activation counts and self time from
    /// the [`SelfTimer`] (zeros when profiling was never enabled), current
    /// memory sizes, and rule attribution computed by walking each live
    /// production's chain upward.
    pub(crate) fn build_profile(&self) -> NetProfile {
        let timer = self.prof.as_ref();
        let mut node_rules: Vec<Vec<String>> = vec![Vec::new(); self.nodes.len()];
        let mut amem_rules: Vec<Vec<String>> = vec![Vec::new(); self.amems.len()];
        for info in self.prods.iter().filter(|p| !p.excised) {
            let name = info.rule.name.to_string();
            let mut cur = Some(info.pnode);
            while let Some(n) = cur {
                let rules = &mut node_rules[n.index()];
                if !rules.contains(&name) {
                    rules.push(name.clone());
                }
                cur = match &self.nodes[n] {
                    BetaNode::Join { parent, amem, .. }
                    | BetaNode::Negative { parent, amem, .. } => {
                        let ar = &mut amem_rules[amem.index()];
                        if !ar.contains(&name) {
                            ar.push(name.clone());
                        }
                        Some(*parent)
                    }
                    BetaNode::Memory { parent, .. } => *parent,
                    BetaNode::Production { parent, .. } => Some(*parent),
                };
            }
        }
        let mut nodes = Vec::new();
        for (id, amem) in self.amems.iter() {
            let i = id.index();
            let mut rules = amem_rules[i].clone();
            rules.sort();
            nodes.push(NodeProfile {
                id: format!("α{i}"),
                kind: "alpha",
                label: amem.key.class.to_string(),
                activations: timer.map_or(0, |t| t.activations(alpha_slot(id) as usize)),
                held: amem.wmes.len(),
                nanos: timer.map_or(0, |t| t.nanos(alpha_slot(id) as usize)),
                rules,
            });
        }
        for (id, node) in self.nodes.iter() {
            let i = id.index();
            let label = match node {
                BetaNode::Join { tests, eq, .. } => match eq {
                    Some(e) => {
                        let attrs: Vec<String> = e.attrs.iter().map(|a| format!("^{a}")).collect();
                        format!("{} tests [idx: {}]", tests.len(), attrs.join(" "))
                    }
                    None => format!("{} tests", tests.len()),
                },
                BetaNode::Negative { tests, .. } => format!("{} tests", tests.len()),
                BetaNode::Production { prod, .. } => {
                    let info = &self.prods[prod.index()];
                    match info.snode {
                        Some(si) => format!(
                            "{} [S-node |{}| SOIs]",
                            info.rule.name,
                            self.snodes[si].candidate_count()
                        ),
                        None => info.rule.name.to_string(),
                    }
                }
                BetaNode::Memory { .. } => String::new(),
            };
            let mut rules = node_rules[i].clone();
            rules.sort();
            nodes.push(NodeProfile {
                id: format!("n{i}"),
                kind: node.kind_label(),
                label,
                activations: timer.map_or(0, |t| t.activations(beta_slot(id) as usize)),
                held: node.held(),
                nanos: timer.map_or(0, |t| t.nanos(beta_slot(id) as usize)),
                rules,
            });
        }
        NetProfile {
            algorithm: self.algorithm_name().to_string(),
            nodes,
        }
    }

    /// The static chain from the top memory down to `rule`'s production
    /// node, one description per node (see `Matcher::rule_network_path`).
    pub fn network_path(&self, rule: RuleId) -> Option<Vec<String>> {
        let info = self.prods.get(rule.index())?;
        if info.excised {
            return None;
        }
        let mut steps = Vec::new();
        let mut cur = Some(info.pnode);
        while let Some(n) = cur {
            let step = match &self.nodes[n] {
                BetaNode::Memory { parent: None, .. } => {
                    cur = None;
                    format!("top n{}", n.index())
                }
                BetaNode::Memory { parent, .. } => {
                    cur = *parent;
                    format!("memory n{}", n.index())
                }
                BetaNode::Join {
                    parent, amem, eq, ..
                } => {
                    let s = format!(
                        "join n{} (α{} {}){}",
                        n.index(),
                        amem.index(),
                        self.amems[*amem].key.class,
                        if eq.is_some() { " [indexed]" } else { "" }
                    );
                    cur = Some(*parent);
                    s
                }
                BetaNode::Negative {
                    parent, amem, eq, ..
                } => {
                    let s = format!(
                        "negative n{} (α{} {}){}",
                        n.index(),
                        amem.index(),
                        self.amems[*amem].key.class,
                        if eq.is_some() { " [indexed]" } else { "" }
                    );
                    cur = Some(*parent);
                    s
                }
                BetaNode::Production { parent, .. } => {
                    let s = match info.snode {
                        Some(_) => format!("production {} (S-node)", info.rule.name),
                        None => format!("production {}", info.rule.name),
                    };
                    cur = Some(*parent);
                    s
                }
            };
            steps.push(step);
        }
        steps.reverse();
        Some(steps)
    }
}

impl Matcher for ReteMatcher {
    fn add_rule(&mut self, rule: Arc<AnalyzedRule>) -> RuleId {
        self.building = true;
        let prod_id = ProdId::new(self.prods.len());
        let rule_id = RuleId::new(self.prods.len());

        // Positive-CE index → CE-order index, for compiling `ups`.
        let mut pos2ce: Vec<usize> = Vec::with_capacity(rule.num_pos);
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            if ce.pos_idx.is_some() {
                pos2ce.push(ce_idx);
            }
        }

        let mut current = self.top;
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            let key = AlphaKey {
                class: ce.class,
                consts: ce.const_tests.clone(),
                intras: ce.intra_tests.clone(),
            };
            let amem = self.get_or_create_amem(key);
            let tests: Vec<CompiledTest> = ce
                .var_joins
                .iter()
                .map(|vj| CompiledTest {
                    attr: vj.attr,
                    pred: vj.pred,
                    ups: (ce_idx - 1) - pos2ce[vj.other_pos_ce],
                    other_attr: vj.other_attr,
                })
                .collect();

            if ce.negated {
                current = match self.find_shared_negative(current, amem, &tests) {
                    Some(n) => n,
                    None => {
                        let eq = if self.indexing {
                            self.build_eq(amem, current, &tests, true)
                        } else {
                            None
                        };
                        let n = self.nodes.alloc(BetaNode::Negative {
                            parent: current,
                            amem,
                            tests,
                            eq,
                            tokens: IndexedList::new(),
                            children: Vec::new(),
                            depth: ce_idx as u32,
                        });
                        self.nodes[current].push_child(n);
                        self.attach_successor(amem, n);
                        // Replay tokens already present upstream (the dummy
                        // top token, and tokens of earlier negative levels)
                        // so the new node owns its share of the match state.
                        for t in self.present_tokens(current) {
                            self.left_activate(n, t, None);
                        }
                        n
                    }
                };
            } else {
                let join = match self.find_shared_join(current, amem, &tests) {
                    Some(j) => j,
                    None => {
                        let eq = if self.indexing {
                            self.build_eq(amem, current, &tests, false)
                        } else {
                            None
                        };
                        let j = self.nodes.alloc(BetaNode::Join {
                            parent: current,
                            amem,
                            tests,
                            eq,
                            children: Vec::new(),
                            depth: ce_idx as u32,
                        });
                        self.nodes[current].push_child(j);
                        self.attach_successor(amem, j);
                        // Every join owns exactly one output memory.
                        let m = self.nodes.alloc(BetaNode::Memory {
                            parent: Some(j),
                            tokens: IndexedList::new(),
                            children: Vec::new(),
                        });
                        self.nodes[j].push_child(m);
                        // Update-new-node: replay the upstream tokens
                        // against the (pre-populated) alpha memory so the
                        // new node picks up existing working memory.
                        for t in self.present_tokens(current) {
                            self.activate_from_memory(j, t);
                        }
                        j
                    }
                };
                // The join's memory is its first child.
                current = self.nodes[join].children()[0];
            }
        }

        let pnode = self.nodes.alloc(BetaNode::Production {
            parent: current,
            prod: prod_id,
            tokens: IndexedList::new(),
        });
        self.nodes[current].push_child(pnode);
        // A purely-negative LHS is already satisfied by the dummy token.
        let replay: Vec<TokId> = match &self.nodes[current] {
            BetaNode::Memory { .. } | BetaNode::Negative { .. } => self.present_tokens(current),
            _ => Vec::new(),
        };
        // Register the production before replaying so activations resolve.
        let snode_pending = rule.is_set_oriented;
        if snode_pending {
            let mut sn = SNode::new(rule_id, rule.clone());
            sn.set_tracer(self.tracer.clone());
            self.snodes.push(sn);
        }
        self.prods.push(ProdInfo {
            rule,
            id: rule_id,
            snode: snode_pending.then(|| self.snodes.len() - 1),
            pnode,
            excised: false,
        });
        for t in replay {
            self.left_activate(pnode, t, None);
        }
        self.building = false;
        rule_id
    }

    fn insert_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        debug_assert!(!self.wmes.contains_key(&tag), "duplicate time tag {tag}");
        // Phase 1: alpha — add to every matching memory first, so that
        // deeper joins activated later see the WME in their right input.
        let mut matched: Vec<AMemId> = Vec::new();
        if let Some(cands) = self.class_index.get(&wme.class) {
            for &a in cands {
                if self.amems[a].key.matches(wme.class, |attr| wme.get(attr)) {
                    matched.push(a);
                }
            }
        }
        self.wmes.insert(
            tag,
            WmeEntry {
                wme: wme.clone(),
                amems: matched.clone(),
                tokens: Vec::new(),
                blocked: Vec::new(),
            },
        );
        for &a in &matched {
            self.stats.alpha_activations += 1;
            self.prof_enter(alpha_slot(a));
            self.amems[a].insert_wme(tag, wme);
            self.prof_exit();
            self.tracer.emit_physical(|| TraceEvent::AlphaActivation {
                node: a.index() as u32,
                tag,
                insert: true,
            });
        }
        // Phase 2: right activations, globally deepest-first.
        let mut acts: Vec<(u32, NodeId)> = Vec::new();
        for &a in &matched {
            for &succ in &self.amems[a].successors {
                let depth = match &self.nodes[succ] {
                    BetaNode::Join { depth, .. } | BetaNode::Negative { depth, .. } => *depth,
                    _ => 0,
                };
                acts.push((depth, succ));
            }
        }
        acts.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));
        for (_, node) in acts {
            self.right_activate(node, tag);
        }
    }

    fn remove_rule(&mut self, rule: RuleId) {
        let pi = rule.index();
        if self.prods[pi].excised {
            return;
        }
        self.prods[pi].excised = true;
        let pnode = self.prods[pi].pnode;
        // Retract the production's current matches (emits `-` deltas; for
        // set-oriented rules the S-node drains its γ-memory through the
        // usual remove path).
        let toks: Vec<TokId> = match &self.nodes[pnode] {
            BetaNode::Production { tokens, .. } => tokens.to_vec(),
            _ => unreachable!("pnode is a production"),
        };
        for t in toks {
            self.delete_token(t);
        }
        // Unlink the unshared tail of the chain, bottom-up, stopping at the
        // first node other rules still use.
        let mut node = pnode;
        loop {
            let parent = match &self.nodes[node] {
                BetaNode::Memory { parent, .. } => *parent,
                BetaNode::Join { parent, .. }
                | BetaNode::Negative { parent, .. }
                | BetaNode::Production { parent, .. } => Some(*parent),
            };
            // Drop any remaining tokens this node stores (inert partials).
            let stored: Vec<TokId> = match &self.nodes[node] {
                BetaNode::Memory { tokens, .. }
                | BetaNode::Negative { tokens, .. }
                | BetaNode::Production { tokens, .. } => tokens.to_vec(),
                BetaNode::Join { .. } => Vec::new(),
            };
            for t in stored {
                self.delete_token(t);
            }
            // Detach from the alpha network.
            if let BetaNode::Join { amem, .. } | BetaNode::Negative { amem, .. } = &self.nodes[node]
            {
                let amem = *amem;
                self.amems[amem].successors.retain(|&s| s != node);
            }
            let Some(p) = parent else { break };
            self.nodes[p].remove_child(node);
            // A parent still feeding other children (or the top memory) is
            // shared — stop unlinking there.
            if !self.nodes[p].children().is_empty()
                || matches!(&self.nodes[p], BetaNode::Memory { parent: None, .. })
            {
                break;
            }
            node = p;
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        let Some(entry_amems) = self.wmes.get(&tag).map(|e| e.amems.clone()) else {
            debug_assert!(false, "removing unknown WME {tag}");
            return;
        };
        for a in entry_amems {
            self.prof_enter(alpha_slot(a));
            self.amems[a].remove_wme(tag, wme);
            self.prof_exit();
            self.tracer.emit_physical(|| TraceEvent::AlphaActivation {
                node: a.index() as u32,
                tag,
                insert: false,
            });
        }
        // Delete every token built on this WME (cascades to descendants).
        let toks = self.wmes[&tag].tokens.clone();
        for t in toks {
            self.delete_token(t);
        }
        // Unblock negative tokens this WME was blocking.
        let blocked = self.wmes[&tag].blocked.clone();
        for t in blocked {
            let Some(token) = self.tokens.get_mut(t) else {
                continue;
            };
            if let Some(pos) = token.join_results.iter().position(|&w| w == tag) {
                token.join_results.swap_remove(pos);
                if token.join_results.is_empty() {
                    // The absence test passes again: resume downstream.
                    let node = token.node;
                    let children: Vec<NodeId> = self.nodes[node].children().to_vec();
                    for c in children {
                        self.activate_from_memory(c, t);
                    }
                }
            }
        }
        // The WME stays resolvable until all S-node removals ran.
        self.wmes.remove(&tag);
    }

    fn drain_deltas(&mut self) -> Vec<CsDelta> {
        std::mem::take(&mut self.deltas)
    }

    fn materialize(&self, key: &InstKey) -> Option<ConflictItem> {
        match key {
            InstKey::Tuple { rule, tags } => {
                let info = &self.prods[rule.index()];
                let mut recency: Vec<TimeTag> = tags.to_vec();
                recency.sort_unstable_by(|a, b| b.cmp(a));
                Some(ConflictItem {
                    key: key.clone(),
                    rows: vec![tags.clone()],
                    aggregates: Vec::new(),
                    version: 0,
                    recency: recency.into(),
                    specificity: info.rule.specificity,
                })
            }
            InstKey::Soi { rule, parts } => {
                let si = self.prods[rule.index()].snode?;
                self.snodes[si].materialize(parts)
            }
        }
    }

    fn stats(&self) -> MatchStats {
        let mut s = self.stats;
        self.soi_stats().merge_into(&mut s);
        s
    }

    fn algorithm_name(&self) -> &'static str {
        if self.indexing {
            "rete"
        } else {
            "rete-scan"
        }
    }

    fn validate(&self) -> Result<(), String> {
        self.validate_indexes()
    }

    fn to_dot(&self) -> Option<String> {
        Some(self.network_dot())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        for sn in &mut self.snodes {
            sn.set_tracer(tracer.clone());
        }
    }

    fn set_profiling(&mut self, on: bool) {
        self.prof = on.then(SelfTimer::new);
    }

    fn profile(&self) -> Option<NetProfile> {
        self.prof.as_ref()?;
        Some(self.build_profile())
    }

    fn rule_network_path(&self, rule: RuleId) -> Option<Vec<String>> {
        self.network_path(rule)
    }

    fn memory_report(&self) -> MemoryReport {
        use std::mem::size_of;
        let mut report = MemoryReport::default();

        let mut alpha_bytes = 0u64;
        let mut alpha_entries = 0u64;
        let mut aidx_bytes = 0u64;
        let mut aidx_entries = 0u64;
        for (_, am) in self.amems.iter() {
            alpha_bytes += am.wmes.approx_bytes();
            alpha_entries += am.wmes.len() as u64;
            for idx in &am.indexes {
                aidx_bytes += idx.map.approx_bytes();
                aidx_entries += idx.map.live_entry_count();
            }
        }
        report.push("alpha", alpha_bytes, alpha_entries);
        report.push("alpha_index", aidx_bytes, aidx_entries);

        let mut beta_bytes = 0u64;
        let mut beta_entries = 0u64;
        let mut bidx_bytes = 0u64;
        let mut bidx_entries = 0u64;
        for (_, node) in self.nodes.iter() {
            match node {
                BetaNode::Memory { tokens, .. } | BetaNode::Production { tokens, .. } => {
                    beta_bytes += tokens.approx_bytes();
                    beta_entries += tokens.len() as u64;
                }
                BetaNode::Negative { tokens, eq, .. } => {
                    beta_bytes += tokens.approx_bytes();
                    beta_entries += tokens.len() as u64;
                    if let Some(left) = eq.as_ref().and_then(|e| e.left.as_ref()) {
                        bidx_bytes += left.approx_bytes();
                        bidx_entries += left.live_entry_count();
                    }
                }
                BetaNode::Join { eq, .. } => {
                    if let Some(left) = eq.as_ref().and_then(|e| e.left.as_ref()) {
                        bidx_bytes += left.approx_bytes();
                        bidx_entries += left.live_entry_count();
                    }
                }
            }
        }
        report.push("beta", beta_bytes, beta_entries);
        report.push("beta_index", bidx_bytes, bidx_entries);
        report.push(
            "tokens",
            self.tokens.approx_bytes(),
            self.tokens.live() as u64,
        );

        let gamma_bytes: u64 = self.snodes.iter().map(|sn| sn.gamma_bytes()).sum();
        let gamma_sois: u64 = self
            .snodes
            .iter()
            .map(|sn| sn.candidate_count() as u64)
            .sum();
        report.push("gamma", gamma_bytes, gamma_sois);

        let mut wt_bytes = 0u64;
        for entry in self.wmes.values() {
            wt_bytes += (size_of::<TimeTag>()
                + size_of::<Wme>()
                + std::mem::size_of_val(entry.wme.slots())
                + entry.amems.len() * size_of::<AMemId>()
                + (entry.tokens.len() + entry.blocked.len()) * size_of::<TokId>())
                as u64;
        }
        report.push("wme_table", wt_bytes, self.wmes.len() as u64);
        report
    }

    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        let soi = self.soi_stats();
        vec![
            ("soi_plus", soi.plus_tokens),
            ("soi_minus", soi.minus_tokens),
            ("soi_retime", soi.retime_tokens),
            ("gamma_created", soi.gamma_created),
            ("gamma_dropped", soi.gamma_dropped),
            ("agg_recompute", soi.aggregate_recomputes),
        ]
    }
}

impl ReteMatcher {
    // ------------------------------------------------------- activations

    /// A WME entered `node`'s alpha memory.
    fn right_activate(&mut self, node: NodeId, tag: TimeTag) {
        self.charge_beta();
        self.trace_beta(node);
        self.prof_enter(beta_slot(node));
        // Read phase: under a shared borrow, pick the candidate left tokens
        // — a hash-bucket probe when the node has an equality plan with a
        // left index, the classic full scan otherwise — plus the tests
        // still to run on them (residual only after a probe).
        enum Plan {
            Join {
                cands: Vec<TokId>,
                tests: Vec<CompiledTest>,
                children: Vec<NodeId>,
            },
            Negative {
                cands: Vec<TokId>,
                tests: Vec<CompiledTest>,
            },
        }
        let mut probed: Option<(u64, u64, u64)> = None; // (n_eq, total, hits)
        let plan = match &self.nodes[node] {
            BetaNode::Join {
                parent,
                tests,
                eq,
                children,
                ..
            } => {
                let (cands, tests) = match eq {
                    Some(e) if e.left.is_some() => {
                        let key = wme_key(&e.attrs, &self.wmes[&tag].wme);
                        let slab = &self.tokens;
                        let cands = e
                            .left
                            .as_ref()
                            .unwrap()
                            .probe(&key, |t, s| slab.get(t).is_some_and(|tk| tk.seq == s));
                        let total = match &self.nodes[*parent] {
                            BetaNode::Memory { tokens, .. } => tokens.len() as u64,
                            _ => unreachable!("left-indexed joins hang off memories"),
                        };
                        probed = Some((e.attrs.len() as u64, total, cands.len() as u64));
                        (cands, e.residual.clone())
                    }
                    _ => (self.present_tokens(*parent), tests.clone()),
                };
                Plan::Join {
                    cands,
                    tests,
                    children: children.clone(),
                }
            }
            BetaNode::Negative {
                tokens, tests, eq, ..
            } => {
                // Indexed: only tokens whose parent chains carry the
                // WME's equality values can be affected.
                let (cands, tests) = match eq {
                    Some(e) => {
                        let key = wme_key(&e.attrs, &self.wmes[&tag].wme);
                        let slab = &self.tokens;
                        let cands = e
                            .left
                            .as_ref()
                            .expect("negatives always index their own tokens")
                            .probe(&key, |t, s| slab.get(t).is_some_and(|tk| tk.seq == s));
                        probed = Some((
                            e.attrs.len() as u64,
                            tokens.len() as u64,
                            cands.len() as u64,
                        ));
                        (cands, e.residual.clone())
                    }
                    None => (tokens.to_vec(), tests.clone()),
                };
                Plan::Negative { cands, tests }
            }
            _ => unreachable!("only joins and negatives are alpha successors"),
        };
        if let Some((n_eq, total, hits)) = probed {
            self.charge_probe(n_eq, total, hits);
            self.tracer.emit_physical(|| TraceEvent::JoinProbe {
                node: node.index() as u32,
                hits,
                scanned: total,
            });
        }
        // Act phase.
        match plan {
            Plan::Join {
                cands,
                tests,
                children,
            } => {
                for t in cands {
                    if self.eval_tests(&tests, t, tag) {
                        for &c in &children {
                            self.left_activate(c, t, Some(tag));
                        }
                    }
                }
            }
            Plan::Negative { cands, tests } => {
                for tk in cands {
                    let Some(token) = self.tokens.get(tk) else {
                        continue;
                    };
                    let left = token.parent.expect("negative tokens have parents");
                    if self.eval_tests(&tests, left, tag) {
                        let was_empty = {
                            let token = self.tokens.get_mut(tk).unwrap();
                            let was = token.join_results.is_empty();
                            token.join_results.push(tag);
                            was
                        };
                        self.wmes.get_mut(&tag).unwrap().blocked.push(tk);
                        if was_empty {
                            // Newly blocked: retract everything below.
                            let children = {
                                let token = self.tokens.get_mut(tk).unwrap();
                                std::mem::take(&mut token.children)
                            };
                            for c in children {
                                self.delete_token(c);
                            }
                        }
                    }
                }
            }
        }
        self.prof_exit();
    }

    /// A token (plus optional WME) flows into `node` from its left input.
    fn left_activate(&mut self, node: NodeId, parent_tok: TokId, wme: Option<TimeTag>) {
        self.charge_beta();
        self.trace_beta(node);
        self.prof_enter(beta_slot(node));
        match &self.nodes[node] {
            BetaNode::Memory { .. } => {
                let tok = self.make_token(node, parent_tok, wme);
                let children: Vec<NodeId> = self.nodes[node].children().to_vec();
                if let BetaNode::Memory { tokens, .. } = &mut self.nodes[node] {
                    tokens.push(tok);
                }
                // Register with child joins' left-input indexes *before*
                // activating, so the cascade sees a consistent memory.
                self.index_left_token(&children, tok);
                for c in children {
                    self.activate_from_memory(c, tok);
                }
            }
            BetaNode::Join { .. } => {
                // Joins receive left activations via `activate_from_memory`.
                unreachable!("join nodes take tokens from their parent memory");
            }
            BetaNode::Negative { .. } => {
                let (amem, tests, plan) = match &self.nodes[node] {
                    BetaNode::Negative {
                        amem, tests, eq, ..
                    } => (
                        *amem,
                        tests.clone(),
                        eq.as_ref().map(|e| {
                            (
                                e.spec.clone(),
                                e.residual.clone(),
                                e.alpha,
                                e.attrs.len() as u64,
                            )
                        }),
                    ),
                    _ => unreachable!(),
                };
                let tok = self.make_token(node, parent_tok, wme);
                let seq = self.tokens.get(tok).unwrap().seq;
                let left = parent_tok;
                // Compute the negative join results — through the alpha
                // index when an equality plan exists (the same key also
                // registers the token in the node's own index, for future
                // right activations).
                let (candidates, tests) = match &plan {
                    Some((spec, residual, alpha, n_eq)) => {
                        let key = self.token_key(spec, left);
                        if let BetaNode::Negative {
                            tokens,
                            eq: Some(eq),
                            ..
                        } = &mut self.nodes[node]
                        {
                            tokens.push(tok);
                            eq.left.as_mut().unwrap().insert(key.clone(), tok, seq);
                        }
                        let total = self.amems[amem].wmes.len() as u64;
                        let cands = self.amems[amem].probe(*alpha, &key);
                        self.charge_probe(*n_eq, total, cands.len() as u64);
                        let hits = cands.len() as u64;
                        self.tracer.emit_physical(|| TraceEvent::JoinProbe {
                            node: node.index() as u32,
                            hits,
                            scanned: total,
                        });
                        (cands, residual.clone())
                    }
                    None => {
                        if let BetaNode::Negative { tokens, .. } = &mut self.nodes[node] {
                            tokens.push(tok);
                        }
                        (self.amems[amem].wmes.to_vec(), tests)
                    }
                };
                let mut results = Vec::new();
                for w in candidates {
                    if self.eval_tests(&tests, left, w) {
                        results.push(w);
                    }
                }
                for &w in &results {
                    self.wmes.get_mut(&w).unwrap().blocked.push(tok);
                }
                let pass = results.is_empty();
                self.tokens.get_mut(tok).unwrap().join_results = results;
                if pass {
                    let children: Vec<NodeId> = self.nodes[node].children().to_vec();
                    for c in children {
                        self.activate_from_memory(c, tok);
                    }
                }
            }
            BetaNode::Production { prod, .. } => {
                let prod = *prod;
                let tok = self.make_token(node, parent_tok, wme);
                if let BetaNode::Production { tokens, .. } = &mut self.nodes[node] {
                    tokens.push(tok);
                }
                self.prod_token_added(prod, tok);
            }
        }
        self.prof_exit();
    }

    /// A token was added to a Memory/Negative; push it through child `node`.
    fn activate_from_memory(&mut self, node: NodeId, tok: TokId) {
        match &self.nodes[node] {
            BetaNode::Join { .. } => {
                let (amem, tests, children, plan) = match &self.nodes[node] {
                    BetaNode::Join {
                        amem,
                        tests,
                        eq,
                        children,
                        ..
                    } => (
                        *amem,
                        tests.clone(),
                        children.clone(),
                        eq.as_ref().map(|e| {
                            (
                                e.spec.clone(),
                                e.residual.clone(),
                                e.alpha,
                                e.attrs.len() as u64,
                            )
                        }),
                    ),
                    _ => unreachable!(),
                };
                self.charge_beta();
                self.trace_beta(node);
                self.prof_enter(beta_slot(node));
                // Indexed: hash the token's equality values into the alpha
                // memory's bucket; scan otherwise.
                let (wmes, tests) = match plan {
                    Some((spec, residual, alpha, n_eq)) => {
                        let key = self.token_key(&spec, tok);
                        let total = self.amems[amem].wmes.len() as u64;
                        let cands = self.amems[amem].probe(alpha, &key);
                        self.charge_probe(n_eq, total, cands.len() as u64);
                        let hits = cands.len() as u64;
                        self.tracer.emit_physical(|| TraceEvent::JoinProbe {
                            node: node.index() as u32,
                            hits,
                            scanned: total,
                        });
                        (cands, residual)
                    }
                    None => (self.amems[amem].wmes.to_vec(), tests),
                };
                for w in wmes {
                    if self.eval_tests(&tests, tok, w) {
                        for &c in &children {
                            self.left_activate(c, tok, Some(w));
                        }
                    }
                }
                self.prof_exit();
            }
            BetaNode::Negative { .. } | BetaNode::Production { .. } => {
                self.left_activate(node, tok, None);
            }
            BetaNode::Memory { .. } => unreachable!("memories are not memory children"),
        }
    }

    /// Tokens of a Memory, or *unblocked* tokens of a Negative.
    fn present_tokens(&self, node: NodeId) -> Vec<TokId> {
        match &self.nodes[node] {
            BetaNode::Memory { tokens, .. } => tokens.to_vec(),
            BetaNode::Negative { tokens, .. } => tokens
                .iter_live()
                .filter(|&t| {
                    self.tokens
                        .get(t)
                        .is_some_and(|tk| tk.join_results.is_empty())
                })
                .collect(),
            _ => unreachable!("only memories and negatives store left tokens"),
        }
    }

    fn make_token(&mut self, node: NodeId, parent: TokId, wme: Option<TimeTag>) -> TokId {
        if !self.building {
            self.stats.tokens_created += 1;
        }
        let seq = self.next_token_seq;
        self.next_token_seq += 1;
        let tok = self.tokens.alloc(Token {
            parent: Some(parent),
            wme,
            node,
            children: Vec::new(),
            join_results: Vec::new(),
            seq,
        });
        self.tokens.get_mut(parent).unwrap().children.push(tok);
        if let Some(w) = wme {
            self.wmes.get_mut(&w).unwrap().tokens.push(tok);
        }
        tok
    }

    /// Evaluate compiled join tests between the token chain rooted at
    /// `left` (level = CE before the node's) and the WME `tag`.
    fn eval_tests(&mut self, tests: &[CompiledTest], left: TokId, tag: TimeTag) -> bool {
        let wme = &self.wmes[&tag].wme;
        for t in tests {
            if !self.building {
                self.stats.join_tests += 1;
            }
            let mut cur = left;
            for _ in 0..t.ups {
                cur = self.tokens.get(cur).unwrap().parent.unwrap();
            }
            let other_tag = self
                .tokens
                .get(cur)
                .unwrap()
                .wme
                .expect("join test must reference a positive CE");
            let other = &self.wmes[&other_tag].wme;
            if !t.pred.apply(&wme.get(t.attr), &other.get(t.other_attr)) {
                return false;
            }
        }
        true
    }

    /// Delete a token and all its descendants (post-order).
    fn delete_token(&mut self, tok: TokId) {
        let Some(token) = self.tokens.get_mut(tok) else {
            return;
        };
        let children = std::mem::take(&mut token.children);
        for c in children {
            self.delete_token(c);
        }
        let Some(token) = self.tokens.release(tok) else {
            return;
        };
        self.stats.tokens_deleted += 1;
        // Unregister from the owning node's memory (O(1) tombstone) and
        // collect the child joins whose left indexes reference the token.
        let index_children: Vec<NodeId> = match &mut self.nodes[token.node] {
            BetaNode::Memory {
                tokens, children, ..
            } => {
                tokens.remove(tok);
                children.clone()
            }
            BetaNode::Negative { tokens, .. } => {
                tokens.remove(tok);
                // The node indexes its own tokens.
                vec![token.node]
            }
            BetaNode::Production { tokens, .. } => {
                tokens.remove(tok);
                Vec::new()
            }
            BetaNode::Join { .. } => unreachable!("joins store no tokens"),
        };
        // Tombstone the token's hash-index entries. The key is recomputed
        // from the released token's chain (ancestors outlive descendants),
        // so only the one affected bucket is touched.
        for c in index_children {
            let key = match &self.nodes[c] {
                BetaNode::Join { eq: Some(eq), .. } if eq.left.is_some() => {
                    self.released_token_key(&eq.spec, &token)
                }
                // Only the self-referencing entry (a Negative tombstoning
                // its own index); Negative *children* of a memory index
                // their own tokens, not the memory's.
                BetaNode::Negative { eq: Some(eq), .. } if c == token.node => {
                    // Negative keys hang off the *parent* chain.
                    self.token_key(&eq.spec, token.parent.expect("non-top token"))
                }
                _ => continue,
            };
            let slab = &self.tokens;
            if let BetaNode::Join { eq: Some(eq), .. } | BetaNode::Negative { eq: Some(eq), .. } =
                &mut self.nodes[c]
            {
                if let Some(left) = eq.left.as_mut() {
                    left.note_dead(&key, |t, s| slab.get(t).is_some_and(|tk| tk.seq == s));
                }
            }
        }
        // Unregister from parent and WME back-references.
        if let Some(p) = token.parent {
            if let Some(pt) = self.tokens.get_mut(p) {
                if let Some(pos) = pt.children.iter().position(|&c| c == tok) {
                    pt.children.remove(pos);
                }
            }
        }
        if let Some(w) = token.wme {
            if let Some(entry) = self.wmes.get_mut(&w) {
                if let Some(pos) = entry.tokens.iter().position(|&t| t == tok) {
                    entry.tokens.swap_remove(pos);
                }
            }
        }
        for w in &token.join_results {
            if let Some(entry) = self.wmes.get_mut(w) {
                if let Some(pos) = entry.blocked.iter().position(|&t| t == tok) {
                    entry.blocked.swap_remove(pos);
                }
            }
        }
        // Production terminal: report the retraction.
        if let BetaNode::Production { prod, .. } = &self.nodes[token.node] {
            self.prod_token_removed(*prod, &token);
        }
    }

    // ------------------------------------------------------ productions

    /// Matched WME tags of a production token, in positive-CE order.
    fn row_of(&self, tok: TokId) -> Vec<TimeTag> {
        let mut tags = Vec::new();
        let mut cur = Some(tok);
        while let Some(id) = cur {
            let t = self.tokens.get(id).expect("live chain");
            if let Some(w) = t.wme {
                tags.push(w);
            }
            cur = t.parent;
        }
        tags.reverse();
        tags
    }

    /// Like [`Self::row_of`] but usable for an already-released token (its
    /// parents are still live during post-order deletion).
    fn row_of_released(&self, token: &Token) -> Vec<TimeTag> {
        let mut tags = Vec::new();
        if let Some(w) = token.wme {
            tags.push(w);
        }
        let mut cur = token.parent;
        while let Some(id) = cur {
            let t = self.tokens.get(id).expect("ancestors outlive descendants");
            if let Some(w) = t.wme {
                tags.push(w);
            }
            cur = t.parent;
        }
        tags.reverse();
        tags
    }

    fn prod_token_added(&mut self, prod: ProdId, tok: TokId) {
        let tags = self.row_of(tok);
        let info = &self.prods[prod.index()];
        match info.snode {
            Some(si) => {
                let wmes = &self.wmes;
                let lookup = move |t: TimeTag, a: Symbol| -> Value {
                    wmes.get(&t).map(|e| e.wme.get(a)).unwrap_or(Value::Nil)
                };
                self.snodes[si].insert_row(&tags, &lookup, &mut self.deltas);
            }
            None => {
                let mut recency = tags.clone();
                recency.sort_unstable_by(|a, b| b.cmp(a));
                self.deltas.push(CsDelta::Insert(ConflictItem {
                    key: InstKey::Tuple {
                        rule: info.id,
                        tags: tags.clone().into(),
                    },
                    rows: vec![tags.into()],
                    aggregates: Vec::new(),
                    version: 0,
                    recency: recency.into(),
                    specificity: info.rule.specificity,
                }));
            }
        }
    }

    fn prod_token_removed(&mut self, prod: ProdId, token: &Token) {
        let tags = self.row_of_released(token);
        let info = &self.prods[prod.index()];
        match info.snode {
            Some(si) => {
                let wmes = &self.wmes;
                let lookup = move |t: TimeTag, a: Symbol| -> Value {
                    wmes.get(&t).map(|e| e.wme.get(a)).unwrap_or(Value::Nil)
                };
                self.snodes[si].remove_row(&tags, &lookup, &mut self.deltas);
            }
            None => {
                self.deltas.push(CsDelta::Remove(InstKey::Tuple {
                    rule: info.id,
                    tags: tags.into(),
                }));
            }
        }
    }
}
