//! The Rete match engine.
//!
//! A faithful Rete (Forgy 1982) with Doorenbos-style token trees for
//! incremental removal, extended — exactly as the paper prescribes — "at the
//! end of the network for each set-oriented rule" with an S-node
//! (`sorete_soi::SNode`). The rest of the network is untouched, so regular
//! rules pay nothing, and alpha/beta node sharing works across regular and
//! set-oriented rules alike.

use crate::nodes::*;
use sorete_base::{
    Arena, ConflictItem, CsDelta, FxHashMap, InstKey, MatchStats, RuleId, Symbol, TimeTag, Value,
    Wme,
};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::matcher::Matcher;
use sorete_soi::SNode;
use std::sync::Arc;

struct ProdInfo {
    rule: Arc<AnalyzedRule>,
    id: RuleId,
    /// Index into `snodes` for set-oriented rules.
    snode: Option<usize>,
    /// The production's terminal node.
    pnode: NodeId,
    /// True once excised (the id stays allocated but inert).
    excised: bool,
}

struct WmeEntry {
    wme: Wme,
    /// Alpha memories this WME joined.
    amems: Vec<AMemId>,
    /// Tokens whose `wme` is this WME.
    tokens: Vec<TokId>,
    /// Negative-node tokens this WME currently blocks.
    blocked: Vec<TokId>,
}

/// The Rete matcher.
pub struct ReteMatcher {
    amems: Arena<AlphaMem, AMemId>,
    alpha_index: FxHashMap<AlphaKey, AMemId>,
    class_index: FxHashMap<Symbol, Vec<AMemId>>,
    nodes: Arena<BetaNode, NodeId>,
    tokens: TokenSlab,
    top: NodeId,
    prods: Vec<ProdInfo>,
    snodes: Vec<SNode>,
    wmes: FxHashMap<TimeTag, WmeEntry>,
    deltas: Vec<CsDelta>,
    stats: MatchStats,
    /// True while `add_rule` replays existing state into new nodes —
    /// build-time work is not charged to the runtime counters, so claim C1
    /// (regular programs unaffected) is measured on match work only.
    building: bool,
}

impl Default for ReteMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ReteMatcher {
    /// An empty network.
    pub fn new() -> ReteMatcher {
        let mut nodes = Arena::new();
        let top = nodes.alloc(BetaNode::Memory {
            parent: None,
            tokens: Vec::new(),
            children: Vec::new(),
        });
        let mut tokens = TokenSlab::default();
        let dummy = tokens.alloc(Token {
            parent: None,
            wme: None,
            node: top,
            children: Vec::new(),
            join_results: Vec::new(),
        });
        if let BetaNode::Memory { tokens: toks, .. } = &mut nodes[top] {
            toks.push(dummy);
        }
        ReteMatcher {
            amems: Arena::new(),
            alpha_index: FxHashMap::default(),
            class_index: FxHashMap::default(),
            nodes,
            tokens,
            top,
            prods: Vec::new(),
            snodes: Vec::new(),
            wmes: FxHashMap::default(),
            deltas: Vec::new(),
            stats: MatchStats::default(),
            building: false,
        }
    }

    /// Live beta-level node count (for structure/sharing tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Alpha memory count (for sharing tests).
    pub fn alpha_count(&self) -> usize {
        self.amems.len()
    }

    /// Live token count.
    pub fn token_count(&self) -> usize {
        self.tokens.live()
    }

    /// Iterate alpha memories as `(index, &mem)` (for DOT export/tests).
    pub fn alpha_memories(&self) -> impl Iterator<Item = (usize, &AlphaMem)> {
        self.amems.iter().map(|(id, m)| (id.index(), m))
    }

    /// Iterate beta-level nodes as `(id, &node)` (for DOT export/tests).
    pub fn beta_nodes(&self) -> impl Iterator<Item = (NodeId, &BetaNode)> {
        self.nodes.iter()
    }

    /// Rule name + S-node annotation for a production (DOT export).
    pub(crate) fn production_label(&self, prod: ProdId) -> (String, String) {
        let info = &self.prods[prod.index()];
        let name = info.rule.name.to_string();
        let snode_info = match info.snode {
            Some(si) => format!("\\nS-node |{}| SOIs", self.snodes[si].candidate_count()),
            None => String::new(),
        };
        (name, snode_info)
    }

    // ------------------------------------------------------------ build

    fn get_or_create_amem(&mut self, key: AlphaKey) -> AMemId {
        if let Some(&id) = self.alpha_index.get(&key) {
            return id;
        }
        // Backfill from working memory so productions can be added after
        // WMEs (Doorenbos' update-new-node step, alpha half).
        let matching: Vec<TimeTag> = self
            .wmes
            .iter()
            .filter(|(_, e)| key.matches(e.wme.class, |attr| e.wme.get(attr)))
            .map(|(&t, _)| t)
            .collect();
        let id = self.amems.alloc(AlphaMem {
            key: key.clone(),
            wmes: matching.clone(),
            successors: Vec::new(),
        });
        for t in &matching {
            self.wmes.get_mut(t).unwrap().amems.push(id);
        }
        self.class_index.entry(key.class).or_default().push(id);
        self.alpha_index.insert(key, id);
        id
    }

    fn find_shared_join(
        &self,
        parent: NodeId,
        amem: AMemId,
        tests: &[CompiledTest],
    ) -> Option<NodeId> {
        self.nodes[parent].children().iter().copied().find(|&c| {
            matches!(&self.nodes[c], BetaNode::Join { amem: a, tests: t, .. } if *a == amem && t == tests)
        })
    }

    fn find_shared_negative(
        &self,
        parent: NodeId,
        amem: AMemId,
        tests: &[CompiledTest],
    ) -> Option<NodeId> {
        self.nodes[parent].children().iter().copied().find(|&c| {
            matches!(&self.nodes[c], BetaNode::Negative { amem: a, tests: t, .. } if *a == amem && t == tests)
        })
    }

    #[inline]
    fn charge_beta(&mut self) {
        if !self.building {
            self.stats.beta_activations += 1;
        }
    }

    fn attach_successor(&mut self, amem: AMemId, node: NodeId) {
        // Deepest-first ordering: nodes are created top-down, so inserting
        // at the front keeps descendants ahead of ancestors.
        self.amems[amem].successors.insert(0, node);
    }
}

impl Matcher for ReteMatcher {
    fn add_rule(&mut self, rule: Arc<AnalyzedRule>) -> RuleId {
        self.building = true;
        let prod_id = ProdId::new(self.prods.len());
        let rule_id = RuleId::new(self.prods.len());

        // Positive-CE index → CE-order index, for compiling `ups`.
        let mut pos2ce: Vec<usize> = Vec::with_capacity(rule.num_pos);
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            if ce.pos_idx.is_some() {
                pos2ce.push(ce_idx);
            }
        }

        let mut current = self.top;
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            let key = AlphaKey {
                class: ce.class,
                consts: ce.const_tests.clone(),
                intras: ce.intra_tests.clone(),
            };
            let amem = self.get_or_create_amem(key);
            let tests: Vec<CompiledTest> = ce
                .var_joins
                .iter()
                .map(|vj| CompiledTest {
                    attr: vj.attr,
                    pred: vj.pred,
                    ups: (ce_idx - 1) - pos2ce[vj.other_pos_ce],
                    other_attr: vj.other_attr,
                })
                .collect();

            if ce.negated {
                current = match self.find_shared_negative(current, amem, &tests) {
                    Some(n) => n,
                    None => {
                        let n = self.nodes.alloc(BetaNode::Negative {
                            parent: current,
                            amem,
                            tests,
                            tokens: Vec::new(),
                            children: Vec::new(),
                            depth: ce_idx as u32,
                        });
                        self.nodes[current].push_child(n);
                        self.attach_successor(amem, n);
                        // Replay tokens already present upstream (the dummy
                        // top token, and tokens of earlier negative levels)
                        // so the new node owns its share of the match state.
                        for t in self.present_tokens(current) {
                            self.left_activate(n, t, None);
                        }
                        n
                    }
                };
            } else {
                let join = match self.find_shared_join(current, amem, &tests) {
                    Some(j) => j,
                    None => {
                        let j = self.nodes.alloc(BetaNode::Join {
                            parent: current,
                            amem,
                            tests,
                            children: Vec::new(),
                            depth: ce_idx as u32,
                        });
                        self.nodes[current].push_child(j);
                        self.attach_successor(amem, j);
                        // Every join owns exactly one output memory.
                        let m = self.nodes.alloc(BetaNode::Memory {
                            parent: Some(j),
                            tokens: Vec::new(),
                            children: Vec::new(),
                        });
                        self.nodes[j].push_child(m);
                        // Update-new-node: replay the upstream tokens
                        // against the (pre-populated) alpha memory so the
                        // new node picks up existing working memory.
                        for t in self.present_tokens(current) {
                            self.activate_from_memory(j, t);
                        }
                        j
                    }
                };
                // The join's memory is its first child.
                current = self.nodes[join].children()[0];
            }
        }

        let pnode = self.nodes.alloc(BetaNode::Production {
            parent: current,
            prod: prod_id,
            tokens: Vec::new(),
        });
        self.nodes[current].push_child(pnode);
        // A purely-negative LHS is already satisfied by the dummy token.
        let replay: Vec<TokId> = match &self.nodes[current] {
            BetaNode::Memory { .. } | BetaNode::Negative { .. } => self.present_tokens(current),
            _ => Vec::new(),
        };
        // Register the production before replaying so activations resolve.
        let snode_pending = rule.is_set_oriented;
        if snode_pending {
            self.snodes.push(SNode::new(rule_id, rule.clone()));
        }
        self.prods.push(ProdInfo {
            rule,
            id: rule_id,
            snode: snode_pending.then(|| self.snodes.len() - 1),
            pnode,
            excised: false,
        });
        for t in replay {
            self.left_activate(pnode, t, None);
        }
        self.building = false;
        rule_id
    }

    fn insert_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        debug_assert!(!self.wmes.contains_key(&tag), "duplicate time tag {tag}");
        // Phase 1: alpha — add to every matching memory first, so that
        // deeper joins activated later see the WME in their right input.
        let mut matched: Vec<AMemId> = Vec::new();
        if let Some(cands) = self.class_index.get(&wme.class) {
            for &a in cands {
                if self.amems[a].key.matches(wme.class, |attr| wme.get(attr)) {
                    matched.push(a);
                }
            }
        }
        self.wmes.insert(
            tag,
            WmeEntry {
                wme: wme.clone(),
                amems: matched.clone(),
                tokens: Vec::new(),
                blocked: Vec::new(),
            },
        );
        for &a in &matched {
            self.stats.alpha_activations += 1;
            self.amems[a].wmes.push(tag);
        }
        // Phase 2: right activations, globally deepest-first.
        let mut acts: Vec<(u32, NodeId)> = Vec::new();
        for &a in &matched {
            for &succ in &self.amems[a].successors {
                let depth = match &self.nodes[succ] {
                    BetaNode::Join { depth, .. } | BetaNode::Negative { depth, .. } => *depth,
                    _ => 0,
                };
                acts.push((depth, succ));
            }
        }
        acts.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));
        for (_, node) in acts {
            self.right_activate(node, tag);
        }
    }

    fn remove_rule(&mut self, rule: RuleId) {
        let pi = rule.index();
        if self.prods[pi].excised {
            return;
        }
        self.prods[pi].excised = true;
        let pnode = self.prods[pi].pnode;
        // Retract the production's current matches (emits `-` deltas; for
        // set-oriented rules the S-node drains its γ-memory through the
        // usual remove path).
        let toks: Vec<TokId> = match &self.nodes[pnode] {
            BetaNode::Production { tokens, .. } => tokens.clone(),
            _ => unreachable!("pnode is a production"),
        };
        for t in toks {
            self.delete_token(t);
        }
        // Unlink the unshared tail of the chain, bottom-up, stopping at the
        // first node other rules still use.
        let mut node = pnode;
        loop {
            let parent = match &self.nodes[node] {
                BetaNode::Memory { parent, .. } => *parent,
                BetaNode::Join { parent, .. }
                | BetaNode::Negative { parent, .. }
                | BetaNode::Production { parent, .. } => Some(*parent),
            };
            // Drop any remaining tokens this node stores (inert partials).
            let stored: Vec<TokId> = match &self.nodes[node] {
                BetaNode::Memory { tokens, .. }
                | BetaNode::Negative { tokens, .. }
                | BetaNode::Production { tokens, .. } => tokens.clone(),
                BetaNode::Join { .. } => Vec::new(),
            };
            for t in stored {
                self.delete_token(t);
            }
            // Detach from the alpha network.
            if let BetaNode::Join { amem, .. } | BetaNode::Negative { amem, .. } = &self.nodes[node]
            {
                let amem = *amem;
                self.amems[amem].successors.retain(|&s| s != node);
            }
            let Some(p) = parent else { break };
            self.nodes[p].remove_child(node);
            // A parent still feeding other children (or the top memory) is
            // shared — stop unlinking there.
            if !self.nodes[p].children().is_empty()
                || matches!(&self.nodes[p], BetaNode::Memory { parent: None, .. })
            {
                break;
            }
            node = p;
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        let Some(entry_amems) = self.wmes.get(&tag).map(|e| e.amems.clone()) else {
            debug_assert!(false, "removing unknown WME {tag}");
            return;
        };
        for a in entry_amems {
            let mem = &mut self.amems[a];
            if let Some(pos) = mem.wmes.iter().position(|&t| t == tag) {
                mem.wmes.remove(pos);
            }
        }
        // Delete every token built on this WME (cascades to descendants).
        let toks = self.wmes[&tag].tokens.clone();
        for t in toks {
            self.delete_token(t);
        }
        // Unblock negative tokens this WME was blocking.
        let blocked = self.wmes[&tag].blocked.clone();
        for t in blocked {
            let Some(token) = self.tokens.get_mut(t) else {
                continue;
            };
            if let Some(pos) = token.join_results.iter().position(|&w| w == tag) {
                token.join_results.remove(pos);
                if token.join_results.is_empty() {
                    // The absence test passes again: resume downstream.
                    let node = token.node;
                    let children: Vec<NodeId> = self.nodes[node].children().to_vec();
                    for c in children {
                        self.activate_from_memory(c, t);
                    }
                }
            }
        }
        // The WME stays resolvable until all S-node removals ran.
        self.wmes.remove(&tag);
    }

    fn drain_deltas(&mut self) -> Vec<CsDelta> {
        std::mem::take(&mut self.deltas)
    }

    fn materialize(&self, key: &InstKey) -> Option<ConflictItem> {
        match key {
            InstKey::Tuple { rule, tags } => {
                let info = &self.prods[rule.index()];
                let mut recency: Vec<TimeTag> = tags.to_vec();
                recency.sort_unstable_by(|a, b| b.cmp(a));
                Some(ConflictItem {
                    key: key.clone(),
                    rows: vec![tags.clone()],
                    aggregates: Vec::new(),
                    version: 0,
                    recency: recency.into(),
                    specificity: info.rule.specificity,
                })
            }
            InstKey::Soi { rule, parts } => {
                let si = self.prods[rule.index()].snode?;
                self.snodes[si].materialize(parts)
            }
        }
    }

    fn stats(&self) -> MatchStats {
        let mut s = self.stats;
        for sn in &self.snodes {
            let ss = sn.stats();
            s.snode_activations += ss.activations;
            s.aggregate_updates += ss.aggregate_updates;
        }
        s
    }

    fn algorithm_name(&self) -> &'static str {
        "rete"
    }

    fn to_dot(&self) -> Option<String> {
        Some(self.network_dot())
    }
}

impl ReteMatcher {
    // ------------------------------------------------------- activations

    /// A WME entered `node`'s alpha memory.
    fn right_activate(&mut self, node: NodeId, tag: TimeTag) {
        self.charge_beta();
        match &self.nodes[node] {
            BetaNode::Join {
                parent,
                tests,
                children,
                ..
            } => {
                let tests = tests.clone();
                let children = children.clone();
                let left_tokens = self.present_tokens(*parent);
                for t in left_tokens {
                    if self.eval_tests(&tests, t, tag) {
                        for &c in &children {
                            self.left_activate(c, t, Some(tag));
                        }
                    }
                }
            }
            BetaNode::Negative { tokens, tests, .. } => {
                let tests = tests.clone();
                let toks = tokens.clone();
                for tk in toks {
                    let Some(token) = self.tokens.get(tk) else {
                        continue;
                    };
                    let left = token.parent.expect("negative tokens have parents");
                    if self.eval_tests(&tests, left, tag) {
                        let was_empty = {
                            let token = self.tokens.get_mut(tk).unwrap();
                            let was = token.join_results.is_empty();
                            token.join_results.push(tag);
                            was
                        };
                        self.wmes.get_mut(&tag).unwrap().blocked.push(tk);
                        if was_empty {
                            // Newly blocked: retract everything below.
                            let children = {
                                let token = self.tokens.get_mut(tk).unwrap();
                                std::mem::take(&mut token.children)
                            };
                            for c in children {
                                self.delete_token(c);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("only joins and negatives are alpha successors"),
        }
    }

    /// A token (plus optional WME) flows into `node` from its left input.
    fn left_activate(&mut self, node: NodeId, parent_tok: TokId, wme: Option<TimeTag>) {
        self.charge_beta();
        match &self.nodes[node] {
            BetaNode::Memory { .. } => {
                let tok = self.make_token(node, parent_tok, wme);
                let children: Vec<NodeId> = self.nodes[node].children().to_vec();
                if let BetaNode::Memory { tokens, .. } = &mut self.nodes[node] {
                    tokens.push(tok);
                }
                for c in children {
                    self.activate_from_memory(c, tok);
                }
            }
            BetaNode::Join { .. } => {
                // Joins receive left activations via `activate_from_memory`.
                unreachable!("join nodes take tokens from their parent memory");
            }
            BetaNode::Negative { amem, tests, .. } => {
                let (amem, tests) = (*amem, tests.clone());
                let tok = self.make_token(node, parent_tok, wme);
                if let BetaNode::Negative { tokens, .. } = &mut self.nodes[node] {
                    tokens.push(tok);
                }
                // Compute the negative join results.
                let candidates = self.amems[amem].wmes.clone();
                let left = self.tokens.get(tok).unwrap().parent.unwrap();
                let mut results = Vec::new();
                for w in candidates {
                    if self.eval_tests(&tests, left, w) {
                        results.push(w);
                    }
                }
                for &w in &results {
                    self.wmes.get_mut(&w).unwrap().blocked.push(tok);
                }
                let pass = results.is_empty();
                self.tokens.get_mut(tok).unwrap().join_results = results;
                if pass {
                    let children: Vec<NodeId> = self.nodes[node].children().to_vec();
                    for c in children {
                        self.activate_from_memory(c, tok);
                    }
                }
            }
            BetaNode::Production { prod, .. } => {
                let prod = *prod;
                let tok = self.make_token(node, parent_tok, wme);
                if let BetaNode::Production { tokens, .. } = &mut self.nodes[node] {
                    tokens.push(tok);
                }
                self.prod_token_added(prod, tok);
            }
        }
    }

    /// A token was added to a Memory/Negative; push it through child `node`.
    fn activate_from_memory(&mut self, node: NodeId, tok: TokId) {
        match &self.nodes[node] {
            BetaNode::Join {
                amem,
                tests,
                children,
                ..
            } => {
                let (amem, tests, children) = (*amem, tests.clone(), children.clone());
                self.charge_beta();
                let wmes = self.amems[amem].wmes.clone();
                for w in wmes {
                    if self.eval_tests(&tests, tok, w) {
                        for &c in &children {
                            self.left_activate(c, tok, Some(w));
                        }
                    }
                }
            }
            BetaNode::Negative { .. } | BetaNode::Production { .. } => {
                self.left_activate(node, tok, None);
            }
            BetaNode::Memory { .. } => unreachable!("memories are not memory children"),
        }
    }

    /// Tokens of a Memory, or *unblocked* tokens of a Negative.
    fn present_tokens(&self, node: NodeId) -> Vec<TokId> {
        match &self.nodes[node] {
            BetaNode::Memory { tokens, .. } => tokens.clone(),
            BetaNode::Negative { tokens, .. } => tokens
                .iter()
                .copied()
                .filter(|&t| {
                    self.tokens
                        .get(t)
                        .is_some_and(|tk| tk.join_results.is_empty())
                })
                .collect(),
            _ => unreachable!("only memories and negatives store left tokens"),
        }
    }

    fn make_token(&mut self, node: NodeId, parent: TokId, wme: Option<TimeTag>) -> TokId {
        if !self.building {
            self.stats.tokens_created += 1;
        }
        let tok = self.tokens.alloc(Token {
            parent: Some(parent),
            wme,
            node,
            children: Vec::new(),
            join_results: Vec::new(),
        });
        self.tokens.get_mut(parent).unwrap().children.push(tok);
        if let Some(w) = wme {
            self.wmes.get_mut(&w).unwrap().tokens.push(tok);
        }
        tok
    }

    /// Evaluate compiled join tests between the token chain rooted at
    /// `left` (level = CE before the node's) and the WME `tag`.
    fn eval_tests(&mut self, tests: &[CompiledTest], left: TokId, tag: TimeTag) -> bool {
        let wme = &self.wmes[&tag].wme;
        for t in tests {
            if !self.building {
                self.stats.join_tests += 1;
            }
            let mut cur = left;
            for _ in 0..t.ups {
                cur = self.tokens.get(cur).unwrap().parent.unwrap();
            }
            let other_tag = self
                .tokens
                .get(cur)
                .unwrap()
                .wme
                .expect("join test must reference a positive CE");
            let other = &self.wmes[&other_tag].wme;
            if !t.pred.apply(&wme.get(t.attr), &other.get(t.other_attr)) {
                return false;
            }
        }
        true
    }

    /// Delete a token and all its descendants (post-order).
    fn delete_token(&mut self, tok: TokId) {
        let Some(token) = self.tokens.get_mut(tok) else {
            return;
        };
        let children = std::mem::take(&mut token.children);
        for c in children {
            self.delete_token(c);
        }
        let Some(token) = self.tokens.release(tok) else {
            return;
        };
        self.stats.tokens_deleted += 1;
        // Unregister from the owning node's memory.
        match &mut self.nodes[token.node] {
            BetaNode::Memory { tokens, .. }
            | BetaNode::Negative { tokens, .. }
            | BetaNode::Production { tokens, .. } => {
                if let Some(pos) = tokens.iter().position(|&t| t == tok) {
                    tokens.remove(pos);
                }
            }
            BetaNode::Join { .. } => unreachable!("joins store no tokens"),
        }
        // Unregister from parent and WME back-references.
        if let Some(p) = token.parent {
            if let Some(pt) = self.tokens.get_mut(p) {
                if let Some(pos) = pt.children.iter().position(|&c| c == tok) {
                    pt.children.remove(pos);
                }
            }
        }
        if let Some(w) = token.wme {
            if let Some(entry) = self.wmes.get_mut(&w) {
                if let Some(pos) = entry.tokens.iter().position(|&t| t == tok) {
                    entry.tokens.remove(pos);
                }
            }
        }
        for w in &token.join_results {
            if let Some(entry) = self.wmes.get_mut(w) {
                if let Some(pos) = entry.blocked.iter().position(|&t| t == tok) {
                    entry.blocked.remove(pos);
                }
            }
        }
        // Production terminal: report the retraction.
        if let BetaNode::Production { prod, .. } = &self.nodes[token.node] {
            self.prod_token_removed(*prod, &token);
        }
    }

    // ------------------------------------------------------ productions

    /// Matched WME tags of a production token, in positive-CE order.
    fn row_of(&self, tok: TokId) -> Vec<TimeTag> {
        let mut tags = Vec::new();
        let mut cur = Some(tok);
        while let Some(id) = cur {
            let t = self.tokens.get(id).expect("live chain");
            if let Some(w) = t.wme {
                tags.push(w);
            }
            cur = t.parent;
        }
        tags.reverse();
        tags
    }

    /// Like [`Self::row_of`] but usable for an already-released token (its
    /// parents are still live during post-order deletion).
    fn row_of_released(&self, token: &Token) -> Vec<TimeTag> {
        let mut tags = Vec::new();
        if let Some(w) = token.wme {
            tags.push(w);
        }
        let mut cur = token.parent;
        while let Some(id) = cur {
            let t = self.tokens.get(id).expect("ancestors outlive descendants");
            if let Some(w) = t.wme {
                tags.push(w);
            }
            cur = t.parent;
        }
        tags.reverse();
        tags
    }

    fn prod_token_added(&mut self, prod: ProdId, tok: TokId) {
        let tags = self.row_of(tok);
        let info = &self.prods[prod.index()];
        match info.snode {
            Some(si) => {
                let wmes = &self.wmes;
                let lookup = move |t: TimeTag, a: Symbol| -> Value {
                    wmes.get(&t).map(|e| e.wme.get(a)).unwrap_or(Value::Nil)
                };
                self.snodes[si].insert_row(&tags, &lookup, &mut self.deltas);
            }
            None => {
                let mut recency = tags.clone();
                recency.sort_unstable_by(|a, b| b.cmp(a));
                self.deltas.push(CsDelta::Insert(ConflictItem {
                    key: InstKey::Tuple {
                        rule: info.id,
                        tags: tags.clone().into(),
                    },
                    rows: vec![tags.into()],
                    aggregates: Vec::new(),
                    version: 0,
                    recency: recency.into(),
                    specificity: info.rule.specificity,
                }));
            }
        }
    }

    fn prod_token_removed(&mut self, prod: ProdId, token: &Token) {
        let tags = self.row_of_released(token);
        let info = &self.prods[prod.index()];
        match info.snode {
            Some(si) => {
                let wmes = &self.wmes;
                let lookup = move |t: TimeTag, a: Symbol| -> Value {
                    wmes.get(&t).map(|e| e.wme.get(a)).unwrap_or(Value::Nil)
                };
                self.snodes[si].remove_row(&tags, &lookup, &mut self.deltas);
            }
            None => {
                self.deltas.push(CsDelta::Remove(InstKey::Tuple {
                    rule: info.id,
                    tags: tags.into(),
                }));
            }
        }
    }
}
