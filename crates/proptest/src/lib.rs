//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! this shim supplies the slice of the proptest API the test-suite uses:
//!
//! - [`strategy::Strategy`] with `prop_map` and `boxed`;
//! - ranges, tuples, [`strategy::Just`], and `any::<bool>()` as strategies;
//! - [`collection::vec`];
//! - weighted and unweighted [`prop_oneof!`];
//! - the [`proptest!`] test macro with
//!   [`test_runner::ProptestConfig::with_cases`].
//!
//! Generation is driven by a deterministic splitmix64 PRNG. Every test
//! derives its stream from the test name, so runs are reproducible; set
//! `PROPTEST_SEED=<u64>` to explore a different stream. There is no
//! shrinking — a failure prints the case index and seed instead, which is
//! enough to re-run the exact input deterministically.

pub mod test_runner {
    //! Config and RNG for the [`proptest!`](crate::proptest) runner.

    /// How many cases each property runs. Mirrors proptest's type of the
    /// same name (only the `cases` knob is supported).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator.
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG seeded with `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Base seed: `PROPTEST_SEED` env var, or a fixed default.
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001)
    }

    /// Per-case seed mixing the test name and case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        base_seed() ^ h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// Generates values of one type from an RNG. The shim equivalent of
    /// proptest's trait of the same name (generation only, no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128 - self.start as i128) as u64;
                    assert!(width > 0, "empty range strategy");
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Weighted choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Union over `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// Strategy over a type's full domain.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// String strategies from a *restricted* regex subset: a single char
    /// class with a counted repetition, `[<chars-and-ranges>]{m,n}`, with
    /// `\n`/`\t`/`\\`/`\]`/`\-` escapes inside the class. That covers the
    /// fuzz patterns this workspace uses; anything fancier panics with a
    /// clear message rather than silently generating the wrong language.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_repeat(self);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn unsupported_pattern(pattern: &str) -> ! {
        panic!(
            "proptest shim: string strategies support only `[class]{{m,n}}`, got {:?}",
            pattern
        )
    }

    fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
        let Some(rest) = pattern.strip_prefix('[') else {
            unsupported_pattern(pattern)
        };
        let mut alphabet: Vec<char> = Vec::new();
        let mut chars = rest.chars().peekable();
        let take = |chars: &mut std::iter::Peekable<std::str::Chars>| -> char {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(other) => other,
                    None => unsupported_pattern(pattern),
                },
                Some(other) => other,
                None => unsupported_pattern(pattern),
            }
        };
        loop {
            if chars.peek() == Some(&']') {
                chars.next();
                break;
            }
            let c = take(&mut chars);
            if chars.peek() == Some(&'-') && chars.clone().nth(1) != Some(']') {
                chars.next(); // consume '-'
                let end = take(&mut chars);
                alphabet.extend((c as u32..=end as u32).filter_map(char::from_u32));
            } else {
                alphabet.push(c);
            }
        }
        let repeat: String = chars.collect();
        let Some(body) = repeat.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
            unsupported_pattern(pattern)
        };
        let Some((lo, hi)) = body.split_once(',') else {
            unsupported_pattern(pattern)
        };
        let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) else {
            unsupported_pattern(pattern)
        };
        assert!(
            !alphabet.is_empty() && hi >= lo,
            "degenerate string strategy {:?}",
            pattern
        );
        (alphabet, lo, hi)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted (`w => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` runs
/// `cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut rng = $crate::test_runner::TestRng::new(seed);
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest(shim): property `{}` failed at case {}/{} (seed {:#x}); \
                             re-run with PROPTEST_SEED={} to reproduce the stream",
                            stringify!($name), case, config.cases,
                            seed, $crate::test_runner::base_seed(),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(3i64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::new(7);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 700, "weighted arm dominates: {}", trues);
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0u8..4, 2..5);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0i64..100, 0i64..100).prop_map(|(a, b)| a * 100 + b);
        let mut r1 = TestRng::new(42);
        let mut r2 = TestRng::new(42);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_compiles_and_runs(xs in crate::collection::vec(0i64..10, 1..5), flip in any::<bool>()) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(flip, flip);
        }
    }
}
