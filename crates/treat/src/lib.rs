#![warn(missing_docs)]
//! The TREAT match algorithm (Miranker 1986) — the paper's contemporaneous
//! alternative to Rete, included as a baseline.
//!
//! TREAT keeps **no beta memories**: it retains only per-CE alpha memories
//! and the conflict set itself. When a WME enters, TREAT *seeks*: it joins
//! the new WME against the other CEs' alpha memories to produce exactly the
//! new instantiations. When a WME leaves, TREAT searches the retained
//! conflict set for instantiations containing it. Negated CEs are handled
//! by conflict-set search (on a blocker's arrival) and re-seek (on a
//! blocker's departure).
//!
//! Set-oriented rules work unchanged: the paper's S-node is deliberately
//! matcher-agnostic, so TREAT feeds its candidate rows through the same
//! [`sorete_soi::SNode`] that Rete uses — demonstrating the paper's claim
//! that the extension touches only "the end of the network".
//!
//! ```
//! use sorete_treat::TreatMatcher;
//! use sorete_lang::{analyze_rule, parse_rule, Matcher};
//! use sorete_base::{Symbol, TimeTag, Value, Wme};
//! use std::sync::Arc;
//!
//! let mut treat = TreatMatcher::new();
//! treat.add_rule(Arc::new(analyze_rule(&parse_rule(
//!     "(p r [item ^k <k>] (halt))").unwrap()).unwrap()));
//! treat.insert_wme(&Wme::new(TimeTag::new(1), Symbol::new("item"),
//!                            vec![(Symbol::new("k"), Value::Int(1))]));
//! assert_eq!(treat.drain_deltas().len(), 1);
//! assert_eq!(treat.stats().tokens_created, 1, "no beta memories: one row, one token");
//! ```

use sorete_base::{
    ConflictItem, CsDelta, FxHashMap, FxHashSet, InstKey, MatchStats, MemoryReport, RuleId, Symbol,
    TimeTag, TraceEvent, Tracer, Value, Wme,
};
use sorete_lang::analyze::{AnalyzedCe, AnalyzedRule, ConstTest, IntraTest};
use sorete_lang::matcher::Matcher;
use sorete_soi::{SNode, SoiStats};
use std::sync::Arc;

/// Alpha signature of a CE: class + constant + intra-WME tests. CEs with
/// equal signatures share one alpha memory (TREAT shares alpha memories
/// just as Rete does).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CeSignature {
    class: Symbol,
    consts: Vec<ConstTest>,
    intras: Vec<IntraTest>,
}

struct AlphaMem {
    sig: CeSignature,
    wmes: Vec<TimeTag>,
    /// Subscribers: (rule index, CE-order index).
    subs: Vec<(usize, usize)>,
}

struct RuleState {
    rule: Arc<AnalyzedRule>,
    id: RuleId,
    /// Alpha memory per CE, in CE order.
    ce_amem: Vec<usize>,
    /// Retained instantiation rows (tags per positive CE).
    rows: FxHashSet<Box<[TimeTag]>>,
    snode: Option<SNode>,
    excised: bool,
}

/// The TREAT matcher.
#[derive(Default)]
pub struct TreatMatcher {
    rules: Vec<RuleState>,
    amems: Vec<AlphaMem>,
    alpha_index: FxHashMap<CeSignature, usize>,
    wmes: FxHashMap<TimeTag, Wme>,
    deltas: Vec<CsDelta>,
    stats: MatchStats,
    tracer: Tracer,
}

impl TreatMatcher {
    /// An empty matcher.
    pub fn new() -> TreatMatcher {
        TreatMatcher::default()
    }

    /// Alpha memory count (for sharing tests).
    pub fn alpha_count(&self) -> usize {
        self.amems.len()
    }

    /// Combined counters of every S-node — the single source of truth the
    /// snode-related [`MatchStats`] fields are derived from (see
    /// [`SoiStats::merge_into`]).
    pub fn soi_stats(&self) -> SoiStats {
        self.rules
            .iter()
            .filter_map(|rs| rs.snode.as_ref())
            .fold(SoiStats::default(), |acc, sn| acc.merged(&sn.stats()))
    }

    fn sig_matches(&self, sig: &CeSignature, wme: &Wme) -> bool {
        wme.class == sig.class
            && sig.consts.iter().all(|t| t.matches(&wme.get(t.attr)))
            && sig
                .intras
                .iter()
                .all(|t| t.pred.apply(&wme.get(t.attr), &wme.get(t.other_attr)))
    }

    fn ce_matches(&mut self, ce: &AnalyzedCe, wme: &Wme, row: &[TimeTag]) -> bool {
        // Alpha-level tests are pre-filtered by memory membership; only the
        // join (variable consistency) tests remain.
        ce.var_joins.iter().all(|vj| {
            self.stats.join_tests += 1;
            let other = &self.wmes[&row[vj.other_pos_ce]];
            vj.pred.apply(&wme.get(vj.attr), &other.get(vj.other_attr))
        })
    }

    /// Enumerate complete positive rows of rule `ri`.
    ///
    /// - `pin`: fix positive CE `pin.0` (CE-order index) to WME `pin.1`
    ///   (the *seek* of a newly arrived WME);
    /// - `neg_witness`: restrict to rows the WME `neg_witness.1` would have
    ///   blocked at negated CE `neg_witness.0` (used when a blocker leaves).
    fn enumerate(
        &mut self,
        ri: usize,
        pin: Option<(usize, TimeTag)>,
        neg_witness: Option<(usize, TimeTag)>,
    ) -> Vec<Box<[TimeTag]>> {
        self.stats.beta_activations += 1;
        // TREAT has no beta network; the seek itself is the one "beta node"
        // per rule, so physical traces still show where join work happens.
        self.tracer.emit_physical(|| TraceEvent::BetaActivation {
            node: ri as u32,
            kind: "seek",
        });
        let rule = self.rules[ri].rule.clone();
        let ce_amem = self.rules[ri].ce_amem.clone();
        let mut partials: Vec<Vec<TimeTag>> = vec![Vec::new()];
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            if partials.is_empty() {
                break;
            }
            if ce.negated {
                if let Some((w_idx, w_tag)) = neg_witness {
                    if w_idx == ce_idx {
                        // Filter to rows the witness would have blocked.
                        let w = self.wmes[&w_tag].clone();
                        let mut filtered = Vec::new();
                        for row in std::mem::take(&mut partials) {
                            if self.ce_matches(ce, &w, &row) {
                                filtered.push(row);
                            }
                        }
                        partials = filtered;
                    }
                }
                // Current state: no WME in the CE's memory may block.
                let members = self.amems[ce_amem[ce_idx]].wmes.clone();
                let mut kept = Vec::new();
                for row in std::mem::take(&mut partials) {
                    let mut blocked = false;
                    for t in &members {
                        let w = self.wmes[t].clone();
                        if self.ce_matches(ce, &w, &row) {
                            blocked = true;
                            break;
                        }
                    }
                    if !blocked {
                        kept.push(row);
                    }
                }
                partials = kept;
            } else if let Some((p_idx, p_tag)) = pin.filter(|(p, _)| *p == ce_idx) {
                let _ = p_idx;
                let w = self.wmes[&p_tag].clone();
                let mut kept = Vec::new();
                for row in std::mem::take(&mut partials) {
                    if self.ce_matches(ce, &w, &row) {
                        let mut ext = row;
                        ext.push(p_tag);
                        kept.push(ext);
                    }
                }
                partials = kept;
            } else {
                let members = self.amems[ce_amem[ce_idx]].wmes.clone();
                let mut next = Vec::new();
                for row in &partials {
                    for t in &members {
                        let w = self.wmes[t].clone();
                        if self.ce_matches(ce, &w, row) {
                            let mut ext = row.clone();
                            ext.push(*t);
                            next.push(ext);
                        }
                    }
                }
                partials = next;
            }
        }
        partials.into_iter().map(|r| r.into_boxed_slice()).collect()
    }

    fn add_row(&mut self, ri: usize, row: Box<[TimeTag]>) {
        if !self.rules[ri].rows.insert(row.clone()) {
            return;
        }
        self.stats.tokens_created += 1;
        let (id, specificity, is_soi) = {
            let rs = &self.rules[ri];
            (rs.id, rs.rule.specificity, rs.snode.is_some())
        };
        if is_soi {
            let wmes = &self.wmes;
            let lookup =
                move |t: TimeTag, a: Symbol| wmes.get(&t).map(|w| w.get(a)).unwrap_or(Value::Nil);
            let rs = &mut self.rules[ri];
            rs.snode
                .as_mut()
                .unwrap()
                .insert_row(&row, &lookup, &mut self.deltas);
        } else {
            let mut recency: Vec<TimeTag> = row.to_vec();
            recency.sort_unstable_by(|a, b| b.cmp(a));
            self.deltas.push(CsDelta::Insert(ConflictItem {
                key: InstKey::Tuple {
                    rule: id,
                    tags: row.clone(),
                },
                rows: vec![row],
                aggregates: Vec::new(),
                version: 0,
                recency: recency.into(),
                specificity,
            }));
        }
    }

    fn remove_row(&mut self, ri: usize, row: &[TimeTag]) {
        if !self.rules[ri].rows.remove(row) {
            return;
        }
        self.stats.tokens_deleted += 1;
        let (id, is_soi) = {
            let rs = &self.rules[ri];
            (rs.id, rs.snode.is_some())
        };
        if is_soi {
            let wmes = &self.wmes;
            let lookup =
                move |t: TimeTag, a: Symbol| wmes.get(&t).map(|w| w.get(a)).unwrap_or(Value::Nil);
            let rs = &mut self.rules[ri];
            rs.snode
                .as_mut()
                .unwrap()
                .remove_row(row, &lookup, &mut self.deltas);
        } else {
            self.deltas.push(CsDelta::Remove(InstKey::Tuple {
                rule: id,
                tags: row.into(),
            }));
        }
    }
}

impl Matcher for TreatMatcher {
    fn add_rule(&mut self, rule: Arc<AnalyzedRule>) -> RuleId {
        let ri = self.rules.len();
        let id = RuleId::new(ri);
        let mut ce_amem = Vec::with_capacity(rule.ces.len());
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            let sig = CeSignature {
                class: ce.class,
                consts: ce.const_tests.clone(),
                intras: ce.intra_tests.clone(),
            };
            let ai = match self.alpha_index.get(&sig) {
                Some(&ai) => ai,
                None => {
                    // Backfill from working memory (rules may be added late).
                    let wmes: Vec<TimeTag> = self
                        .wmes
                        .values()
                        .filter(|w| {
                            w.class == sig.class
                                && sig.consts.iter().all(|t| t.matches(&w.get(t.attr)))
                                && sig
                                    .intras
                                    .iter()
                                    .all(|t| t.pred.apply(&w.get(t.attr), &w.get(t.other_attr)))
                        })
                        .map(|w| w.tag)
                        .collect();
                    self.amems.push(AlphaMem {
                        sig: sig.clone(),
                        wmes,
                        subs: Vec::new(),
                    });
                    self.alpha_index.insert(sig, self.amems.len() - 1);
                    self.amems.len() - 1
                }
            };
            self.amems[ai].subs.push((ri, ce_idx));
            ce_amem.push(ai);
        }
        let snode = rule.is_set_oriented.then(|| {
            let mut sn = SNode::new(id, rule.clone());
            sn.set_tracer(self.tracer.clone());
            sn
        });
        self.rules.push(RuleState {
            rule,
            id,
            ce_amem,
            rows: FxHashSet::default(),
            snode,
            excised: false,
        });
        // Derive the instantiations already supported by working memory
        // (also covers the purely-negative LHS satisfied from the start).
        if self.rules[ri].rule.num_pos == 0 || !self.wmes.is_empty() {
            for row in self.enumerate(ri, None, None) {
                self.add_row(ri, row);
            }
        }
        id
    }

    fn remove_rule(&mut self, rule: RuleId) {
        let ri = rule.index();
        if self.rules[ri].excised {
            return;
        }
        let rows: Vec<Box<[TimeTag]>> = self.rules[ri].rows.iter().cloned().collect();
        for row in rows {
            self.remove_row(ri, &row);
        }
        for mem in &mut self.amems {
            mem.subs.retain(|&(r, _)| r != ri);
        }
        self.rules[ri].excised = true;
    }

    fn insert_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        self.wmes.insert(tag, wme.clone());
        // Alpha phase: collect memberships first.
        let mut hits: Vec<usize> = Vec::new();
        for (ai, mem) in self.amems.iter().enumerate() {
            if self.sig_matches(&mem.sig, wme) {
                hits.push(ai);
            }
        }
        for &ai in &hits {
            self.stats.alpha_activations += 1;
            self.amems[ai].wmes.push(tag);
            self.tracer.emit_physical(|| TraceEvent::AlphaActivation {
                node: ai as u32,
                tag,
                insert: true,
            });
        }
        // Seek phase.
        for &ai in &hits {
            let subs = self.amems[ai].subs.clone();
            for (ri, ce_idx) in subs {
                let negated = self.rules[ri].rule.ces[ce_idx].negated;
                if negated {
                    // The new WME may block retained instantiations:
                    // conflict-set search.
                    let ce = self.rules[ri].rule.ces[ce_idx].clone();
                    let rows: Vec<Box<[TimeTag]>> = self.rules[ri].rows.iter().cloned().collect();
                    for row in rows {
                        let w = wme.clone();
                        if self.ce_matches(&ce, &w, &row) {
                            self.remove_row(ri, &row);
                        }
                    }
                } else {
                    // Seek new instantiations containing the WME at this CE.
                    // Skip if the WME was already seeded at an earlier CE
                    // position sharing the same memory — the enumerate below
                    // pins only this position; rows using the WME at other
                    // positions arise from those positions' own seeks.
                    for row in self.enumerate(ri, Some((ce_idx, tag)), None) {
                        self.add_row(ri, row);
                    }
                }
            }
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        // Alpha phase: drop memberships first so re-seeks see the new state.
        let mut hits: Vec<usize> = Vec::new();
        for (ai, mem) in self.amems.iter_mut().enumerate() {
            if let Some(pos) = mem.wmes.iter().position(|&t| t == tag) {
                mem.wmes.remove(pos);
                hits.push(ai);
            }
        }
        for &ai in &hits {
            self.tracer.emit_physical(|| TraceEvent::AlphaActivation {
                node: ai as u32,
                tag,
                insert: false,
            });
        }
        for &ai in &hits {
            let subs = self.amems[ai].subs.clone();
            for (ri, ce_idx) in subs {
                let negated = self.rules[ri].rule.ces[ce_idx].negated;
                if negated {
                    // A blocker left: rows it alone was blocking are live now.
                    for row in self.enumerate(ri, None, Some((ce_idx, tag))) {
                        self.add_row(ri, row);
                    }
                } else {
                    // Conflict-set search for rows containing the WME here.
                    let pos = self.rules[ri].rule.ces[ce_idx].pos_idx.unwrap();
                    let rows: Vec<Box<[TimeTag]>> = self.rules[ri]
                        .rows
                        .iter()
                        .filter(|r| r[pos] == tag)
                        .cloned()
                        .collect();
                    for row in rows {
                        self.remove_row(ri, &row);
                    }
                }
            }
        }
        self.wmes.remove(&tag);
    }

    fn drain_deltas(&mut self) -> Vec<CsDelta> {
        std::mem::take(&mut self.deltas)
    }

    fn materialize(&self, key: &InstKey) -> Option<ConflictItem> {
        match key {
            InstKey::Tuple { rule, tags } => {
                let rs = &self.rules[rule.index()];
                let mut recency: Vec<TimeTag> = tags.to_vec();
                recency.sort_unstable_by(|a, b| b.cmp(a));
                Some(ConflictItem {
                    key: key.clone(),
                    rows: vec![tags.clone()],
                    aggregates: Vec::new(),
                    version: 0,
                    recency: recency.into(),
                    specificity: rs.rule.specificity,
                })
            }
            InstKey::Soi { rule, parts } => {
                self.rules[rule.index()].snode.as_ref()?.materialize(parts)
            }
        }
    }

    fn stats(&self) -> MatchStats {
        let mut s = self.stats;
        self.soi_stats().merge_into(&mut s);
        s
    }

    fn algorithm_name(&self) -> &'static str {
        "treat"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        for rs in &mut self.rules {
            if let Some(sn) = &mut rs.snode {
                sn.set_tracer(self.tracer.clone());
            }
        }
    }

    fn memory_report(&self) -> MemoryReport {
        use std::mem::size_of;
        let mut report = MemoryReport::default();

        // TREAT keeps only alpha memories plus per-rule retained join rows
        // (no beta network) — the memory profile the paper contrasts
        // against Rete's.
        let mut alpha_bytes = 0u64;
        let mut alpha_entries = 0u64;
        for am in &self.amems {
            alpha_bytes += (am.wmes.len() * size_of::<TimeTag>()) as u64;
            alpha_entries += am.wmes.len() as u64;
        }
        report.push("alpha", alpha_bytes, alpha_entries);

        let mut row_bytes = 0u64;
        let mut row_entries = 0u64;
        for rs in &self.rules {
            for row in &rs.rows {
                row_bytes +=
                    (size_of::<Box<[TimeTag]>>() + row.len() * size_of::<TimeTag>()) as u64;
            }
            row_entries += rs.rows.len() as u64;
        }
        report.push("rule_rows", row_bytes, row_entries);

        let gamma_bytes: u64 = self
            .rules
            .iter()
            .filter_map(|rs| rs.snode.as_ref())
            .map(|sn| sn.gamma_bytes())
            .sum();
        let gamma_sois: u64 = self
            .rules
            .iter()
            .filter_map(|rs| rs.snode.as_ref())
            .map(|sn| sn.candidate_count() as u64)
            .sum();
        report.push("gamma", gamma_bytes, gamma_sois);

        let wt_bytes: u64 = self
            .wmes
            .values()
            .map(|w| {
                (size_of::<TimeTag>() + size_of::<Wme>() + std::mem::size_of_val(w.slots())) as u64
            })
            .sum();
        report.push("wme_table", wt_bytes, self.wmes.len() as u64);
        report
    }

    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        let soi = self.soi_stats();
        vec![
            ("soi_plus", soi.plus_tokens),
            ("soi_minus", soi.minus_tokens),
            ("soi_retime", soi.retime_tokens),
            ("gamma_created", soi.gamma_created),
            ("gamma_dropped", soi.gamma_dropped),
            ("agg_recompute", soi.aggregate_recomputes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_lang::{analyze_rule, parse_rule};

    fn wme(tag: u64, class: &str, slots: &[(&str, Value)]) -> Wme {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        )
    }

    struct H {
        m: TreatMatcher,
        cs: FxHashMap<InstKey, ConflictItem>,
        next: u64,
        store: FxHashMap<TimeTag, Wme>,
    }

    impl H {
        fn new(rules: &[&str]) -> H {
            let mut m = TreatMatcher::new();
            for r in rules {
                m.add_rule(Arc::new(analyze_rule(&parse_rule(r).unwrap()).unwrap()));
            }
            H {
                m,
                cs: FxHashMap::default(),
                next: 1,
                store: FxHashMap::default(),
            }
        }

        fn make(&mut self, class: &str, slots: &[(&str, Value)]) -> TimeTag {
            let w = wme(self.next, class, slots);
            self.next += 1;
            self.store.insert(w.tag, w.clone());
            self.m.insert_wme(&w);
            self.apply();
            w.tag
        }

        fn remove(&mut self, tag: TimeTag) {
            let w = self.store.remove(&tag).unwrap();
            self.m.remove_wme(&w);
            self.apply();
        }

        fn apply(&mut self) {
            for d in self.m.drain_deltas() {
                match d {
                    CsDelta::Insert(i) => {
                        assert!(self.cs.insert(i.key.clone(), i).is_none(), "dup insert");
                    }
                    CsDelta::Remove(k) => {
                        assert!(self.cs.remove(&k).is_some(), "unknown remove");
                    }
                    CsDelta::Retime(info) => {
                        // May be followed by a Remove in the same batch.
                        if let Some(fresh) = self.m.materialize(&info.key) {
                            assert!(
                                self.cs.insert(info.key.clone(), fresh).is_some(),
                                "unknown retime"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn figure1_six_instantiations() {
        let mut h =
            H::new(&["(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B) (halt))"]);
        for (n, t) in [
            ("Jack", "A"),
            ("Janice", "A"),
            ("Sue", "B"),
            ("Jack", "B"),
            ("Sue", "B"),
        ] {
            h.make(
                "player",
                &[("name", Value::sym(n)), ("team", Value::sym(t))],
            );
        }
        assert_eq!(h.cs.len(), 6);
    }

    #[test]
    fn removal_searches_conflict_set() {
        let mut h =
            H::new(&["(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B) (halt))"]);
        let a = h.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        );
        h.make(
            "player",
            &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
        );
        assert_eq!(h.cs.len(), 1);
        h.remove(a);
        assert_eq!(h.cs.len(), 0);
    }

    #[test]
    fn negation_block_and_unblock() {
        let mut h =
            H::new(&["(p lonely (player ^name <n> ^team A) -(player ^name <n> ^team B) (halt))"]);
        h.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        );
        assert_eq!(h.cs.len(), 1);
        let b = h.make(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("B"))],
        );
        assert_eq!(h.cs.len(), 0);
        h.remove(b);
        assert_eq!(h.cs.len(), 1);
    }

    #[test]
    fn set_oriented_rule_through_snode() {
        let mut h = H::new(&[
            "(p dups { [player ^name <n>] <P> } :scalar (<n>) :test ((count <P>) > 1) (set-remove <P>))",
        ]);
        h.make("player", &[("name", Value::sym("Sue"))]);
        assert_eq!(h.cs.len(), 0);
        let s2 = h.make("player", &[("name", Value::sym("Sue"))]);
        assert_eq!(h.cs.len(), 1);
        let item = h.cs.values().next().unwrap();
        assert_eq!(item.aggregates, vec![Value::Int(2)]);
        h.remove(s2);
        assert_eq!(h.cs.len(), 0);
    }

    #[test]
    fn same_wme_two_positions_no_duplicates() {
        let mut h = H::new(&["(p twice (player ^name <n>) (player ^name <n>) (halt))"]);
        h.make("player", &[("name", Value::sym("Solo"))]);
        // Rows (w,w) must appear exactly once even though both CEs share the
        // alpha memory and both positions seek.
        assert_eq!(h.cs.len(), 1);
        h.make("player", &[("name", Value::sym("Solo"))]);
        assert_eq!(h.cs.len(), 4);
    }

    #[test]
    fn alpha_sharing() {
        let mut m = TreatMatcher::new();
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r1 (player ^team A) (halt))").unwrap()).unwrap(),
        ));
        m.add_rule(Arc::new(
            analyze_rule(&parse_rule("(p r2 (player ^team A) (player ^team A) (halt))").unwrap())
                .unwrap(),
        ));
        assert_eq!(m.alpha_count(), 1);
    }
}
