//! Process-wide graceful-shutdown signal plumbing.
//!
//! A long-lived sorete process (the CLI runner in `--watch` mode, or the
//! `sorete-server` daemon) wants SIGTERM/SIGINT to mean "stop at the next
//! safe point and checkpoint", not "die mid-firing". The only thing that is
//! async-signal-safe to do in a handler is flip an atomic flag, so that is
//! all this module's handler does; everything else (checkpointing, closing
//! listeners, exiting with a typed code) happens on ordinary threads that
//! poll [`requested`] or an [`Arc<AtomicBool>`] bridged with [`bridge`].
//!
//! The handlers are installed with a tiny `extern "C"` binding to
//! `signal(2)` rather than a libc crate, keeping the dependency footprint
//! at zero. On non-unix platforms [`install`] is a no-op and [`requested`]
//! only ever reports `true` if [`request`] was called from Rust code.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;

/// SIGINT signal number (Ctrl-C).
pub const SIGINT: i32 = 2;
/// SIGTERM signal number (orchestrator-initiated stop).
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

#[cfg(unix)]
mod sys {
    use super::{LAST_SIGNAL, SHUTDOWN};
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        // Async-signal-safe: store-only.
        LAST_SIGNAL.store(signum, Ordering::SeqCst);
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install(signum: i32) {
        unsafe {
            signal(signum, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install(_signum: i32) {}
}

/// Install SIGTERM and SIGINT handlers that set the process-wide shutdown
/// flag. Idempotent; safe to call more than once.
pub fn install() {
    sys::install(SIGTERM);
    sys::install(SIGINT);
}

/// Has a shutdown been requested (by signal or by [`request`])?
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// The signal number that triggered shutdown (0 if none, or if the request
/// came from [`request`] without a signal name).
pub fn last_signal() -> i32 {
    LAST_SIGNAL.load(Ordering::SeqCst)
}

/// Human-readable name for the signal that triggered shutdown.
pub fn last_signal_name() -> &'static str {
    match last_signal() {
        SIGINT => "SIGINT",
        SIGTERM => "SIGTERM",
        _ => "shutdown",
    }
}

/// Request shutdown from Rust code (tests, an admin endpoint, a watchdog).
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clear the flag. Only for tests — a real process should stay shut down.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
    LAST_SIGNAL.store(0, Ordering::SeqCst);
}

/// Spawn a watcher thread that mirrors the process-wide flag into `flag`
/// (e.g. a `ProductionSystem` interrupt flag) so an engine buried in a run
/// loop notices the signal without polling a global. The thread exits once
/// the flag has been propagated or `stop` is set.
pub fn bridge(flag: Arc<AtomicBool>, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("sorete-shutdown-bridge".into())
        .spawn(move || loop {
            if requested() {
                flag.store(true, Ordering::SeqCst);
                return;
            }
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        })
        .expect("spawn shutdown bridge")
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the flag is process-global and the test
    // harness runs tests concurrently.
    #[test]
    fn request_reset_and_bridge() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        assert_eq!(last_signal_name(), "shutdown");
        reset();
        assert!(!requested());

        let flag = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let h = bridge(flag.clone(), stop.clone());
        request();
        h.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
        reset();
    }
}
