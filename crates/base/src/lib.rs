#![warn(missing_docs)]
//! Base types shared by every crate in the `sorete` workspace.
//!
//! This crate is the bottom of the dependency stack. It provides:
//!
//! - [`Symbol`]: an interned string with O(1) equality/hash ([`symbol`]);
//! - [`Value`]: the dynamic value type of the rule language and the
//!   relational substrate ([`value`]);
//! - [`Wme`] and [`TimeTag`]: working-memory elements, the "tuples with a
//!   time tag" the paper builds on ([`wme`]);
//! - fast hashing ([`hash`]), typed index arenas ([`arena`]);
//! - the conflict-set interchange types every match algorithm produces
//!   ([`inst`]): [`ConflictItem`], [`InstKey`], [`CsDelta`], [`MatchStats`];
//! - structured tracing ([`trace`]), hierarchical execution spans
//!   ([`span`]), and the metrics registry with memory accounting and run
//!   telemetry ([`metrics`]);
//! - shared error types ([`error`]).
//!
//! Nothing here knows about rules, Rete, or databases; it is pure substrate.

pub mod arena;
pub mod error;
pub mod flight;
pub mod hash;
pub mod inst;
pub mod metrics;
pub mod pool;
pub mod shutdown;
pub mod span;
pub mod symbol;
pub mod trace;
pub mod value;
pub mod wme;

pub use arena::Arena;
pub use error::{BaseError, Result};
pub use flight::{CycleRecord, Flight, FlightCounts};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use inst::{ConflictItem, CsDelta, InstKey, KeyPart, MatchStats, RetimeInfo, RuleId};
pub use metrics::{
    MemoryRegion, MemoryReport, MetricId, MetricKind, Metrics, MetricsRegistry, SnapshotWriter,
};
pub use pool::{jobs_from_env, resolve_jobs, WorkerPool};
pub use span::{
    logical_tree, render_perfetto, render_span_table, span_stats, OpenSpan, Span, SpanCatStats,
    Spans,
};
pub use symbol::Symbol;
pub use trace::{
    CollectSink, JsonlSink, NetProfile, NodeProfile, NullSink, SelfTimer, SharedSink, TraceEvent,
    TraceSink, Tracer,
};
pub use value::Value;
pub use wme::{TimeTag, Wme};

/// Define a `u32`-backed typed index, for use with [`Arena`].
///
/// ```
/// sorete_base::define_id!(pub struct NodeId);
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $name {
            /// Build an id from a raw index.
            #[inline]
            $vis fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }
            /// The raw index.
            #[inline]
            $vis fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $crate::arena::ArenaId for $name {
            #[inline]
            fn from_index(index: usize) -> Self {
                Self::new(index)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}
