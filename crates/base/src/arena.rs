//! Typed index arenas.
//!
//! The Rete network is a cyclic graph (nodes point down to children and up to
//! memories). Following the standard Rust idiom for such graphs — and the
//! perf-book guidance on compact indices — nodes live in `Vec`s and refer to
//! each other through `u32` newtype ids declared with
//! [`define_id!`](crate::define_id).

use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// Implemented by id newtypes created with [`define_id!`](crate::define_id).
pub trait ArenaId: Copy {
    /// Build the id from a raw index.
    fn from_index(index: usize) -> Self;
    /// Raw index.
    fn index(self) -> usize;
}

/// A growable store of `T` addressed by a typed id.
#[derive(Debug, Clone)]
pub struct Arena<T, I: ArenaId> {
    items: Vec<T>,
    _marker: PhantomData<I>,
}

impl<T, I: ArenaId> Default for Arena<T, I> {
    fn default() -> Self {
        Arena {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }
}

impl<T, I: ArenaId> Arena<T, I> {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty arena with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Insert an item, returning its id.
    #[inline]
    pub fn alloc(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Number of items ever allocated.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items have been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate `(id, &item)`.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterate `(id, &mut item)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Get by id, if in range.
    #[inline]
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.index())
    }

    /// Get mutably by id, if in range.
    #[inline]
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.index())
    }
}

impl<T, I: ArenaId> Index<I> for Arena<T, I> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.items[id.index()]
    }
}

impl<T, I: ArenaId> IndexMut<I> for Arena<T, I> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as sorete_base;

    sorete_base::define_id!(struct TestId);

    #[test]
    fn alloc_and_index() {
        let mut a: Arena<&str, TestId> = Arena::new();
        let x = a.alloc("x");
        let y = a.alloc("y");
        assert_eq!(a[x], "x");
        assert_eq!(a[y], "y");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let mut a: Arena<u32, TestId> = Arena::new();
        a.alloc(10);
        a.alloc(20);
        let collected: Vec<_> = a.iter().map(|(id, v)| (id.index(), *v)).collect();
        assert_eq!(collected, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn mutation_through_id() {
        let mut a: Arena<u32, TestId> = Arena::new();
        let id = a.alloc(1);
        a[id] += 41;
        assert_eq!(a[id], 42);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let a: Arena<u32, TestId> = Arena::new();
        assert!(a.get(TestId::new(0)).is_none());
    }
}
