//! The dynamic value type of the rule language and the relational substrate.
//!
//! OPS5 working memory holds symbols and numbers; unassigned attributes are
//! `nil`. We add `Tag` so that WME identifiers (time tags) can flow through
//! the relational substrate — the paper's Figure 6 stores WME tags in COND
//! table columns and groups by them.

use crate::symbol::Symbol;
use crate::wme::TimeTag;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamic value: `nil`, integer, float, symbol, or WME time tag.
///
/// Equality is *numeric* across `Int`/`Float` (`Value::Int(1) ==
/// Value::Float(1.0)`), matching OPS5's behaviour, and hashing is consistent
/// with that equality (integral floats hash as their integer value).
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// The absent/unspecified value (OPS5's `nil`).
    Nil,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned symbol.
    Sym(Symbol),
    /// A WME identifier (used by the relational/DIPS substrate).
    Tag(TimeTag),
}

impl Value {
    /// Intern `s` and wrap it.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::new(s))
    }

    /// True if this is `Nil`.
    #[inline]
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Numeric view, if this is a number.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The symbol, if this is one.
    #[inline]
    pub fn as_sym(&self) -> Option<Symbol> {
        match *self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The time tag, if this is one.
    #[inline]
    pub fn as_tag(&self) -> Option<TimeTag> {
        match *self {
            Value::Tag(t) => Some(t),
            _ => None,
        }
    }

    /// Numeric addition with int/float promotion. `None` for non-numbers.
    pub fn add(&self, other: &Value) -> Option<Value> {
        self.arith(other, |a, b| a.wrapping_add(b), |a, b| a + b)
    }

    /// Numeric subtraction with int/float promotion.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        self.arith(other, |a, b| a.wrapping_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication with int/float promotion.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        self.arith(other, |a, b| a.wrapping_mul(b), |a, b| a * b)
    }

    /// Numeric division. Integer division of two `Int`s; `None` on divide by
    /// zero or non-numbers.
    pub fn div(&self, other: &Value) -> Option<Value> {
        match (*self, *other) {
            (Value::Int(_), Value::Int(0)) => None,
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_div(b))),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                if b == 0.0 {
                    None
                } else {
                    Some(Value::Float(a / b))
                }
            }
        }
    }

    /// Numeric modulus (`Int` only).
    pub fn modulo(&self, other: &Value) -> Option<Value> {
        match (*self, *other) {
            (Value::Int(_), Value::Int(0)) => None,
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_rem(b))),
            _ => None,
        }
    }

    fn arith(
        &self,
        other: &Value,
        fi: impl Fn(i64, i64) -> i64,
        ff: impl Fn(f64, f64) -> f64,
    ) -> Option<Value> {
        match (*self, *other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(fi(a, b))),
            _ => Some(Value::Float(ff(self.as_f64()?, other.as_f64()?))),
        }
    }

    /// Append this value's *wire token* to `out`.
    ///
    /// The wire form is the typed-token text format shared by the reldb
    /// dump (`crates/reldb/src/persist.rs`), the write-ahead log, and the
    /// engine checkpoint: `N` (nil), `I:<decimal>` (int), `F:<hex bits>`
    /// (float — bit-exact round trip), `S:<escaped>` (symbol, escaping
    /// tab/newline/backslash), `T:<decimal>` (WME time tag). Tokens never
    /// contain tabs or newlines, so tab- or line-delimited framings can
    /// embed them without further quoting.
    pub fn push_wire(&self, out: &mut String) {
        match self {
            Value::Nil => out.push('N'),
            Value::Int(i) => {
                out.push_str("I:");
                out.push_str(&i.to_string());
            }
            Value::Float(f) => {
                out.push_str("F:");
                out.push_str(&format!("{:016x}", f.to_bits()));
            }
            Value::Sym(s) => {
                out.push_str("S:");
                for c in s.as_str().chars() {
                    match c {
                        '\t' => out.push_str("\\t"),
                        '\n' => out.push_str("\\n"),
                        '\\' => out.push_str("\\\\"),
                        other => out.push(other),
                    }
                }
            }
            Value::Tag(t) => {
                out.push_str("T:");
                out.push_str(&t.raw().to_string());
            }
        }
    }

    /// The wire token as an owned string (see [`Value::push_wire`]).
    pub fn to_wire(&self) -> String {
        let mut s = String::new();
        self.push_wire(&mut s);
        s
    }

    /// Parse a wire token produced by [`Value::push_wire`].
    pub fn from_wire(tok: &str) -> Result<Value, String> {
        if tok == "N" {
            return Ok(Value::Nil);
        }
        let (kind, body) = tok
            .split_once(':')
            .ok_or_else(|| format!("bad value token `{}`", tok))?;
        match kind {
            "I" => body
                .parse()
                .map(Value::Int)
                .map_err(|_| format!("bad int `{}`", body)),
            "F" => u64::from_str_radix(body, 16)
                .map(|bits| Value::Float(f64::from_bits(bits)))
                .map_err(|_| format!("bad float bits `{}`", body)),
            "T" => body
                .parse()
                .map(|raw| Value::Tag(TimeTag::new(raw)))
                .map_err(|_| format!("bad tag `{}`", body)),
            "S" => {
                let mut s = String::new();
                let mut chars = body.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('t') => s.push('\t'),
                            Some('n') => s.push('\n'),
                            Some('\\') => s.push('\\'),
                            other => return Err(format!("bad escape `\\{:?}`", other)),
                        }
                    } else {
                        s.push(c);
                    }
                }
                Ok(Value::sym(&s))
            }
            other => Err(format!("unknown value kind `{}`", other)),
        }
    }

    /// Rank for cross-kind ordering: Nil < numbers < symbols < tags.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Nil => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Sym(_) => 2,
            Value::Tag(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Tag(a), Value::Tag(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(&b) == Ordering::Equal,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                b.fract() == 0.0 && b >= i64::MIN as f64 && b <= i64::MAX as f64 && b as i64 == a
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match *self {
            Value::Nil => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(i);
            }
            Value::Float(f) => {
                // Keep hash consistent with Int/Float numeric equality.
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    state.write_u8(1);
                    state.write_i64(f as i64);
                } else {
                    state.write_u8(2);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Sym(s) => {
                state.write_u8(3);
                state.write_u32(s.id());
            }
            Value::Tag(t) => {
                state.write_u8(4);
                state.write_u64(t.raw());
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order: numbers compare numerically (NaN via `total_cmp`), symbols
/// lexically, tags by tag value; across kinds, `Nil < numbers < symbols <
/// tags`. Used for `foreach ascending/descending`, `min`/`max` aggregates,
/// and `ORDER BY` in the relational substrate.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (*self, *other) {
            (Value::Nil, Value::Nil) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(&b),
            (Value::Sym(a), Value::Sym(b)) => a.cmp(&b),
            (Value::Tag(a), Value::Tag(b)) => a.cmp(&b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(&b),
            (Value::Int(a), Value::Float(b)) => (a as f64).total_cmp(&b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(b as f64)),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Value::Nil => f.write_str("nil"),
            Value::Int(i) => write!(f, "{}", i),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{}", x)
                }
            }
            Value::Sym(s) => write!(f, "{}", s),
            Value::Tag(t) => write!(f, "@{}", t.raw()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}
impl From<TimeTag> for Value {
    fn from(t: TimeTag) -> Self {
        Value::Tag(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashSet;

    #[test]
    fn numeric_cross_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Int(1), Value::Float(1.5));
        assert_ne!(Value::Int(1), Value::sym("1"));
    }

    #[test]
    fn hash_consistent_with_eq() {
        let mut set = FxHashSet::default();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Float(3.0)));
        assert!(!set.contains(&Value::Float(3.5)));
    }

    #[test]
    fn ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Int(2) < Value::sym("a"));
        assert!(Value::sym("a") < Value::sym("b"));
        assert!(Value::Nil < Value::Int(i64::MIN));
        assert!(Value::sym("z") < Value::Tag(TimeTag::new(0)));
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Some(Value::Int(3)));
        assert_eq!(Value::Int(7).div(&Value::Int(0)), None);
        assert_eq!(Value::sym("x").add(&Value::Int(1)), None);
        assert_eq!(Value::Int(7).modulo(&Value::Int(4)), Some(Value::Int(3)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::sym("clerk").to_string(), "clerk");
        assert_eq!(Value::Tag(TimeTag::new(7)).to_string(), "@7");
    }

    #[test]
    fn wire_roundtrip() {
        for v in [
            Value::Nil,
            Value::Int(-42),
            Value::Float(0.1),
            Value::Float(-0.0),
            Value::sym("plain"),
            Value::sym("tab\there\nand\\slash"),
            Value::Tag(TimeTag::new(9)),
        ] {
            let tok = v.to_wire();
            assert!(!tok.contains('\t') && !tok.contains('\n'), "{:?}", tok);
            let back = Value::from_wire(&tok).unwrap();
            // Bit-exact for floats, plain equality otherwise.
            if let (Value::Float(a), Value::Float(b)) = (v, back) {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert_eq!(v, back);
            }
        }
        assert!(Value::from_wire("Q:1").is_err());
        assert!(Value::from_wire("I:xyz").is_err());
        assert!(Value::from_wire("S:bad\\q").is_err());
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan);
    }
}
