//! Working-memory elements.
//!
//! A WME is "a tuple with a time tag" (paper §3): a class, a set of
//! attribute/value slots, and a [`TimeTag`] that uniquely identifies it and
//! records its recency. Time tags drive OPS5 conflict resolution and the
//! paper's `foreach <elem-var> descending` iteration order.

use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// A WME identifier, unique and monotonically increasing within a working
/// memory. Higher = more recent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeTag(u64);

impl TimeTag {
    /// Build a tag from its raw counter value.
    #[inline]
    pub fn new(raw: u64) -> TimeTag {
        TimeTag(raw)
    }

    /// The raw counter value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TimeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TimeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A working-memory element: `(class ^attr value ...)` plus a time tag.
///
/// Slots are stored sorted by attribute symbol id; classes have a handful of
/// attributes, so lookup is a short scan. Attributes not present read as
/// [`Value::Nil`], matching OPS5.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Wme {
    /// Unique identifier / recency stamp.
    pub tag: TimeTag,
    /// The WME class (OPS5 `literalize` name).
    pub class: Symbol,
    slots: Box<[(Symbol, Value)]>,
}

impl Wme {
    /// Build a WME. Slots may arrive in any order; duplicates keep the last
    /// value (as an OPS5 `make` with a repeated attribute would).
    pub fn new(tag: TimeTag, class: Symbol, mut slots: Vec<(Symbol, Value)>) -> Wme {
        slots.sort_by_key(|(a, _)| a.id());
        // Keep the *last* occurrence of each attribute.
        let mut dedup: Vec<(Symbol, Value)> = Vec::with_capacity(slots.len());
        for (a, v) in slots {
            match dedup.last_mut() {
                Some((prev, pv)) if *prev == a => *pv = v,
                _ => dedup.push((a, v)),
            }
        }
        // Nil slots are equivalent to absent slots; drop them so equality
        // and hashing treat `(c ^a nil)` and `(c)` identically.
        dedup.retain(|(_, v)| !v.is_nil());
        Wme {
            tag,
            class,
            slots: dedup.into_boxed_slice(),
        }
    }

    /// Read an attribute; absent attributes are `nil`.
    pub fn get(&self, attr: Symbol) -> Value {
        self.slots
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| *v)
            .unwrap_or(Value::Nil)
    }

    /// All explicitly-present slots, sorted by attribute symbol id.
    pub fn slots(&self) -> &[(Symbol, Value)] {
        &self.slots
    }

    /// A copy of this WME with `updates` applied (the heart of `modify` /
    /// `set-modify`). The caller supplies the new time tag.
    pub fn modified(&self, new_tag: TimeTag, updates: &[(Symbol, Value)]) -> Wme {
        let mut slots: Vec<(Symbol, Value)> = self.slots.to_vec();
        for &(attr, val) in updates {
            match slots.iter_mut().find(|(a, _)| *a == attr) {
                Some((_, v)) => *v = val,
                None => slots.push((attr, val)),
            }
        }
        Wme::new(new_tag, self.class, slots)
    }
}

impl fmt::Debug for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ({}", self.tag, self.class)?;
        for (a, v) in self.slots.iter() {
            write!(f, " ^{} {}", a, v)?;
        }
        f.write_str(")")
    }
}

impl fmt::Display for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wme(tag: u64, class: &str, slots: &[(&str, Value)]) -> Wme {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        )
    }

    #[test]
    fn get_and_nil_default() {
        let w = wme(
            1,
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        );
        assert_eq!(w.get(Symbol::new("name")), Value::sym("Jack"));
        assert_eq!(w.get(Symbol::new("rating")), Value::Nil);
    }

    #[test]
    fn duplicate_attr_keeps_last() {
        let w = wme(1, "c", &[("a", Value::Int(1)), ("a", Value::Int(2))]);
        assert_eq!(w.get(Symbol::new("a")), Value::Int(2));
        assert_eq!(w.slots().len(), 1);
    }

    #[test]
    fn explicit_nil_equals_absent() {
        let a = wme(1, "c", &[("a", Value::Nil)]);
        let b = wme(1, "c", &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn modified_updates_and_extends() {
        let w = wme(1, "player", &[("team", Value::sym("A"))]);
        let m = w.modified(
            TimeTag::new(9),
            &[
                (Symbol::new("team"), Value::sym("B")),
                (Symbol::new("rating"), Value::Int(5)),
            ],
        );
        assert_eq!(m.tag, TimeTag::new(9));
        assert_eq!(m.get(Symbol::new("team")), Value::sym("B"));
        assert_eq!(m.get(Symbol::new("rating")), Value::Int(5));
        // Original untouched.
        assert_eq!(w.get(Symbol::new("team")), Value::sym("A"));
    }

    #[test]
    fn debug_format_matches_paper_style() {
        let w = wme(
            3,
            "player",
            &[("team", Value::sym("B")), ("name", Value::sym("Sue"))],
        );
        let s = format!("{:?}", w);
        assert!(s.starts_with("3: (player"), "{}", s);
        assert!(s.contains("^name Sue"), "{}", s);
        assert!(s.contains("^team B"), "{}", s);
    }

    #[test]
    fn tags_order_by_recency() {
        assert!(TimeTag::new(2) > TimeTag::new(1));
    }
}
