//! The metrics subsystem: a registry of named counters, gauges, and
//! log-scale histograms, plus a bounded per-cycle snapshot ring so a run
//! yields *curves*, not just totals.
//!
//! Design mirrors [`crate::trace`]'s discipline exactly:
//!
//! - [`Metrics`] is a cheap cloneable handle. Disabled (the default), it
//!   holds no registry and [`Metrics::with`] returns before running its
//!   closure — the hot path is one branch, no locking, no allocation.
//! - Enabled, the handle shares one [`MetricsRegistry`] behind an
//!   `Arc<Mutex<..>>` so the engine, the CLI, and tests all observe the
//!   same registry (lock poisoning is absorbed, as for trace sinks).
//! - Registry updates are allocation-free: counters and gauges are a
//!   single `u64` slot, histograms a fixed array of power-of-two buckets.
//!
//! Counters that have an existing single source of truth (`RunStats`,
//! `MatchStats`, `SoiStats`) are *sampled* into the registry at snapshot
//! time rather than incremented independently — the same single-sourcing
//! rule that keeps `SoiStats` and `MatchStats` from drifting. A registry
//! counter therefore cannot disagree with the stats it mirrors.
//!
//! Rendering is dependency-free: [`MetricsRegistry::render_prometheus`]
//! emits the Prometheus text exposition format (`# HELP`/`# TYPE` lines,
//! labels, cumulative histogram buckets), and each snapshot is one
//! hand-rolled JSON object suitable for a JSONL stream.

use crate::hash::FxHashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as IoWrite};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i` holds observations `v` with
/// `2^(i-1) <= v < 2^i` (bucket 0 holds `v = 0`). At nanosecond scale the
/// top finite bucket covers ~9 minutes; anything larger lands in `+Inf`.
pub const HIST_BUCKETS: usize = 40;

/// Default snapshot-ring capacity (snapshots kept in memory; the JSONL
/// stream, when installed, still receives every snapshot).
pub const DEFAULT_SNAPSHOT_CAPACITY: usize = 4096;

/// Handle to one registered metric. Obtained from the registration
/// methods; passing it to `add`/`set`/`observe` is O(1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MetricId(u32);

/// What kind of series a metric is (drives the `# TYPE` line and the
/// snapshot/exposition rendering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone non-decreasing count. By convention families end in
    /// `_total`. Counters sampled from an external single source are
    /// written with [`MetricsRegistry::set`]; monotonicity is inherited
    /// from the source.
    Counter,
    /// Point-in-time value that may go up or down (sizes, bytes).
    Gauge,
    /// Log-scale distribution of `u64` observations (nanoseconds, sizes).
    Histogram,
}

impl MetricKind {
    fn type_label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Fixed-bucket histogram state (log₂ buckets, see [`HIST_BUCKETS`]).
#[derive(Clone, Debug)]
struct HistData {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl HistData {
    fn new() -> HistData {
        HistData {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    #[inline]
    fn observe(&mut self, v: u64) {
        let bits = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bits.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }
}

struct Metric {
    family: &'static str,
    help: &'static str,
    kind: MetricKind,
    /// Optional single `name="value"` label pair.
    label: Option<(&'static str, &'static str)>,
    /// Flat key used in JSON snapshots: `family` or `family.labelvalue`.
    key: String,
    value: u64,
    hist: Option<Box<HistData>>,
}

impl Metric {
    /// `family{name="value"}` (or just `family`), for exposition lines.
    fn series(&self, family_suffix: &str) -> String {
        match self.label {
            Some((n, v)) => format!("{}{}{{{}=\"{}\"}}", self.family, family_suffix, n, v),
            None => format!("{}{}", self.family, family_suffix),
        }
    }
}

/// One retained per-cycle snapshot: the cycle number and the rendered
/// JSON object (one JSONL line, without the trailing newline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Recognise–act cycle the snapshot was taken at.
    pub cycle: u64,
    /// The full JSON object, e.g. `{"cycle":3,"sorete_firings_total":2,...}`.
    pub json: String,
}

/// Buffered JSONL writer for metric snapshots. Mirrors
/// [`crate::trace::JsonlSink`]: I/O errors after creation are swallowed
/// (metrics must never fail a run), and the buffer is flushed on
/// [`SnapshotWriter::flush`] *and* on drop, so files are complete even
/// when the engine halts or errors out mid-run.
pub struct SnapshotWriter {
    out: BufWriter<File>,
    written: u64,
}

impl SnapshotWriter {
    /// Create (truncate) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<SnapshotWriter> {
        Ok(SnapshotWriter {
            out: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Snapshot lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    fn write_line(&mut self, line: &str) {
        if writeln!(self.out, "{}", line).is_ok() {
            self.written += 1;
        }
    }

    /// Flush buffered lines to the file.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Byte-level memory accounting for one named region of a matcher or
/// store (alpha memories, beta tokens, γ-memories, index buckets, table
/// heaps, ...).
///
/// Methodology: **live-set accounting** — live entries × element size
/// plus their live heap payload. Allocator capacity slack, tombstoned
/// entries awaiting compaction, and container headers are excluded, so
/// the figure is a deterministic lower bound that tracks the *logical*
/// state: it grows as matches accumulate and shrinks after retracts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Region name (becomes the `region` label of the byte/entry gauges).
    pub name: &'static str,
    /// Estimated live bytes.
    pub bytes: u64,
    /// Live entry count (tokens, WMEs, rows, buckets — region-defined).
    pub entries: u64,
}

/// A set of [`MemoryRegion`]s: one point-in-time memory walk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// The regions, in the producer's preferred display order.
    pub regions: Vec<MemoryRegion>,
}

impl MemoryReport {
    /// Append a region.
    pub fn push(&mut self, name: &'static str, bytes: u64, entries: u64) {
        self.regions.push(MemoryRegion {
            name,
            bytes,
            entries,
        });
    }

    /// Sum of every region's bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Look a region up by name.
    pub fn region(&self, name: &str) -> Option<MemoryRegion> {
        self.regions.iter().copied().find(|r| r.name == name)
    }
}

/// The metric registry: definitions, current values, and the snapshot
/// ring. Usually reached through a [`Metrics`] handle.
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    by_key: FxHashMap<(&'static str, &'static str), MetricId>,
    ring: VecDeque<Snapshot>,
    capacity: usize,
    stream: Option<SnapshotWriter>,
    last_line: Option<Snapshot>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Empty registry with the default ring capacity.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            metrics: Vec::new(),
            by_key: FxHashMap::default(),
            ring: VecDeque::new(),
            capacity: DEFAULT_SNAPSHOT_CAPACITY,
            stream: None,
            last_line: None,
        }
    }

    /// Bound the snapshot ring (oldest snapshots are dropped first). A
    /// capacity of 0 keeps no snapshots in memory (streaming still works).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
    }

    /// Stream every future snapshot to `writer` as JSONL.
    pub fn stream_to(&mut self, writer: SnapshotWriter) {
        self.stream = Some(writer);
    }

    /// Snapshot lines written to the stream so far (0 when no stream).
    pub fn stream_written(&self) -> u64 {
        self.stream.as_ref().map_or(0, |w| w.written())
    }

    /// Flush the snapshot stream, if any.
    pub fn flush(&mut self) {
        if let Some(w) = &mut self.stream {
            w.flush();
        }
    }

    fn register(
        &mut self,
        kind: MetricKind,
        family: &'static str,
        help: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> MetricId {
        let map_key = (family, label.map_or("", |(_, v)| v));
        if let Some(&id) = self.by_key.get(&map_key) {
            debug_assert_eq!(self.metrics[id.0 as usize].kind, kind);
            return id;
        }
        let id = MetricId(self.metrics.len() as u32);
        let key = match label {
            Some((_, v)) => format!("{}.{}", family, v),
            None => family.to_string(),
        };
        self.metrics.push(Metric {
            family,
            help,
            kind,
            label,
            key,
            value: 0,
            hist: (kind == MetricKind::Histogram).then(|| Box::new(HistData::new())),
        });
        self.by_key.insert(map_key, id);
        id
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&mut self, family: &'static str, help: &'static str) -> MetricId {
        self.register(MetricKind::Counter, family, help, None)
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&mut self, family: &'static str, help: &'static str) -> MetricId {
        self.register(MetricKind::Gauge, family, help, None)
    }

    /// Register (or look up) an unlabeled histogram.
    pub fn histogram(&mut self, family: &'static str, help: &'static str) -> MetricId {
        self.register(MetricKind::Histogram, family, help, None)
    }

    /// Register (or look up) one labeled series of a counter family.
    pub fn counter_labeled(
        &mut self,
        family: &'static str,
        help: &'static str,
        label: &'static str,
        value: &'static str,
    ) -> MetricId {
        self.register(MetricKind::Counter, family, help, Some((label, value)))
    }

    /// Register (or look up) one labeled series of a gauge family.
    pub fn gauge_labeled(
        &mut self,
        family: &'static str,
        help: &'static str,
        label: &'static str,
        value: &'static str,
    ) -> MetricId {
        self.register(MetricKind::Gauge, family, help, Some((label, value)))
    }

    /// Increment a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        self.metrics[id.0 as usize].value += delta;
    }

    /// Set a gauge — or sample a counter from its single source of truth.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: u64) {
        self.metrics[id.0 as usize].value = value;
    }

    /// Record one histogram observation. Allocation-free.
    #[inline]
    pub fn observe(&mut self, id: MetricId, value: u64) {
        if let Some(h) = &mut self.metrics[id.0 as usize].hist {
            h.observe(value);
        }
    }

    /// Current value of a counter/gauge series (`label_value` is `""` for
    /// unlabeled series). For tests and table rendering.
    pub fn value(&self, family: &str, label_value: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.family == family && m.label.map_or("", |(_, v)| v) == label_value)
            .map(|m| m.value)
    }

    /// `(count, sum)` of a histogram family.
    pub fn hist_stats(&self, family: &str) -> Option<(u64, u64)> {
        self.metrics
            .iter()
            .find(|m| m.family == family)
            .and_then(|m| m.hist.as_ref())
            .map(|h| (h.count, h.sum))
    }

    /// Take a snapshot: render the current values as one JSON object,
    /// append it to the ring (dropping the oldest past capacity) and to
    /// the stream. A snapshot identical to the previous one (same cycle,
    /// same values) is skipped, so an explicit end-of-run snapshot after
    /// a final cycle snapshot does not duplicate lines.
    pub fn snapshot(&mut self, cycle: u64) {
        let mut json = String::with_capacity(64 + self.metrics.len() * 24);
        json.push_str("{\"cycle\":");
        let _ = write!(json, "{}", cycle);
        for m in &self.metrics {
            json.push(',');
            push_json_string(&mut json, &m.key);
            json.push(':');
            match &m.hist {
                Some(h) => {
                    let _ = write!(json, "{{\"count\":{},\"sum\":{}}}", h.count, h.sum);
                }
                None => {
                    let _ = write!(json, "{}", m.value);
                }
            }
        }
        json.push('}');
        let snap = Snapshot { cycle, json };
        if self.last_line.as_ref() == Some(&snap) {
            return;
        }
        if let Some(w) = &mut self.stream {
            w.write_line(&snap.json);
        }
        self.last_line = Some(snap.clone());
        if self.capacity > 0 {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(snap);
        }
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &Snapshot> {
        self.ring.iter()
    }

    /// Render the Prometheus text exposition format: per family one
    /// `# HELP` and `# TYPE` line, then every series; histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut done: Vec<&'static str> = Vec::new();
        for m in &self.metrics {
            if done.contains(&m.family) {
                continue;
            }
            done.push(m.family);
            let _ = writeln!(out, "# HELP {} {}", m.family, m.help);
            let _ = writeln!(out, "# TYPE {} {}", m.family, m.kind.type_label());
            for s in self.metrics.iter().filter(|s| s.family == m.family) {
                match &s.hist {
                    Some(h) => {
                        // Cumulative buckets; leading/trailing all-zero
                        // spans are elided (exposition does not require
                        // exhaustive buckets), `+Inf` always equals count.
                        let mut cum = 0u64;
                        for (i, b) in h.buckets.iter().enumerate().take(HIST_BUCKETS - 1) {
                            cum += b;
                            if cum == 0 || (cum == h.count && *b == 0) {
                                continue;
                            }
                            let _ = writeln!(
                                out,
                                "{} {}",
                                s.series(&format!("_bucket{{le=\"{}\"}}", 1u64 << i)),
                                cum
                            );
                        }
                        let _ = writeln!(out, "{} {}", s.series("_bucket{le=\"+Inf\"}"), h.count);
                        let _ = writeln!(out, "{} {}", s.series("_sum"), h.sum);
                        let _ = writeln!(out, "{} {}", s.series("_count"), h.count);
                    }
                    None => {
                        let _ = writeln!(out, "{} {}", s.series(""), s.value);
                    }
                }
            }
        }
        out
    }

    /// Render a compact fixed-width table of every current value — the
    /// `metrics` REPL command and the `watch` mode display.
    pub fn render_table(&self) -> String {
        let cycle = self.last_line.as_ref().map_or(0, |s| s.cycle);
        let mut out = format!("cycle {}  (snapshots kept: {})\n", cycle, self.ring.len());
        let width = self.metrics.iter().map(|m| m.key.len()).max().unwrap_or(0);
        for m in &self.metrics {
            match &m.hist {
                Some(h) => {
                    let mean = if h.count == 0 {
                        0.0
                    } else {
                        h.sum as f64 / h.count as f64
                    };
                    let _ = writeln!(
                        out,
                        "  {:w$}  count={} mean={:.0}ns",
                        m.key,
                        h.count,
                        mean,
                        w = width
                    );
                }
                None => {
                    let _ = writeln!(out, "  {:w$}  {}", m.key, m.value, w = width);
                }
            }
        }
        out
    }
}

/// Append a JSON string literal (quoted, escaped) to `out`.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Cheap cloneable handle to an optional shared registry. The default
/// (disabled) handle makes every instrumentation site a no-op branch.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl Metrics {
    /// The disabled handle (no registry; `with` never runs its closure).
    pub fn null() -> Metrics {
        Metrics { inner: None }
    }

    /// A fresh enabled handle with its own empty registry.
    pub fn new_registry() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Mutex::new(MetricsRegistry::new()))),
        }
    }

    /// Is a registry attached?
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Run `f` against the registry. Disabled: returns `None` *without
    /// constructing anything or taking a lock* — the same zero-cost
    /// discipline as `Tracer::emit`. A poisoned lock is absorbed.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut guard = inner.lock().unwrap_or_else(|e| e.into_inner());
        Some(f(&mut guard))
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Metrics({})",
            if self.enabled() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_runs_closure() {
        let m = Metrics::null();
        let mut ran = false;
        let r = m.with(|_| {
            ran = true;
            7
        });
        assert_eq!(r, None);
        assert!(!ran, "disabled metrics must not evaluate the closure");
        assert!(!m.enabled());
    }

    #[test]
    fn counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("t_total", "a counter");
        let g = r.gauge("t_gauge", "a gauge");
        let h = r.histogram("t_nanos", "a histogram");
        r.add(c, 2);
        r.add(c, 3);
        r.set(g, 9);
        r.set(g, 4);
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            r.observe(h, v);
        }
        assert_eq!(r.value("t_total", ""), Some(5));
        assert_eq!(r.value("t_gauge", ""), Some(4));
        let (count, sum) = r.hist_stats("t_nanos").unwrap();
        assert_eq!(count, 6);
        assert_eq!(sum, u64::MAX, "sum saturates instead of overflowing");
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        assert_eq!(a, b);
        let l1 = r.gauge_labeled("mem", "m", "region", "alpha");
        let l2 = r.gauge_labeled("mem", "m", "region", "alpha");
        let l3 = r.gauge_labeled("mem", "m", "region", "beta");
        assert_eq!(l1, l2);
        assert_ne!(l1, l3);
        assert_eq!(r.value("mem", "alpha"), Some(0));
    }

    #[test]
    fn ring_is_bounded_and_deduped() {
        let mut r = MetricsRegistry::new();
        r.set_capacity(3);
        let c = r.counter("n_total", "n");
        for i in 1..=5u64 {
            r.add(c, 1);
            r.snapshot(i);
        }
        let cycles: Vec<u64> = r.snapshots().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![3, 4, 5], "oldest snapshots dropped");
        // Identical repeat snapshot is skipped...
        r.snapshot(5);
        assert_eq!(r.snapshots().count(), 3);
        // ...but a changed value at the same cycle is recorded.
        r.add(c, 1);
        r.snapshot(5);
        let last: Vec<&Snapshot> = r.snapshots().collect();
        assert_eq!(last.len(), 3);
        assert!(last[2].json.contains("\"n_total\":6"));
    }

    #[test]
    fn snapshot_json_shape() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("a_total", "a");
        let h = r.histogram("d_nanos", "d");
        r.add(c, 2);
        r.observe(h, 10);
        r.snapshot(7);
        let s = r.snapshots().next().unwrap();
        assert_eq!(s.cycle, 7);
        assert_eq!(
            s.json,
            "{\"cycle\":7,\"a_total\":2,\"d_nanos\":{\"count\":1,\"sum\":10}}"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("s_firings_total", "Rule firings.");
        let a = r.gauge_labeled("s_mem_bytes", "Live bytes.", "region", "alpha");
        let b = r.gauge_labeled("s_mem_bytes", "Live bytes.", "region", "beta");
        let h = r.histogram("s_fire_nanos", "Cycle wall time.");
        r.add(c, 3);
        r.set(a, 100);
        r.set(b, 200);
        r.observe(h, 5);
        r.observe(h, 900);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP s_firings_total Rule firings.\n"));
        assert!(text.contains("# TYPE s_firings_total counter\n"));
        assert!(text.contains("s_firings_total 3\n"));
        assert!(text.contains("# TYPE s_mem_bytes gauge\n"));
        assert!(text.contains("s_mem_bytes{region=\"alpha\"} 100\n"));
        assert!(text.contains("s_mem_bytes{region=\"beta\"} 200\n"));
        assert!(text.contains("# TYPE s_fire_nanos histogram\n"));
        assert!(text.contains("s_fire_nanos_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("s_fire_nanos_sum 905\n"));
        assert!(text.contains("s_fire_nanos_count 2\n"));
        // One TYPE line per family, even with several series.
        assert_eq!(text.matches("# TYPE s_mem_bytes").count(), 1);
        // Cumulative buckets are non-decreasing and end at the count.
        let mut prev = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("s_fire_nanos_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "buckets must be cumulative: {}", text);
            prev = v;
        }
        assert_eq!(prev, 2);
    }

    #[test]
    fn writer_flushes_on_drop() {
        let dir = std::env::temp_dir().join("sorete-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        {
            let mut r = MetricsRegistry::new();
            r.stream_to(SnapshotWriter::create(&path).unwrap());
            let c = r.counter("w_total", "w");
            r.add(c, 1);
            r.snapshot(1);
            r.add(c, 1);
            r.snapshot(2);
            assert_eq!(r.stream_written(), 2);
            // No explicit flush: drop must deliver both lines.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"w_total\":2"));
    }

    #[test]
    fn memory_report_totals() {
        let mut rep = MemoryReport::default();
        rep.push("alpha", 100, 10);
        rep.push("beta", 50, 5);
        assert_eq!(rep.total_bytes(), 150);
        assert_eq!(rep.region("beta").unwrap().entries, 5);
        assert!(rep.region("gamma").is_none());
    }

    #[test]
    fn render_table_lists_every_metric() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("t_total", "t");
        let h = r.histogram("t_nanos", "t");
        r.add(c, 4);
        r.observe(h, 100);
        r.snapshot(9);
        let table = r.render_table();
        assert!(table.starts_with("cycle 9"));
        assert!(table.contains("t_total"));
        assert!(table.contains("count=1"));
    }
}
