//! Flight recorder: an always-on, fixed-capacity black box.
//!
//! Live telemetry (tracer sinks, spans, metrics streams) only helps when
//! someone turned it on *before* the failure. The [`Flight`] handle keeps
//! the engine's own account of the recent past regardless: three ring
//! buffers of compact binary frames — the last N logical
//! [`TraceEvent`]s, the last N closed [`Span`]s, and the last N per-cycle
//! [`CycleRecord`]s — overwritten oldest-first, so memory use is bounded
//! no matter how long the run. On an abnormal exit the engine drains the
//! rings into a crash-dump bundle (see `sorete_core::bundle`); an
//! offline inspector (`sorete debug`) reconstructs the timeline from the
//! same encoding via [`decode_events`] / [`decode_spans`] /
//! [`decode_cycles`].
//!
//! Cost discipline mirrors [`Tracer`](crate::trace::Tracer): a disabled
//! handle is one `Option` branch; an enabled handle encodes each record
//! into a reusable scratch buffer (LEB128 varints, length-prefixed
//! strings) and appends it to a `VecDeque<u8>` whose capacity reaches a
//! steady state — no per-record allocation once warm. High-frequency
//! *physical* match events (alpha/beta activations, join probes, S-node
//! traffic) are never recorded: they are per-algorithm detail with the
//! worst volume/diagnosis ratio. Rare physical events that matter for
//! post-mortems (I/O retries, degradation steps) are kept.

use crate::span::{category as span_cat, Span};
use crate::symbol::Symbol;
use crate::trace::TraceEvent;
use crate::wme::TimeTag;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default event capacity of each ring when the recorder is on and the
/// user did not pick a size (`--flight-recorder N`).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Byte budget per frame used to derive the ring's total byte cap; a
/// frame larger than the whole byte cap is dropped rather than recorded.
const BYTES_PER_FRAME: usize = 256;

/// One per-cycle sample the engine records at every cycle end — the
/// flight recorder's own metrics row, independent of whether the full
/// metrics registry is enabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleRecord {
    /// 1-based recognise–act cycle number.
    pub cycle: u64,
    /// The rule that fired this cycle.
    pub rule: Symbol,
    /// False when the firing rolled back.
    pub ok: bool,
    /// Cumulative firings at the end of the cycle.
    pub firings: u64,
    /// Working-memory size at the end of the cycle.
    pub wm_len: u64,
    /// Conflict-set size at the end of the cycle.
    pub cs_len: u64,
    /// Wall-clock duration of the cycle, nanoseconds.
    pub nanos: u64,
}

impl CycleRecord {
    /// Render as one JSON object (the `cycles.jsonl` schema of a crash
    /// bundle).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"rule\":\"{}\",\"ok\":{},\"firings\":{},\
             \"wm_len\":{},\"cs_len\":{},\"nanos\":{}}}",
            self.cycle,
            self.rule.as_str().escape_default(),
            self.ok,
            self.firings,
            self.wm_len,
            self.cs_len,
            self.nanos
        )
    }
}

// ---------------------------------------------------------------------
// Binary codec: LEB128 varints + length-prefixed strings. Frames are
// self-describing (tag byte first), so a drained ring decodes without
// any side table.
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_rows(out: &mut Vec<u8>, rows: &[Vec<u64>]) {
    put_u64(out, rows.len() as u64);
    for row in rows {
        put_u64(out, row.len() as u64);
        for t in row {
            put_u64(out, *t);
        }
    }
}

/// Byte cursor for decoding. All errors are strings: the decoder serves
/// `fsck`/`debug`, which report rather than panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("truncated frame at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err("varint overflows u64".into());
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u64()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("string of {} bytes overruns frame", len))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|e| format!("invalid utf-8 in frame: {}", e))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn rows(&mut self) -> Result<Vec<Vec<u64>>, String> {
        let n = self.u64()? as usize;
        if n > self.buf.len() {
            return Err(format!("row count {} overruns frame", n));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let m = self.u64()? as usize;
            if m > self.buf.len() {
                return Err(format!("row width {} overruns frame", m));
            }
            let mut row = Vec::with_capacity(m);
            for _ in 0..m {
                row.push(self.u64()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// Event tags (frame byte 0). Only the variants the recorder keeps have
// tags; the five high-frequency match-internal physical variants are
// filtered out at record time.
const EV_CYCLE_BEGIN: u8 = 0;
const EV_CYCLE_END: u8 = 1;
const EV_WME_ASSERT: u8 = 2;
const EV_WME_RETRACT: u8 = 3;
const EV_CS_INSERT: u8 = 4;
const EV_CS_REMOVE: u8 = 5;
const EV_CS_RETIME: u8 = 6;
const EV_FIRE: u8 = 7;
const EV_SKIP: u8 = 8;
const EV_ROLLBACK: u8 = 9;
const EV_GUARD: u8 = 10;
const EV_PANIC: u8 = 11;
const EV_IO_RETRY: u8 = 12;
const EV_QUARANTINE: u8 = 13;
const EV_READMIT: u8 = 14;
const EV_DEGRADE: u8 = 15;

/// True for events the flight recorder keeps: everything except the
/// high-frequency match-internal physical variants.
pub fn is_recorded(event: &TraceEvent) -> bool {
    !matches!(
        event,
        TraceEvent::AlphaActivation { .. }
            | TraceEvent::BetaActivation { .. }
            | TraceEvent::JoinProbe { .. }
            | TraceEvent::SnodeActivation { .. }
            | TraceEvent::AggregateUpdate { .. }
    )
}

fn encode_event(out: &mut Vec<u8>, event: &TraceEvent) -> bool {
    match event {
        TraceEvent::CycleBegin { cycle } => {
            out.push(EV_CYCLE_BEGIN);
            put_u64(out, *cycle);
        }
        TraceEvent::CycleEnd { cycle, rule, ok } => {
            out.push(EV_CYCLE_END);
            put_u64(out, *cycle);
            put_str(out, rule.as_str());
            put_bool(out, *ok);
        }
        TraceEvent::WmeAssert { cycle, tag, wme } => {
            out.push(EV_WME_ASSERT);
            put_u64(out, *cycle);
            put_u64(out, tag.raw());
            put_str(out, wme);
        }
        TraceEvent::WmeRetract { cycle, tag } => {
            out.push(EV_WME_RETRACT);
            put_u64(out, *cycle);
            put_u64(out, tag.raw());
        }
        TraceEvent::CsInsert {
            rule,
            key,
            soi,
            rows,
            aggregates,
        } => {
            out.push(EV_CS_INSERT);
            put_str(out, rule.as_str());
            put_str(out, key);
            put_bool(out, *soi);
            put_rows(out, rows);
            put_u64(out, aggregates.len() as u64);
            for a in aggregates {
                put_str(out, a);
            }
        }
        TraceEvent::CsRemove { rule, key, soi } => {
            out.push(EV_CS_REMOVE);
            put_str(out, rule.as_str());
            put_str(out, key);
            put_bool(out, *soi);
        }
        TraceEvent::CsRetime { rule, key, version } => {
            out.push(EV_CS_RETIME);
            put_str(out, rule.as_str());
            put_str(out, key);
            put_u64(out, *version);
        }
        TraceEvent::Fire { cycle, rule, rows } => {
            out.push(EV_FIRE);
            put_u64(out, *cycle);
            put_str(out, rule.as_str());
            put_rows(out, rows);
        }
        TraceEvent::SkipAction { action, tag } => {
            out.push(EV_SKIP);
            put_str(out, action);
            put_u64(out, tag.raw());
        }
        TraceEvent::Rollback { rule, error } => {
            out.push(EV_ROLLBACK);
            put_str(out, rule.as_str());
            put_str(out, error);
        }
        TraceEvent::GuardTrip { reason } => {
            out.push(EV_GUARD);
            put_str(out, reason);
        }
        TraceEvent::PanicCaught { rule, message } => {
            out.push(EV_PANIC);
            put_str(out, rule.as_str());
            put_str(out, message);
        }
        TraceEvent::IoRetry {
            attempt,
            delay_micros,
            error,
        } => {
            out.push(EV_IO_RETRY);
            put_u64(out, u64::from(*attempt));
            put_u64(out, *delay_micros);
            put_str(out, error);
        }
        TraceEvent::Quarantine { rule, failures } => {
            out.push(EV_QUARANTINE);
            put_str(out, rule.as_str());
            put_u64(out, u64::from(*failures));
        }
        TraceEvent::Readmit { rule } => {
            out.push(EV_READMIT);
            put_str(out, rule.as_str());
        }
        TraceEvent::Degrade {
            severity,
            budget,
            detail,
        } => {
            out.push(EV_DEGRADE);
            put_str(out, severity);
            put_str(out, budget);
            put_str(out, detail);
        }
        TraceEvent::AlphaActivation { .. }
        | TraceEvent::BetaActivation { .. }
        | TraceEvent::JoinProbe { .. }
        | TraceEvent::SnodeActivation { .. }
        | TraceEvent::AggregateUpdate { .. } => return false,
    }
    true
}

/// Intern a decoded string into the closed `&'static str` set a
/// [`TraceEvent`] field expects. Unknown values (a future writer's new
/// constant) degrade to a fixed placeholder rather than failing decode.
fn intern(s: &str, known: &[&'static str], fallback: &'static str) -> &'static str {
    known.iter().find(|k| **k == s).copied().unwrap_or(fallback)
}

fn decode_event(frame: &[u8]) -> Result<TraceEvent, String> {
    let mut c = Cursor::new(frame);
    let tag = c.u8()?;
    let ev = match tag {
        EV_CYCLE_BEGIN => TraceEvent::CycleBegin { cycle: c.u64()? },
        EV_CYCLE_END => TraceEvent::CycleEnd {
            cycle: c.u64()?,
            rule: Symbol::new(&c.str()?),
            ok: c.bool()?,
        },
        EV_WME_ASSERT => TraceEvent::WmeAssert {
            cycle: c.u64()?,
            tag: TimeTag::new(c.u64()?),
            wme: c.str()?,
        },
        EV_WME_RETRACT => TraceEvent::WmeRetract {
            cycle: c.u64()?,
            tag: TimeTag::new(c.u64()?),
        },
        EV_CS_INSERT => TraceEvent::CsInsert {
            rule: Symbol::new(&c.str()?),
            key: c.str()?,
            soi: c.bool()?,
            rows: c.rows()?,
            aggregates: {
                let n = c.u64()? as usize;
                if n > frame.len() {
                    return Err(format!("aggregate count {} overruns frame", n));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(c.str()?);
                }
                v
            },
        },
        EV_CS_REMOVE => TraceEvent::CsRemove {
            rule: Symbol::new(&c.str()?),
            key: c.str()?,
            soi: c.bool()?,
        },
        EV_CS_RETIME => TraceEvent::CsRetime {
            rule: Symbol::new(&c.str()?),
            key: c.str()?,
            version: c.u64()?,
        },
        EV_FIRE => TraceEvent::Fire {
            cycle: c.u64()?,
            rule: Symbol::new(&c.str()?),
            rows: c.rows()?,
        },
        EV_SKIP => TraceEvent::SkipAction {
            action: intern(&c.str()?, &["remove", "modify"], "action"),
            tag: TimeTag::new(c.u64()?),
        },
        EV_ROLLBACK => TraceEvent::Rollback {
            rule: Symbol::new(&c.str()?),
            error: c.str()?,
        },
        EV_GUARD => TraceEvent::GuardTrip { reason: c.str()? },
        EV_PANIC => TraceEvent::PanicCaught {
            rule: Symbol::new(&c.str()?),
            message: c.str()?,
        },
        EV_IO_RETRY => TraceEvent::IoRetry {
            attempt: c.u64()? as u32,
            delay_micros: c.u64()?,
            error: c.str()?,
        },
        EV_QUARANTINE => TraceEvent::Quarantine {
            rule: Symbol::new(&c.str()?),
            failures: c.u64()? as u32,
        },
        EV_READMIT => TraceEvent::Readmit {
            rule: Symbol::new(&c.str()?),
        },
        EV_DEGRADE => TraceEvent::Degrade {
            severity: intern(&c.str()?, &["soft", "hard"], "?"),
            budget: intern(
                &c.str()?,
                &[
                    "memory_bytes",
                    "wall_clock",
                    "checkpoint",
                    "memory-bytes",
                    "wall-clock",
                ],
                "?",
            ),
            detail: c.str()?,
        },
        other => return Err(format!("unknown event tag {}", other)),
    };
    if !c.done() {
        return Err(format!(
            "event frame has {} trailing bytes",
            frame.len() - c.pos
        ));
    }
    Ok(ev)
}

/// Span attribute names the engine emits; unknown names decode to
/// `"attr"` (numeric value preserved).
const SPAN_ATTRS: &[&str] = &["cycle", "fired", "shard", "units", "records", "bytes"];

const SPAN_CATEGORIES: &[&str] = &[
    span_cat::RUN,
    span_cat::CYCLE,
    span_cat::RESOLVE,
    span_cat::MATCH,
    span_cat::RHS,
    span_cat::WAL_COMMIT,
    span_cat::PARALLEL_CYCLE,
    span_cat::SHARD_MATCH,
    span_cat::FIRING_BUILD,
    span_cat::WAL_APPEND,
    span_cat::WAL_FLUSH,
    span_cat::WAL_FSYNC,
];

fn encode_span(out: &mut Vec<u8>, s: &Span) {
    put_u64(out, s.id);
    put_u64(out, s.parent);
    put_u64(out, u64::from(s.lane));
    put_str(out, s.category);
    put_u64(out, s.begin_nanos);
    put_u64(out, s.end_nanos);
    put_u64(out, s.attrs.len() as u64);
    for (k, v) in &s.attrs {
        put_str(out, k);
        put_u64(out, *v);
    }
}

fn decode_span(frame: &[u8]) -> Result<Span, String> {
    let mut c = Cursor::new(frame);
    let s = Span {
        id: c.u64()?,
        parent: c.u64()?,
        lane: c.u64()? as u32,
        category: intern(&c.str()?, SPAN_CATEGORIES, "other"),
        begin_nanos: c.u64()?,
        end_nanos: c.u64()?,
        attrs: {
            let n = c.u64()? as usize;
            if n > frame.len() {
                return Err(format!("attr count {} overruns frame", n));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push((intern(&c.str()?, SPAN_ATTRS, "attr"), c.u64()?));
            }
            v
        },
    };
    if !c.done() {
        return Err(format!(
            "span frame has {} trailing bytes",
            frame.len() - c.pos
        ));
    }
    Ok(s)
}

fn encode_cycle(out: &mut Vec<u8>, r: &CycleRecord) {
    put_u64(out, r.cycle);
    put_str(out, r.rule.as_str());
    put_bool(out, r.ok);
    put_u64(out, r.firings);
    put_u64(out, r.wm_len);
    put_u64(out, r.cs_len);
    put_u64(out, r.nanos);
}

fn decode_cycle(frame: &[u8]) -> Result<CycleRecord, String> {
    let mut c = Cursor::new(frame);
    let r = CycleRecord {
        cycle: c.u64()?,
        rule: Symbol::new(&c.str()?),
        ok: c.bool()?,
        firings: c.u64()?,
        wm_len: c.u64()?,
        cs_len: c.u64()?,
        nanos: c.u64()?,
    };
    if !c.done() {
        return Err(format!(
            "cycle frame has {} trailing bytes",
            frame.len() - c.pos
        ));
    }
    Ok(r)
}

// ---------------------------------------------------------------------
// The ring: length-prefixed frames in a VecDeque<u8>, evicted whole
// frames at a time.
// ---------------------------------------------------------------------

struct Ring {
    buf: VecDeque<u8>,
    frames: usize,
    cap_frames: usize,
    cap_bytes: usize,
    /// Reusable encode buffer: steady-state recording never allocates.
    scratch: Vec<u8>,
    evicted: u64,
}

impl Ring {
    fn new(cap_frames: usize) -> Ring {
        Ring {
            buf: VecDeque::new(),
            frames: 0,
            cap_frames,
            cap_bytes: (cap_frames * BYTES_PER_FRAME).max(64 * 1024),
            scratch: Vec::new(),
            evicted: 0,
        }
    }

    fn pop_oldest(&mut self) {
        let mut len = [0u8; 4];
        for b in &mut len {
            *b = self.buf.pop_front().expect("frame header present");
        }
        let len = u32::from_le_bytes(len) as usize;
        self.buf.drain(..len);
        self.frames -= 1;
        self.evicted += 1;
    }

    /// Encode a frame via `fill` into the scratch buffer, then append it,
    /// evicting oldest frames until both caps hold. `fill` returning
    /// false abandons the frame (unrecorded variant).
    fn push_with(&mut self, fill: impl FnOnce(&mut Vec<u8>) -> bool) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let keep = fill(&mut scratch);
        if keep {
            let need = scratch.len() + 4;
            if need > self.cap_bytes {
                self.evicted += 1; // oversized frame: dropped, counted
            } else {
                while self.frames >= self.cap_frames
                    || (self.frames > 0 && self.buf.len() + need > self.cap_bytes)
                {
                    self.pop_oldest();
                }
                self.buf
                    .extend((scratch.len() as u32).to_le_bytes().iter().copied());
                self.buf.extend(scratch.iter().copied());
                self.frames += 1;
            }
        }
        self.scratch = scratch;
    }

    /// The ring contents as one contiguous framed byte stream,
    /// oldest-first (the on-disk `*.bin` format of a crash bundle).
    fn bytes(&self) -> Vec<u8> {
        let (a, b) = self.buf.as_slices();
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        out
    }
}

/// Split a framed byte stream into payload frames.
fn frames(bytes: &[u8]) -> Result<Vec<&[u8]>, String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(format!("truncated frame header at byte {}", pos));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(format!(
                "frame of {} bytes at offset {} overruns stream of {}",
                len,
                pos - 4,
                bytes.len()
            ));
        }
        out.push(&bytes[pos..pos + len]);
        pos += len;
    }
    Ok(out)
}

/// Decode a framed event stream (a ring drain or a bundle's
/// `events.bin`), oldest-first.
pub fn decode_events(bytes: &[u8]) -> Result<Vec<TraceEvent>, String> {
    frames(bytes)?.into_iter().map(decode_event).collect()
}

/// Decode a framed span stream (`spans.bin`), oldest-first.
pub fn decode_spans(bytes: &[u8]) -> Result<Vec<Span>, String> {
    frames(bytes)?.into_iter().map(decode_span).collect()
}

/// Decode a framed cycle-record stream (`cycles.bin`), oldest-first.
pub fn decode_cycles(bytes: &[u8]) -> Result<Vec<CycleRecord>, String> {
    frames(bytes)?.into_iter().map(decode_cycle).collect()
}

struct FlightInner {
    events: Mutex<Ring>,
    spans: Mutex<Ring>,
    cycles: Mutex<Ring>,
    capacity: usize,
}

/// Counts describing a recorder's current contents (for bundle
/// manifests and `fsck` cross-checks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightCounts {
    /// Event frames currently retained.
    pub events: usize,
    /// Span frames currently retained.
    pub spans: usize,
    /// Cycle-record frames currently retained.
    pub cycles: usize,
    /// Frames overwritten (evicted or oversized) across all three rings.
    pub evicted: u64,
}

/// The cheap, cloneable recorder handle. Disabled it is one `Option`
/// branch per record call; enabled it encodes into a bounded ring.
#[derive(Clone, Default)]
pub struct Flight {
    inner: Option<Arc<FlightInner>>,
}

impl Flight {
    /// The disabled recorder (`--flight-recorder off`).
    pub fn off() -> Flight {
        Flight::default()
    }

    /// A recording handle retaining the last `capacity` frames in each
    /// ring. `capacity` 0 is the disabled recorder.
    pub fn recording(capacity: usize) -> Flight {
        if capacity == 0 {
            return Flight::off();
        }
        Flight {
            inner: Some(Arc::new(FlightInner {
                events: Mutex::new(Ring::new(capacity)),
                spans: Mutex::new(Ring::new(capacity)),
                cycles: Mutex::new(Ring::new(capacity)),
                capacity,
            })),
        }
    }

    /// True when recording.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Per-ring frame capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.capacity)
    }

    /// Record one logical trace event. Match-internal physical variants
    /// (see [`is_recorded`]) are ignored.
    #[inline]
    pub fn record_event(&self, event: &TraceEvent) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut ring = lock(&inner.events);
        ring.push_with(|out| encode_event(out, event));
    }

    /// Record one closed span.
    #[inline]
    pub fn record_span(&self, span: &Span) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut ring = lock(&inner.spans);
        ring.push_with(|out| {
            encode_span(out, span);
            true
        });
    }

    /// Record one per-cycle sample.
    #[inline]
    pub fn record_cycle(&self, record: &CycleRecord) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut ring = lock(&inner.cycles);
        ring.push_with(|out| {
            encode_cycle(out, record);
            true
        });
    }

    /// Decoded copy of the retained events, oldest-first.
    pub fn events(&self) -> Vec<TraceEvent> {
        decode_events(&self.events_bytes()).unwrap_or_default()
    }

    /// Decoded copy of the retained spans, oldest-first.
    pub fn spans(&self) -> Vec<Span> {
        decode_spans(&self.spans_bytes()).unwrap_or_default()
    }

    /// Decoded copy of the retained cycle records, oldest-first.
    pub fn cycles(&self) -> Vec<CycleRecord> {
        decode_cycles(&self.cycles_bytes()).unwrap_or_default()
    }

    /// The raw framed event stream (bundle `events.bin` contents).
    pub fn events_bytes(&self) -> Vec<u8> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| lock(&i.events).bytes())
    }

    /// The raw framed span stream (bundle `spans.bin` contents).
    pub fn spans_bytes(&self) -> Vec<u8> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| lock(&i.spans).bytes())
    }

    /// The raw framed cycle-record stream (bundle `cycles.bin` contents).
    pub fn cycles_bytes(&self) -> Vec<u8> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| lock(&i.cycles).bytes())
    }

    /// Current retention counts.
    pub fn counts(&self) -> FlightCounts {
        let Some(i) = self.inner.as_ref() else {
            return FlightCounts::default();
        };
        let (e, s, c) = (lock(&i.events), lock(&i.spans), lock(&i.cycles));
        FlightCounts {
            events: e.frames,
            spans: s.frames,
            cycles: c.frames,
            evicted: e.evicted + s.evicted + c.evicted,
        }
    }
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.as_ref() {
            Some(i) => write!(f, "Flight(cap {})", i.capacity),
            None => write!(f, "Flight(off)"),
        }
    }
}

/// Lock a ring, recovering from poisoning (a panic mid-record must not
/// silence the black box — its whole point is surviving panics).
fn lock(ring: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    ring.lock().unwrap_or_else(|e| e.into_inner())
}

/// The one "flush everything" hook every abnormal exit path goes
/// through: buffered trace sinks (JSONL) and the metrics snapshot
/// stream are pushed to disk so the tail of the run — including the
/// event describing the failure itself — is durable before the caller
/// unwinds, aborts, or writes a crash bundle.
pub fn on_abnormal_exit(tracer: &crate::trace::Tracer, metrics: &crate::metrics::Metrics) {
    tracer.flush();
    metrics.with(|r| r.flush());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::CycleBegin { cycle: i }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let f = Flight::off();
        assert!(!f.enabled());
        f.record_event(&ev(1));
        assert!(f.events().is_empty());
        assert_eq!(f.counts(), FlightCounts::default());
        assert_eq!(Flight::recording(0).capacity(), 0);
    }

    #[test]
    fn events_round_trip_through_the_codec() {
        let f = Flight::recording(64);
        let samples = vec![
            TraceEvent::CycleBegin { cycle: 3 },
            TraceEvent::CycleEnd {
                cycle: 3,
                rule: Symbol::new("r-1"),
                ok: false,
            },
            TraceEvent::WmeAssert {
                cycle: 0,
                tag: TimeTag::new(7),
                wme: "(player ^name Sue ^team B)".into(),
            },
            TraceEvent::WmeRetract {
                cycle: 2,
                tag: TimeTag::new(300),
            },
            TraceEvent::CsInsert {
                rule: Symbol::new("fill"),
                key: "t1 t3".into(),
                soi: true,
                rows: vec![vec![1, 3], vec![2, 3]],
                aggregates: vec!["5".into(), "2.5".into()],
            },
            TraceEvent::CsRemove {
                rule: Symbol::new("fill"),
                key: "t1 t3".into(),
                soi: false,
            },
            TraceEvent::CsRetime {
                rule: Symbol::new("fill"),
                key: "t1".into(),
                version: 9,
            },
            TraceEvent::Fire {
                cycle: 4,
                rule: Symbol::new("fill"),
                rows: vec![vec![5]],
            },
            TraceEvent::SkipAction {
                action: "remove",
                tag: TimeTag::new(5),
            },
            TraceEvent::Rollback {
                rule: Symbol::new("bad"),
                error: "boom\nline2".into(),
            },
            TraceEvent::GuardTrip {
                reason: "wall clock".into(),
            },
            TraceEvent::PanicCaught {
                rule: Symbol::new("bad"),
                message: "павук".into(),
            },
            TraceEvent::IoRetry {
                attempt: 2,
                delay_micros: 1500,
                error: "io".into(),
            },
            TraceEvent::Quarantine {
                rule: Symbol::new("bad"),
                failures: 3,
            },
            TraceEvent::Readmit {
                rule: Symbol::new("bad"),
            },
            TraceEvent::Degrade {
                severity: "soft",
                budget: "wall_clock",
                detail: "over".into(),
            },
        ];
        for e in &samples {
            f.record_event(e);
        }
        assert_eq!(f.events(), samples);
        assert_eq!(f.counts().events, samples.len());
        assert_eq!(f.counts().evicted, 0);
    }

    #[test]
    fn physical_match_events_are_filtered() {
        let f = Flight::recording(8);
        f.record_event(&TraceEvent::AlphaActivation {
            node: 1,
            tag: TimeTag::new(1),
            insert: true,
        });
        f.record_event(&TraceEvent::BetaActivation {
            node: 2,
            kind: "join",
        });
        f.record_event(&TraceEvent::JoinProbe {
            node: 2,
            hits: 1,
            scanned: 4,
        });
        f.record_event(&ev(1));
        assert_eq!(f.events(), vec![ev(1)]);
        // Rare physical events that matter post-mortem are kept.
        let io = TraceEvent::IoRetry {
            attempt: 1,
            delay_micros: 10,
            error: "x".into(),
        };
        assert!(is_recorded(&io));
    }

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let f = Flight::recording(4);
        for i in 0..10 {
            f.record_event(&ev(i));
        }
        let got = f.events();
        assert_eq!(got, (6..10).map(ev).collect::<Vec<_>>());
        let counts = f.counts();
        assert_eq!(counts.events, 4);
        assert_eq!(counts.evicted, 6);
    }

    #[test]
    fn spans_and_cycles_round_trip() {
        let f = Flight::recording(16);
        let s = Span {
            id: 5,
            parent: 1,
            lane: 2,
            category: span_cat::SHARD_MATCH,
            begin_nanos: 100,
            end_nanos: 4200,
            attrs: vec![("shard", 3)],
        };
        f.record_span(&s);
        let got = f.spans();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 5);
        assert_eq!(got[0].category, span_cat::SHARD_MATCH);
        assert_eq!(got[0].attrs, vec![("shard", 3)]);

        let r = CycleRecord {
            cycle: 7,
            rule: Symbol::new("step"),
            ok: true,
            firings: 7,
            wm_len: 40,
            cs_len: 3,
            nanos: 1234,
        };
        f.record_cycle(&r);
        assert_eq!(f.cycles(), vec![r.clone()]);
        assert!(r.to_json().contains("\"cycle\":7"));
        assert!(r.to_json().contains("\"rule\":\"step\""));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_events(&[1, 2, 3]).is_err(), "truncated header");
        let mut bytes = 200u32.to_le_bytes().to_vec();
        bytes.push(0);
        assert!(decode_events(&bytes).is_err(), "overrunning frame");
        // A frame with an unknown tag fails loudly.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(250);
        assert!(decode_events(&bytes)
            .unwrap_err()
            .contains("unknown event tag"));
        // Trailing bytes inside a frame fail too.
        let mut payload = Vec::new();
        payload.push(EV_CYCLE_BEGIN);
        put_u64(&mut payload, 1);
        payload.push(9);
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        assert!(decode_events(&bytes).unwrap_err().contains("trailing"));
    }

    #[test]
    fn steady_state_recording_reuses_capacity() {
        let f = Flight::recording(8);
        for i in 0..100 {
            f.record_event(&ev(i));
        }
        let inner = f.inner.as_ref().unwrap();
        let cap_before = {
            let ring = lock(&inner.events);
            (ring.buf.capacity(), ring.scratch.capacity())
        };
        for i in 100..10_000 {
            f.record_event(&ev(i));
        }
        let cap_after = {
            let ring = lock(&inner.events);
            (ring.buf.capacity(), ring.scratch.capacity())
        };
        assert_eq!(cap_before, cap_after, "warm ring must not grow");
    }
}
