//! Hierarchical execution spans: a timeline layer over the flat
//! [`TraceEvent`](crate::trace::TraceEvent) stream.
//!
//! Trace events say *what* happened; spans say *where the wall-clock
//! went*. A [`Span`] is an interval — begin/end nanoseconds relative to
//! the recorder's epoch — with a parent id (nesting), a lane id (which
//! pool worker ran it), a category, and numeric key=value attributes.
//! The engine emits `run → cycle → match/resolve/rhs/wal_commit` scopes,
//! the partitioned matcher emits per-shard `shard_match` spans from pool
//! lanes, the WAL emits `wal_append`/`wal_flush`/`wal_fsync`, and DIPS
//! emits `parallel_cycle` and per-unit `firing_build`.
//!
//! The disabled path follows the [`Tracer`](crate::trace::Tracer)
//! pattern: a [`Spans`] handle with no store makes [`Spans::begin`]
//! return `None` after one branch — no clock read, no allocation — and
//! [`Spans::end`] with `None` returns immediately, so instrumented hot
//! paths cost one predictable branch when spans are off.
//!
//! Like trace events, spans split into two strata. *Logical* categories
//! (`run`, `cycle`, `resolve`, `match`, `rhs`, `wal_commit`,
//! `parallel_cycle`) describe the recognise–act structure and their
//! nesting tree is identical at every `--jobs` level; *physical*
//! categories (`shard_match`, `firing_build`, `wal_append`, `wal_flush`,
//! `wal_fsync`) describe scheduling and I/O, which legitimately vary.
//! [`logical_tree`] renders the jobs-invariant view; [`render_perfetto`]
//! renders everything as Chrome trace-event JSON, one track per lane.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Span category constants (the closed set of names emitters use).
pub mod category {
    /// One whole `run()` call.
    pub const RUN: &str = "run";
    /// One recognise–act cycle (resolve + rhs + wal_commit).
    pub const CYCLE: &str = "cycle";
    /// Conflict-resolution: select + materialize the winning instantiation.
    pub const RESOLVE: &str = "resolve";
    /// One working-memory change propagated through the match network.
    pub const MATCH: &str = "match";
    /// Right-hand-side execution of the selected instantiation.
    pub const RHS: &str = "rhs";
    /// WAL commit of the cycle's op batch (append + commit point).
    pub const WAL_COMMIT: &str = "wal_commit";
    /// One DIPS concurrent-firing cycle.
    pub const PARALLEL_CYCLE: &str = "parallel_cycle";
    /// One shard's share of a WM change, on some pool lane. Physical.
    pub const SHARD_MATCH: &str = "shard_match";
    /// One DIPS firing built as an optimistic transaction. Physical.
    pub const FIRING_BUILD: &str = "firing_build";
    /// One WAL record framed and buffered. Physical.
    pub const WAL_APPEND: &str = "wal_append";
    /// One group-commit window handed to the OS as a single write. Physical.
    pub const WAL_FLUSH: &str = "wal_flush";
    /// One fsync (including the flush it implies). Physical.
    pub const WAL_FSYNC: &str = "wal_fsync";
}

/// A closed (ended) span. Times are nanoseconds since the recorder's
/// epoch, so spans from different threads share one clock.
#[derive(Clone, Debug)]
pub struct Span {
    /// Unique id within the recorder (1-based; 0 means "no parent").
    pub id: u64,
    /// Enclosing span's id, or 0 at the root.
    pub parent: u64,
    /// Pool lane that ran the span (0 = the engine/caller thread).
    pub lane: u32,
    /// Category name (see [`category`]).
    pub category: &'static str,
    /// Begin, nanoseconds since the recorder epoch.
    pub begin_nanos: u64,
    /// End, nanoseconds since the recorder epoch.
    pub end_nanos: u64,
    /// Numeric attributes, e.g. `("shard", 3)` or `("cycle", 17)`.
    pub attrs: Vec<(&'static str, u64)>,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.begin_nanos)
    }

    /// True for categories whose nesting tree must be identical across
    /// match algorithms and `--jobs` levels (the recognise–act structure);
    /// false for scheduling/I/O detail that legitimately varies.
    pub fn is_logical(&self) -> bool {
        !matches!(
            self.category,
            category::SHARD_MATCH
                | category::FIRING_BUILD
                | category::WAL_APPEND
                | category::WAL_FLUSH
                | category::WAL_FSYNC
        )
    }
}

/// Ticket for a span opened by [`Spans::begin`] / [`Spans::begin_scope`].
/// `Copy` so it can cross `catch_unwind` fences freely.
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    id: u64,
    parent: u64,
    begin: u64,
    scoped: bool,
}

/// Soft cap on recorded spans: beyond it new spans are counted but
/// dropped, so a pathological run cannot exhaust memory through its own
/// telemetry. Shard-busy accounting keeps accumulating regardless.
const MAX_SPANS: usize = 1 << 20;

struct SpanStore {
    epoch: Instant,
    next_id: AtomicU64,
    /// Innermost open *scoped* span id (0 = root). Scopes are pushed and
    /// popped on the engine thread only; pool lanes read it to parent
    /// their physical spans under the current phase.
    current: AtomicU64,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
    /// Cumulative busy nanos per shard id, fed by `shard_match` spans.
    shard_busy: Mutex<Vec<u64>>,
    /// Flight-recorder tap: every closed span is also written to the
    /// black box's bounded span ring (even past [`MAX_SPANS`], which only
    /// caps the in-memory vector). Disabled by default.
    flight: crate::flight::Flight,
}

/// The cheap, cloneable recorder handle emitters hold. Disabled (the
/// default) it is a single `Option` branch; enabled it stamps a
/// monotonic clock and appends to a shared buffer on `end`.
#[derive(Clone, Default)]
pub struct Spans {
    inner: Option<Arc<SpanStore>>,
}

impl Spans {
    /// The disabled recorder.
    pub fn null() -> Spans {
        Spans::default()
    }

    /// A recording handle with a fresh epoch.
    pub fn recording() -> Spans {
        Spans::recording_with_flight(crate::flight::Flight::off())
    }

    /// A recording handle whose closed spans are also copied into a
    /// flight recorder's span ring.
    pub fn recording_with_flight(flight: crate::flight::Flight) -> Spans {
        Spans {
            inner: Some(Arc::new(SpanStore {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                current: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                shard_busy: Mutex::new(Vec::new()),
                flight,
            })),
        }
    }

    /// True when spans are being recorded.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span under the current scope. Returns `None` (for free)
    /// when disabled.
    #[inline]
    pub fn begin(&self) -> Option<OpenSpan> {
        let store = self.inner.as_ref()?;
        Some(OpenSpan {
            id: store.next_id.fetch_add(1, Ordering::Relaxed),
            parent: store.current.load(Ordering::Relaxed),
            begin: store.epoch.elapsed().as_nanos() as u64,
            scoped: false,
        })
    }

    /// Open a span and make it the current scope, so spans opened until
    /// the matching [`Spans::end`] nest under it. Scopes must be opened
    /// and closed on the driving thread (the engine's), stack-fashion.
    #[inline]
    pub fn begin_scope(&self) -> Option<OpenSpan> {
        let store = self.inner.as_ref()?;
        let id = store.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = store.current.swap(id, Ordering::Relaxed);
        Some(OpenSpan {
            id,
            parent,
            begin: store.epoch.elapsed().as_nanos() as u64,
            scoped: true,
        })
    }

    /// Close `open` and record it. The attrs closure runs only when a
    /// span is actually open (mirrors `Tracer::emit`). Scoped spans
    /// restore their parent as the current scope — even if inner spans
    /// were abandoned by a panic, ending the enclosing scope resets the
    /// nesting to a sane state.
    #[inline]
    pub fn end(
        &self,
        open: Option<OpenSpan>,
        category: &'static str,
        lane: u32,
        attrs: impl FnOnce() -> Vec<(&'static str, u64)>,
    ) {
        let (Some(store), Some(open)) = (self.inner.as_ref(), open) else {
            return;
        };
        let end = store.epoch.elapsed().as_nanos() as u64;
        if open.scoped {
            store.current.store(open.parent, Ordering::Relaxed);
        }
        let span = Span {
            id: open.id,
            parent: open.parent,
            lane,
            category,
            begin_nanos: open.begin,
            end_nanos: end,
            attrs: attrs(),
        };
        store.flight.record_span(&span);
        let mut spans = store.spans.lock().unwrap();
        if spans.len() >= MAX_SPANS {
            store.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(span);
    }

    /// Close a `shard_match` span: records it (attr `shard`) and adds its
    /// duration to the per-shard busy accumulator that feeds the
    /// imbalance gauge.
    #[inline]
    pub fn end_shard(&self, open: Option<OpenSpan>, lane: u32, shard: usize) {
        let (Some(store), Some(open)) = (self.inner.as_ref(), open) else {
            return;
        };
        let end = store.epoch.elapsed().as_nanos() as u64;
        {
            let mut busy = store.shard_busy.lock().unwrap();
            if busy.len() <= shard {
                busy.resize(shard + 1, 0);
            }
            busy[shard] += end.saturating_sub(open.begin);
        }
        let span = Span {
            id: open.id,
            parent: open.parent,
            lane,
            category: category::SHARD_MATCH,
            begin_nanos: open.begin,
            end_nanos: end,
            attrs: vec![("shard", shard as u64)],
        };
        store.flight.record_span(&span);
        let mut spans = store.spans.lock().unwrap();
        if spans.len() >= MAX_SPANS {
            store.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(span);
    }

    /// Abandon `open` without recording it (e.g. a cycle scope opened
    /// before discovering the conflict set is empty). Scoped tickets
    /// restore their parent.
    #[inline]
    pub fn cancel(&self, open: Option<OpenSpan>) {
        let (Some(store), Some(open)) = (self.inner.as_ref(), open) else {
            return;
        };
        if open.scoped {
            store.current.store(open.parent, Ordering::Relaxed);
        }
    }

    /// Drain all recorded spans (sorted by begin time, then id, so the
    /// output is stable regardless of which lane appended first).
    pub fn take(&self) -> Vec<Span> {
        let Some(store) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut spans = std::mem::take(&mut *store.spans.lock().unwrap());
        spans.sort_by(|a, b| a.begin_nanos.cmp(&b.begin_nanos).then(a.id.cmp(&b.id)));
        spans
    }

    /// Copy of the recorded spans without draining.
    pub fn snapshot(&self) -> Vec<Span> {
        let Some(store) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut spans = store.spans.lock().unwrap().clone();
        spans.sort_by(|a, b| a.begin_nanos.cmp(&b.begin_nanos).then(a.id.cmp(&b.id)));
        spans
    }

    /// Spans dropped after hitting the recording cap.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// Cumulative busy nanoseconds per shard (index = shard id), or
    /// `None` when disabled or no shard span has ended yet.
    pub fn shard_busy(&self) -> Option<Vec<u64>> {
        let store = self.inner.as_ref()?;
        let busy = store.shard_busy.lock().unwrap();
        (!busy.is_empty()).then(|| busy.clone())
    }

    /// `max_shard_busy / mean_shard_busy` in permille (1000 = perfectly
    /// balanced), or `None` when no shard work has been recorded.
    pub fn shard_imbalance_permille(&self) -> Option<u64> {
        let busy = self.shard_busy()?;
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return None;
        }
        let max = *busy.iter().max().expect("non-empty");
        Some(max * 1000 * busy.len() as u64 / total)
    }
}

impl std::fmt::Debug for Spans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Spans({})",
            if self.enabled() { "recording" } else { "off" }
        )
    }
}

/// Aggregate statistics for one span category.
#[derive(Clone, Debug)]
pub struct SpanCatStats {
    /// Category name.
    pub category: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Median duration, nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile duration, nanoseconds.
    pub p95_nanos: u64,
    /// Longest duration, nanoseconds.
    pub max_nanos: u64,
    /// Total duration, nanoseconds.
    pub total_nanos: u64,
}

/// Per-category p50/p95/max/total over `spans`, sorted by descending
/// total time (fully deterministic: category name breaks ties).
pub fn span_stats(spans: &[Span]) -> Vec<SpanCatStats> {
    let mut by_cat: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for s in spans {
        match by_cat.iter_mut().find(|(c, _)| *c == s.category) {
            Some((_, v)) => v.push(s.nanos()),
            None => by_cat.push((s.category, vec![s.nanos()])),
        }
    }
    let mut out: Vec<SpanCatStats> = by_cat
        .into_iter()
        .map(|(category, mut durs)| {
            durs.sort_unstable();
            let pct = |p: usize| durs[(durs.len() - 1) * p / 100];
            SpanCatStats {
                category,
                count: durs.len() as u64,
                p50_nanos: pct(50),
                p95_nanos: pct(95),
                max_nanos: *durs.last().expect("non-empty"),
                total_nanos: durs.iter().sum(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_nanos
            .cmp(&a.total_nanos)
            .then(a.category.cmp(b.category))
    });
    out
}

/// Render [`span_stats`] as an aligned text table (micros).
pub fn render_span_table(spans: &[Span]) -> String {
    let stats = span_stats(spans);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>12}\n",
        "category", "count", "p50us", "p95us", "maxus", "totalus"
    ));
    for s in &stats {
        out.push_str(&format!(
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>12}\n",
            s.category,
            s.count,
            s.p50_nanos / 1_000,
            s.p95_nanos / 1_000,
            s.max_nanos / 1_000,
            s.total_nanos / 1_000,
        ));
    }
    out
}

/// Render the *logical* span tree — category nesting with counts,
/// independent of timing, lanes, and `--jobs` — as deterministic text.
/// Each line is an indented `category xCOUNT`, children sorted by name.
/// Physical spans (and anything hanging under them) are excluded.
pub fn logical_tree(spans: &[Span]) -> String {
    use std::collections::BTreeMap;
    // Path (chain of logical ancestor categories + own) → count.
    let by_id: std::collections::HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut counts: BTreeMap<Vec<&'static str>, u64> = BTreeMap::new();
    'next: for s in spans {
        if !s.is_logical() {
            continue;
        }
        let mut path = vec![s.category];
        let mut p = s.parent;
        while p != 0 {
            let Some(anc) = by_id.get(&p) else {
                // Parent never closed (panic mid-span): root the orphan.
                break;
            };
            if !anc.is_logical() {
                continue 'next;
            }
            path.push(anc.category);
            p = anc.parent;
        }
        path.reverse();
        *counts.entry(path).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (path, count) in &counts {
        for _ in 1..path.len() {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} x{}\n",
            path.last().expect("non-empty path"),
            count
        ));
    }
    out
}

/// Render spans as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load): one complete (`"ph":"X"`) event per span,
/// `pid` 1, `tid` = lane (one track per pool lane), timestamps in
/// microseconds since the recorder epoch, span/parent ids and attrs
/// under `args`. Thread-name metadata events label each lane's track.
pub fn render_perfetto(spans: &[Span]) -> String {
    let mut lanes: Vec<u32> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for lane in &lanes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"lane {lane}\"}}}}"
        ));
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let ts_us = s.begin_nanos / 1_000;
        let ts_frac = s.begin_nanos % 1_000;
        let dur = s.nanos();
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"id\":{},\"parent\":{}",
            s.lane,
            ts_us,
            ts_frac,
            dur / 1_000,
            dur % 1_000,
            s.category,
            if s.is_logical() {
                "logical"
            } else {
                "physical"
            },
            s.id,
            s.parent,
        ));
        for (k, v) in &s.attrs {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_costs_one_branch_and_records_nothing() {
        let s = Spans::null();
        assert!(!s.enabled());
        let open = s.begin();
        assert!(open.is_none());
        let mut called = false;
        s.end(open, category::CYCLE, 0, || {
            called = true;
            vec![]
        });
        assert!(!called, "disabled recorder must not build attrs");
        assert!(s.take().is_empty());
        assert!(s.shard_busy().is_none());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let s = Spans::recording();
        let run = s.begin_scope();
        let cycle = s.begin_scope();
        let leaf = s.begin();
        s.end(leaf, category::RESOLVE, 0, Vec::new);
        s.end(cycle, category::CYCLE, 0, || vec![("cycle", 1)]);
        let leaf2 = s.begin();
        s.end(leaf2, category::RESOLVE, 0, Vec::new);
        s.end(run, category::RUN, 0, Vec::new);
        let spans = s.take();
        assert_eq!(spans.len(), 4);
        let by_cat = |c: &str| spans.iter().filter(|x| x.category == c).count();
        assert_eq!(by_cat(category::RESOLVE), 2);
        let run_id = spans
            .iter()
            .find(|x| x.category == category::RUN)
            .unwrap()
            .id;
        let cycle_span = spans
            .iter()
            .find(|x| x.category == category::CYCLE)
            .unwrap();
        assert_eq!(cycle_span.parent, run_id);
        let leaves: Vec<&Span> = spans
            .iter()
            .filter(|x| x.category == category::RESOLVE)
            .collect();
        assert_eq!(leaves[0].parent, cycle_span.id, "first leaf under cycle");
        assert_eq!(leaves[1].parent, run_id, "second leaf back under run");
        assert_eq!(cycle_span.attrs, vec![("cycle", 1)]);
    }

    #[test]
    fn flight_tap_receives_closed_spans() {
        let f = crate::flight::Flight::recording(8);
        let s = Spans::recording_with_flight(f.clone());
        let run = s.begin_scope();
        let sh = s.begin();
        s.end_shard(sh, 1, 3);
        s.end(run, category::RUN, 0, || vec![("fired", 2)]);
        let ring = f.spans();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring[0].category, category::SHARD_MATCH);
        assert_eq!(ring[0].attrs, vec![("shard", 3)]);
        assert_eq!(ring[1].category, category::RUN);
        assert_eq!(ring[1].attrs, vec![("fired", 2)]);
    }

    #[test]
    fn cancel_restores_scope_without_recording() {
        let s = Spans::recording();
        let run = s.begin_scope();
        let cyc = s.begin_scope();
        s.cancel(cyc);
        let leaf = s.begin();
        s.end(leaf, category::MATCH, 0, Vec::new);
        s.end(run, category::RUN, 0, Vec::new);
        let spans = s.take();
        assert_eq!(spans.len(), 2);
        let leaf = spans
            .iter()
            .find(|x| x.category == category::MATCH)
            .unwrap();
        let run = spans.iter().find(|x| x.category == category::RUN).unwrap();
        assert_eq!(leaf.parent, run.id, "cancelled scope left no trace");
    }

    #[test]
    fn shard_busy_accumulates_and_imbalance_is_computed() {
        let s = Spans::recording();
        for shard in 0..4usize {
            let open = s.begin();
            std::thread::sleep(std::time::Duration::from_micros(200 * (shard as u64 + 1)));
            s.end_shard(open, 0, shard);
        }
        let busy = s.shard_busy().expect("recorded");
        assert_eq!(busy.len(), 4);
        assert!(busy[3] > busy[0]);
        let pm = s.shard_imbalance_permille().expect("non-zero work");
        assert!(pm > 1000, "max over mean must exceed 1.0x: {pm}");
        let spans = s.take();
        assert!(spans.iter().all(|x| x.category == category::SHARD_MATCH));
        assert_eq!(spans[0].attrs, vec![("shard", 0)]);
        assert!(!spans[0].is_logical());
    }

    #[test]
    fn stats_percentiles_and_order() {
        let mk = |cat: &'static str, id: u64, dur: u64| Span {
            id,
            parent: 0,
            lane: 0,
            category: cat,
            begin_nanos: 0,
            end_nanos: dur,
            attrs: vec![],
        };
        let spans: Vec<Span> = (1..=100)
            .map(|i| mk(category::MATCH, i, i * 1_000))
            .chain(std::iter::once(mk(category::RHS, 101, 1_000_000)))
            .collect();
        let stats = span_stats(&spans);
        assert_eq!(stats[0].category, category::MATCH, "largest total first");
        let m = &stats[0];
        assert_eq!(m.count, 100);
        assert_eq!(m.p50_nanos, 50_000);
        assert_eq!(m.p95_nanos, 95_000);
        assert_eq!(m.max_nanos, 100_000);
        let table = render_span_table(&spans);
        assert!(table.contains("match"), "{table}");
        assert!(table.contains("rhs"), "{table}");
    }

    #[test]
    fn logical_tree_ignores_physical_spans_and_counts_nesting() {
        let s = Spans::recording();
        let run = s.begin_scope();
        for c in 0..3 {
            let cyc = s.begin_scope();
            let m = s.begin_scope();
            // Physical shard spans under the match phase.
            for shard in 0..2 {
                let sh = s.begin();
                s.end_shard(sh, (shard % 2) as u32, shard);
            }
            s.end(m, category::MATCH, 0, Vec::new);
            s.end(cyc, category::CYCLE, 0, || vec![("cycle", c)]);
        }
        s.end(run, category::RUN, 0, Vec::new);
        let tree = logical_tree(&s.take());
        assert_eq!(tree, "run x1\n  cycle x3\n    match x3\n");
    }

    #[test]
    fn perfetto_output_shape() {
        let s = Spans::recording();
        let run = s.begin_scope();
        let sh = s.begin();
        s.end_shard(sh, 2, 5);
        s.end(run, category::RUN, 0, Vec::new);
        let json = render_perfetto(&s.take());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"lane 2\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"shard_match\""));
        assert!(json.contains("\"cat\":\"physical\""));
        assert!(json.contains("\"shard\":5"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn take_drains_and_sorts_by_begin() {
        let s = Spans::recording();
        let a = s.begin();
        let b = s.begin();
        s.end(b, category::RESOLVE, 0, Vec::new);
        s.end(a, category::MATCH, 0, Vec::new);
        let spans = s.take();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].begin_nanos <= spans[1].begin_nanos);
        assert!(s.take().is_empty(), "take drains");
    }
}
