//! Structured tracing: a typed event stream every matcher backend emits.
//!
//! The paper's evaluation replays token flow through the network by hand;
//! this module makes that replay mechanical. Engines and matchers emit
//! [`TraceEvent`]s through a [`Tracer`] handle into pluggable
//! [`TraceSink`]s:
//!
//! - [`NullSink`] — the zero-cost default (a [`Tracer`] with no sinks never
//!   constructs an event: [`Tracer::emit`] takes a closure and returns
//!   before calling it when disabled, so the hot path pays one branch on an
//!   empty `Vec`);
//! - [`CollectSink`] — buffers events in memory, for tests and `explain`;
//! - [`JsonlSink`] — streams events to a file as JSON Lines through a
//!   buffered writer.
//!
//! Events split into two strata. *Logical* events (cycle boundaries, WME
//! assert/retract, conflict-set deltas, firings, rollbacks, guard trips)
//! describe the recognise–act cycle and must be identical across match
//! algorithms; *physical* events (alpha/beta activations, join probes,
//! S-node activity) describe one algorithm's work and legitimately differ.
//! [`TraceEvent::is_logical`] performs the split.
//!
//! The module also hosts the per-node profiling types ([`NodeProfile`],
//! [`NetProfile`]) and the flat self-time accumulator ([`SelfTimer`]) the
//! Rete and TREAT matchers use to attribute match cost to network nodes.

use crate::symbol::Symbol;
use crate::wme::TimeTag;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A structured observation of engine or matcher activity.
///
/// Rows are raw time-tag values (`u64`), one inner vector per underlying
/// tuple match, one tag per positive CE — the same shape as
/// [`ConflictItem::rows`](crate::inst::ConflictItem). Timing never appears
/// in an event; cost lives in [`NetProfile`] so event streams stay
/// comparable across runs and backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A recognise–act cycle started (an instantiation was selected).
    CycleBegin {
        /// 1-based cycle number.
        cycle: u64,
    },
    /// The cycle finished; `ok` is false when the firing rolled back.
    CycleEnd {
        /// 1-based cycle number.
        cycle: u64,
        /// The rule that fired.
        rule: Symbol,
        /// False when the firing was rolled back.
        ok: bool,
    },
    /// A WME entered working memory.
    WmeAssert {
        /// Cycle during which the assert happened (0 = before any firing).
        cycle: u64,
        /// The new WME's time tag.
        tag: TimeTag,
        /// Rendered WME, e.g. `(player ^name Sue ^team B)`.
        wme: String,
    },
    /// A WME left working memory.
    WmeRetract {
        /// Cycle during which the retract happened.
        cycle: u64,
        /// The removed WME's time tag.
        tag: TimeTag,
    },
    /// A WME entered (or left) an alpha memory. Physical.
    AlphaActivation {
        /// Alpha memory index within the matcher.
        node: u32,
        /// The WME's time tag.
        tag: TimeTag,
        /// True on insert, false on removal.
        insert: bool,
    },
    /// A beta-level node processed an activation. Physical.
    BetaActivation {
        /// Node index within the matcher.
        node: u32,
        /// Node kind: `"join"`, `"negative"`, `"memory"`, `"production"`,
        /// or a backend-specific label.
        kind: &'static str,
    },
    /// A hash-index probe replaced a memory scan at a join. Physical.
    JoinProbe {
        /// Node index within the matcher.
        node: u32,
        /// Candidates the probe returned.
        hits: u64,
        /// Candidates a full scan would have visited.
        scanned: u64,
    },
    /// An S-node ran the Figure-3 algorithm for one token. Physical.
    SnodeActivation {
        /// The set-oriented rule the S-node serves.
        rule: Symbol,
        /// True for a `+` token, false for a `-` token.
        insert: bool,
    },
    /// An S-node incrementally updated aggregates. Physical.
    AggregateUpdate {
        /// The set-oriented rule the S-node serves.
        rule: Symbol,
        /// Number of aggregate registers touched.
        count: u64,
    },
    /// `+` token: an instantiation entered the conflict set.
    CsInsert {
        /// The rule instantiated.
        rule: Symbol,
        /// Canonical key text (see [`key_repr`](crate::inst::InstKey)).
        key: String,
        /// True for a set-oriented instantiation.
        soi: bool,
        /// Matched rows (raw time-tag values).
        rows: Vec<Vec<u64>>,
        /// Rendered aggregate values, in declaration order.
        aggregates: Vec<String>,
    },
    /// `-` token: an instantiation left the conflict set.
    CsRemove {
        /// The rule instantiated.
        rule: Symbol,
        /// Canonical key text.
        key: String,
        /// True for a set-oriented instantiation.
        soi: bool,
    },
    /// `time` token: an SOI changed contents and/or position.
    CsRetime {
        /// The rule instantiated.
        rule: Symbol,
        /// Canonical key text.
        key: String,
        /// New content version.
        version: u64,
    },
    /// An instantiation fired.
    Fire {
        /// 1-based cycle number.
        cycle: u64,
        /// The rule that fired.
        rule: Symbol,
        /// The rows the RHS iterated over.
        rows: Vec<Vec<u64>>,
    },
    /// An RHS action was skipped (e.g. `remove` of a dead time tag).
    SkipAction {
        /// The action kind, e.g. `"remove"` or `"modify"`.
        action: &'static str,
        /// The stale tag the action referenced.
        tag: TimeTag,
    },
    /// A firing was rolled back.
    Rollback {
        /// The rule whose firing rolled back.
        rule: Symbol,
        /// The error that triggered the rollback.
        error: String,
    },
    /// A run guard stopped the run.
    GuardTrip {
        /// Human-readable description of the violated guard.
        reason: String,
    },
    /// A panic unwound out of a firing and was caught by the supervisor.
    PanicCaught {
        /// The rule whose firing panicked.
        rule: Symbol,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// A durable-I/O operation failed transiently and will be retried.
    IoRetry {
        /// 1-based retry attempt about to run.
        attempt: u32,
        /// Backoff delay before the attempt, in microseconds.
        delay_micros: u64,
        /// The transient error being retried.
        error: String,
    },
    /// A rule's circuit breaker tripped: the rule is quarantined.
    Quarantine {
        /// The quarantined rule.
        rule: Symbol,
        /// Failures inside the breaker window that tripped it.
        failures: u32,
    },
    /// A quarantined rule was re-admitted to the conflict set.
    Readmit {
        /// The re-admitted rule.
        rule: Symbol,
    },
    /// Resource pressure triggered a degradation step (soft limit →
    /// automatic checkpoint; hard limit → orderly halt-with-checkpoint).
    Degrade {
        /// `"soft"` or `"hard"`.
        severity: &'static str,
        /// Which budget tripped, e.g. `"memory-bytes"` or `"wall-clock"`.
        budget: &'static str,
        /// Human-readable detail (limit vs. observed).
        detail: String,
    },
}

impl TraceEvent {
    /// The event's schema name (the `"ev"` field of its JSON form).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CycleBegin { .. } => "cycle_begin",
            TraceEvent::CycleEnd { .. } => "cycle_end",
            TraceEvent::WmeAssert { .. } => "wme_assert",
            TraceEvent::WmeRetract { .. } => "wme_retract",
            TraceEvent::AlphaActivation { .. } => "alpha",
            TraceEvent::BetaActivation { .. } => "beta",
            TraceEvent::JoinProbe { .. } => "probe",
            TraceEvent::SnodeActivation { .. } => "snode",
            TraceEvent::AggregateUpdate { .. } => "aggregate",
            TraceEvent::CsInsert { .. } => "cs_insert",
            TraceEvent::CsRemove { .. } => "cs_remove",
            TraceEvent::CsRetime { .. } => "cs_retime",
            TraceEvent::Fire { .. } => "fire",
            TraceEvent::SkipAction { .. } => "skip",
            TraceEvent::Rollback { .. } => "rollback",
            TraceEvent::GuardTrip { .. } => "guard",
            TraceEvent::PanicCaught { .. } => "panic_caught",
            TraceEvent::IoRetry { .. } => "io_retry",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::Readmit { .. } => "readmit",
            TraceEvent::Degrade { .. } => "degrade",
        }
    }

    /// True for events every matcher backend must emit identically
    /// (recognise–act cycle structure, WM changes, conflict-set deltas,
    /// firings). Physical events — per-node activity that legitimately
    /// differs between algorithms — return false.
    pub fn is_logical(&self) -> bool {
        !matches!(
            self,
            TraceEvent::AlphaActivation { .. }
                | TraceEvent::BetaActivation { .. }
                | TraceEvent::JoinProbe { .. }
                | TraceEvent::SnodeActivation { .. }
                | TraceEvent::AggregateUpdate { .. }
                // I/O retries and degradation depend on storage timing and
                // per-backend memory footprints, so they may legitimately
                // differ across matchers running the same program.
                | TraceEvent::IoRetry { .. }
                | TraceEvent::Degrade { .. }
        )
    }

    /// Render the event as one JSON object (no trailing newline). This is
    /// the schema `--trace-json` emits, one object per line.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"ev\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            TraceEvent::CycleBegin { cycle } => {
                push_u64(&mut s, "cycle", *cycle);
            }
            TraceEvent::CycleEnd { cycle, rule, ok } => {
                push_u64(&mut s, "cycle", *cycle);
                push_str(&mut s, "rule", rule.as_str());
                push_bool(&mut s, "ok", *ok);
            }
            TraceEvent::WmeAssert { cycle, tag, wme } => {
                push_u64(&mut s, "cycle", *cycle);
                push_u64(&mut s, "tag", tag.raw());
                push_str(&mut s, "wme", wme);
            }
            TraceEvent::WmeRetract { cycle, tag } => {
                push_u64(&mut s, "cycle", *cycle);
                push_u64(&mut s, "tag", tag.raw());
            }
            TraceEvent::AlphaActivation { node, tag, insert } => {
                push_u64(&mut s, "node", u64::from(*node));
                push_u64(&mut s, "tag", tag.raw());
                push_bool(&mut s, "insert", *insert);
            }
            TraceEvent::BetaActivation { node, kind } => {
                push_u64(&mut s, "node", u64::from(*node));
                push_str(&mut s, "kind", kind);
            }
            TraceEvent::JoinProbe {
                node,
                hits,
                scanned,
            } => {
                push_u64(&mut s, "node", u64::from(*node));
                push_u64(&mut s, "hits", *hits);
                push_u64(&mut s, "scanned", *scanned);
            }
            TraceEvent::SnodeActivation { rule, insert } => {
                push_str(&mut s, "rule", rule.as_str());
                push_bool(&mut s, "insert", *insert);
            }
            TraceEvent::AggregateUpdate { rule, count } => {
                push_str(&mut s, "rule", rule.as_str());
                push_u64(&mut s, "count", *count);
            }
            TraceEvent::CsInsert {
                rule,
                key,
                soi,
                rows,
                aggregates,
            } => {
                push_str(&mut s, "rule", rule.as_str());
                push_str(&mut s, "key", key);
                push_bool(&mut s, "soi", *soi);
                push_rows(&mut s, rows);
                s.push_str(",\"aggregates\":[");
                for (i, a) in aggregates.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_json_string(&mut s, a);
                }
                s.push(']');
            }
            TraceEvent::CsRemove { rule, key, soi } => {
                push_str(&mut s, "rule", rule.as_str());
                push_str(&mut s, "key", key);
                push_bool(&mut s, "soi", *soi);
            }
            TraceEvent::CsRetime { rule, key, version } => {
                push_str(&mut s, "rule", rule.as_str());
                push_str(&mut s, "key", key);
                push_u64(&mut s, "version", *version);
            }
            TraceEvent::Fire { cycle, rule, rows } => {
                push_u64(&mut s, "cycle", *cycle);
                push_str(&mut s, "rule", rule.as_str());
                push_rows(&mut s, rows);
            }
            TraceEvent::SkipAction { action, tag } => {
                push_str(&mut s, "action", action);
                push_u64(&mut s, "tag", tag.raw());
            }
            TraceEvent::Rollback { rule, error } => {
                push_str(&mut s, "rule", rule.as_str());
                push_str(&mut s, "error", error);
            }
            TraceEvent::GuardTrip { reason } => {
                push_str(&mut s, "reason", reason);
            }
            TraceEvent::PanicCaught { rule, message } => {
                push_str(&mut s, "rule", rule.as_str());
                push_str(&mut s, "message", message);
            }
            TraceEvent::IoRetry {
                attempt,
                delay_micros,
                error,
            } => {
                push_u64(&mut s, "attempt", u64::from(*attempt));
                push_u64(&mut s, "delay_micros", *delay_micros);
                push_str(&mut s, "error", error);
            }
            TraceEvent::Quarantine { rule, failures } => {
                push_str(&mut s, "rule", rule.as_str());
                push_u64(&mut s, "failures", u64::from(*failures));
            }
            TraceEvent::Readmit { rule } => {
                push_str(&mut s, "rule", rule.as_str());
            }
            TraceEvent::Degrade {
                severity,
                budget,
                detail,
            } => {
                push_str(&mut s, "severity", severity);
                push_str(&mut s, "budget", budget);
                push_str(&mut s, "detail", detail);
            }
        }
        s.push('}');
        s
    }
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(itoa(v).as_str());
}

fn push_bool(s: &mut String, key: &str, v: bool) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(if v { "true" } else { "false" });
}

fn push_str(s: &mut String, key: &str, v: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    push_json_string(s, v);
}

fn push_rows(s: &mut String, rows: &[Vec<u64>]) {
    s.push_str(",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (j, t) in row.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(itoa(*t).as_str());
        }
        s.push(']');
    }
    s.push(']');
}

fn itoa(v: u64) -> String {
    v.to_string()
}

/// Append `v` as a JSON string literal (quoted, escaped).
fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// A destination for [`TraceEvent`]s.
///
/// Sinks receive events by reference (one event may fan out to several
/// sinks) and may buffer; [`TraceSink::flush`] forces buffered output out.
pub trait TraceSink {
    /// Receive one event.
    fn emit(&mut self, event: &TraceEvent);
    /// Flush any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// A sink that discards everything. Installing it is equivalent to — but
/// strictly slower than — installing no sink at all: prefer
/// [`Tracer::null`], which skips event *construction* entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// A sink that buffers events in memory (tests, `explain`, REPL).
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Vec<TraceEvent>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drain and return all collected events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for CollectSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A sink that streams events to a file as JSON Lines, through a buffered
/// writer. Flushed on drop; call [`TraceSink::flush`] to force earlier.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    written: u64,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Number of events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, event: &TraceEvent) {
        // I/O errors are deliberately swallowed: tracing must never abort
        // a run. The final flush reports the count actually written.
        if writeln!(self.writer, "{}", event.to_json()).is_ok() {
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A shared, interiorly-mutable sink handle. `Send` so matchers that fire
/// from scoped threads (DIPS) can hold a tracer.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// Lock a sink, recovering from poisoning (a panic mid-emit must not also
/// silence every later event).
fn lock_sink(sink: &SharedSink) -> std::sync::MutexGuard<'_, dyn TraceSink + Send + 'static> {
    sink.lock().unwrap_or_else(|e| e.into_inner())
}

/// The cheap, cloneable handle emitters hold. A `Tracer` fans each event
/// out to zero or more [`TraceSink`]s; with zero sinks (the default),
/// [`Tracer::emit`] returns before even constructing the event, which is
/// what makes the disabled path effectively free.
///
/// A tracer may additionally carry a [`Flight`](crate::flight::Flight)
/// recorder (the engine's always-on black box): logical events emitted
/// through [`Tracer::emit`] are recorded into its bounded ring *in
/// addition* to the sink fan-out, while the high-frequency physical
/// events emitted through [`Tracer::emit_physical`] bypass it entirely
/// — with no sinks and only the flight recorder on, per-activation hot
/// paths still pay nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    sinks: Vec<SharedSink>,
    flight: crate::flight::Flight,
}

impl Tracer {
    /// The disabled tracer (no sinks, no flight recorder).
    pub fn null() -> Tracer {
        Tracer::default()
    }

    /// A tracer over an explicit sink list.
    pub fn from_sinks(sinks: Vec<SharedSink>) -> Tracer {
        Tracer {
            sinks,
            flight: crate::flight::Flight::off(),
        }
    }

    /// Attach a flight recorder, consuming `self` (builder style).
    pub fn with_flight(mut self, flight: crate::flight::Flight) -> Tracer {
        self.flight = flight;
        self
    }

    /// The attached flight recorder (a disabled handle by default).
    pub fn flight(&self) -> &crate::flight::Flight {
        &self.flight
    }

    /// Wrap a single sink, returning the tracer and a handle for reading
    /// the sink back (useful with [`CollectSink`]).
    pub fn single<S: TraceSink + Send + 'static>(sink: S) -> (Tracer, Arc<Mutex<S>>) {
        let shared = Arc::new(Mutex::new(sink));
        let tracer = Tracer {
            sinks: vec![shared.clone()],
            flight: crate::flight::Flight::off(),
        };
        (tracer, shared)
    }

    /// True when any consumer of *logical* events is attached (a sink or
    /// the flight recorder). Logical-event call sites that do work
    /// *besides* constructing an event (e.g. formatting a WME) should
    /// gate on this.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !self.sinks.is_empty() || self.flight.enabled()
    }

    /// True when at least one sink is attached. *Physical*-event hot
    /// paths gate on this: the flight recorder alone must not trigger
    /// per-activation work.
    #[inline(always)]
    pub fn sinks_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Emit the event produced by `make` to every sink and the flight
    /// recorder. When fully disabled the closure is never called, so
    /// argument computation costs nothing.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if self.sinks.is_empty() && !self.flight.enabled() {
            return;
        }
        let event = make();
        self.flight.record_event(&event);
        for sink in &self.sinks {
            lock_sink(sink).emit(&event);
        }
    }

    /// Emit a high-frequency physical event (alpha/beta activations, join
    /// probes, S-node traffic) to the sinks only — never to the flight
    /// recorder. With no sinks this returns before constructing the
    /// event, exactly like the pre-flight-recorder `emit`, so the
    /// always-on black box adds zero cost to match-internal hot paths.
    #[inline]
    pub fn emit_physical(&self, make: impl FnOnce() -> TraceEvent) {
        if self.sinks.is_empty() {
            return;
        }
        let event = make();
        for sink in &self.sinks {
            lock_sink(sink).emit(&event);
        }
    }

    /// Flush every attached sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            lock_sink(sink).flush();
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tracer({} sinks{})",
            self.sinks.len(),
            if self.flight.enabled() {
                ", flight"
            } else {
                ""
            }
        )
    }
}

/// Cost and activity profile of one network node.
#[derive(Clone, Debug)]
pub struct NodeProfile {
    /// Display id, e.g. `"α0"` or `"n3"`.
    pub id: String,
    /// Node kind, e.g. `"alpha"`, `"join"`, `"negative"`, `"memory"`,
    /// `"production"`.
    pub kind: &'static str,
    /// Human-readable label (class name, rule name, index attrs, …).
    pub label: String,
    /// Activations processed since profiling was enabled.
    pub activations: u64,
    /// Tokens (or WMEs) currently held in the node's memory.
    pub held: usize,
    /// Cumulative *self* time spent in the node, in nanoseconds.
    pub nanos: u64,
    /// Rules whose match cost this node contributes to.
    pub rules: Vec<String>,
}

/// A whole-network profile, as returned by `Matcher::profile`.
#[derive(Clone, Debug, Default)]
pub struct NetProfile {
    /// Which matcher produced the profile.
    pub algorithm: String,
    /// One entry per live network node.
    pub nodes: Vec<NodeProfile>,
}

impl NetProfile {
    /// Total self time across all nodes, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nodes.iter().map(|n| n.nanos).sum()
    }

    /// Nodes sorted hottest-first (by self time, then activations, then
    /// id — fully deterministic).
    pub fn sorted(&self) -> Vec<&NodeProfile> {
        let mut v: Vec<&NodeProfile> = self.nodes.iter().collect();
        v.sort_by(|a, b| {
            b.nanos
                .cmp(&a.nanos)
                .then(b.activations.cmp(&a.activations))
                .then(a.id.cmp(&b.id))
        });
        v
    }
}

/// Flat self-time profiler: every node activation opens a frame; time is
/// charged to whichever frame is on top, so recursive activation cascades
/// attribute each nanosecond to exactly one node. Slots are dense indexes
/// the caller assigns (e.g. beta node index, or alpha index offset past
/// the beta range).
#[derive(Debug, Default)]
pub struct SelfTimer {
    stack: Vec<u32>,
    last: Option<Instant>,
    nanos: Vec<u64>,
    acts: Vec<u64>,
}

impl SelfTimer {
    /// An empty profiler.
    pub fn new() -> SelfTimer {
        SelfTimer::default()
    }

    /// Grow the slot arrays to cover `slots` entries.
    pub fn ensure(&mut self, slots: usize) {
        if self.nanos.len() < slots {
            self.nanos.resize(slots, 0);
            self.acts.resize(slots, 0);
        }
    }

    /// Open a frame for `slot`, charging elapsed time to the previous top.
    pub fn enter(&mut self, slot: u32) {
        let now = Instant::now();
        if let (Some(last), Some(&top)) = (self.last, self.stack.last()) {
            self.nanos[top as usize] += now.duration_since(last).as_nanos() as u64;
        }
        self.ensure(slot as usize + 1);
        self.acts[slot as usize] += 1;
        self.stack.push(slot);
        self.last = Some(now);
    }

    /// Close the top frame, charging it the elapsed time.
    pub fn exit(&mut self) {
        let now = Instant::now();
        if let (Some(last), Some(top)) = (self.last, self.stack.pop()) {
            self.nanos[top as usize] += now.duration_since(last).as_nanos() as u64;
        }
        self.last = if self.stack.is_empty() {
            None
        } else {
            Some(now)
        };
    }

    /// Activation count recorded for `slot`.
    pub fn activations(&self, slot: usize) -> u64 {
        self.acts.get(slot).copied().unwrap_or(0)
    }

    /// Cumulative self time for `slot`, in nanoseconds.
    pub fn nanos(&self, slot: usize) -> u64 {
        self.nanos.get(slot).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{InstKey, RuleId};

    #[test]
    fn null_tracer_never_builds_events() {
        let t = Tracer::null();
        assert!(!t.enabled());
        let mut called = false;
        t.emit(|| {
            called = true;
            TraceEvent::CycleBegin { cycle: 1 }
        });
        assert!(!called, "disabled tracer must not construct events");
    }

    #[test]
    fn collect_sink_gathers_in_order() {
        let (t, sink) = Tracer::single(CollectSink::new());
        assert!(t.enabled());
        t.emit(|| TraceEvent::CycleBegin { cycle: 1 });
        t.emit(|| TraceEvent::WmeRetract {
            cycle: 1,
            tag: TimeTag::new(4),
        });
        let events = sink.lock().unwrap().take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name(), "cycle_begin");
        assert_eq!(events[1].name(), "wme_retract");
        assert!(sink.lock().unwrap().is_empty());
    }

    #[test]
    fn flight_only_tracer_records_logical_and_skips_physical() {
        let t = Tracer::null().with_flight(crate::flight::Flight::recording(8));
        assert!(t.enabled(), "flight recorder counts as a logical consumer");
        assert!(!t.sinks_enabled(), "no sinks attached");
        t.emit(|| TraceEvent::CycleBegin { cycle: 1 });
        let mut called = false;
        t.emit_physical(|| {
            called = true;
            TraceEvent::BetaActivation {
                node: 1,
                kind: "join",
            }
        });
        assert!(!called, "physical emit with no sinks must stay free");
        assert_eq!(
            t.flight().events(),
            vec![TraceEvent::CycleBegin { cycle: 1 }]
        );
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(Mutex::new(CollectSink::new()));
        let b = Arc::new(Mutex::new(CollectSink::new()));
        let t = Tracer::from_sinks(vec![a.clone(), b.clone()]);
        t.emit(|| TraceEvent::GuardTrip { reason: "x".into() });
        assert_eq!(a.lock().unwrap().len(), 1);
        assert_eq!(b.lock().unwrap().len(), 1);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let ev = TraceEvent::Rollback {
            rule: Symbol::new("r\"1\""),
            error: "line1\nline2\ttab".into(),
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"rollback\",\"rule\":\"r\\\"1\\\"\",\"error\":\"line1\\nline2\\ttab\"}"
        );
        let ev = TraceEvent::Fire {
            cycle: 2,
            rule: Symbol::new("fill"),
            rows: vec![vec![5, 3], vec![2, 1]],
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"fire\",\"cycle\":2,\"rule\":\"fill\",\"rows\":[[5,3],[2,1]]}"
        );
    }

    #[test]
    fn logical_physical_split() {
        assert!(TraceEvent::CycleBegin { cycle: 1 }.is_logical());
        assert!(TraceEvent::CsRemove {
            rule: Symbol::new("r"),
            key: "t1".into(),
            soi: false,
        }
        .is_logical());
        assert!(!TraceEvent::AlphaActivation {
            node: 0,
            tag: TimeTag::new(1),
            insert: true,
        }
        .is_logical());
        assert!(!TraceEvent::JoinProbe {
            node: 2,
            hits: 1,
            scanned: 5,
        }
        .is_logical());
    }

    #[test]
    fn supervision_events_shape_and_split() {
        let ev = TraceEvent::PanicCaught {
            rule: Symbol::new("bad"),
            message: "boom".into(),
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"panic_caught\",\"rule\":\"bad\",\"message\":\"boom\"}"
        );
        assert!(ev.is_logical());
        let ev = TraceEvent::Quarantine {
            rule: Symbol::new("bad"),
            failures: 3,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"quarantine\",\"rule\":\"bad\",\"failures\":3}"
        );
        assert!(ev.is_logical());
        assert!(TraceEvent::Readmit {
            rule: Symbol::new("bad")
        }
        .is_logical());
        let ev = TraceEvent::IoRetry {
            attempt: 2,
            delay_micros: 1500,
            error: "io".into(),
        };
        assert!(ev.to_json().contains("\"delay_micros\":1500"));
        assert!(!ev.is_logical(), "retries are physical");
        let ev = TraceEvent::Degrade {
            severity: "soft",
            budget: "memory-bytes",
            detail: "limit 10, live 20".into(),
        };
        assert!(ev.to_json().contains("\"severity\":\"soft\""));
        assert!(!ev.is_logical(), "degradation is physical");
    }

    #[test]
    fn key_repr_is_canonical() {
        let tuple = InstKey::Tuple {
            rule: RuleId::new(0),
            tags: vec![TimeTag::new(1), TimeTag::new(3)].into(),
        };
        assert_eq!(tuple.repr(), "t1 t3");
        let soi = InstKey::Soi {
            rule: RuleId::new(1),
            parts: vec![
                crate::inst::KeyPart::Tag(TimeTag::new(2)),
                crate::inst::KeyPart::Val(crate::value::Value::sym("A")),
            ]
            .into(),
        };
        assert_eq!(soi.repr(), "t2 A");
    }

    #[test]
    fn self_timer_charges_nested_frames_once() {
        let mut p = SelfTimer::new();
        p.enter(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.enter(1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.exit();
        p.exit();
        assert_eq!(p.activations(0), 1);
        assert_eq!(p.activations(1), 1);
        assert!(p.nanos(0) > 0, "outer frame got self time");
        assert!(p.nanos(1) > 0, "inner frame got self time");
        // Self-time accounting: neither frame is charged the other's time,
        // so both are at least ~1ms but the outer is not ~4ms.
        assert!(p.nanos(1) >= 1_000_000);
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let path = std::env::temp_dir().join(format!("sorete-trace-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&TraceEvent::CycleBegin { cycle: 1 });
            sink.emit(&TraceEvent::CycleEnd {
                cycle: 1,
                rule: Symbol::new("r"),
                ok: true,
            });
            assert_eq!(sink.written(), 2);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"cycle_begin\""));
        assert!(lines[1].contains("\"ok\":true"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_sorts_hottest_first() {
        let prof = NetProfile {
            algorithm: "rete".into(),
            nodes: vec![
                NodeProfile {
                    id: "n1".into(),
                    kind: "join",
                    label: "join".into(),
                    activations: 5,
                    held: 0,
                    nanos: 10,
                    rules: vec!["a".into()],
                },
                NodeProfile {
                    id: "n2".into(),
                    kind: "memory",
                    label: "memory".into(),
                    activations: 9,
                    held: 3,
                    nanos: 90,
                    rules: vec![],
                },
            ],
        };
        let sorted = prof.sorted();
        assert_eq!(sorted[0].id, "n2");
        assert_eq!(prof.total_nanos(), 100);
    }
}
