//! A fast, non-cryptographic hasher in the style of rustc's `FxHasher`.
//!
//! The perf guides recommend replacing SipHash for hot, internal hash maps
//! where HashDoS is not a concern. Match networks hash small integer keys
//! (symbols, time tags, node ids) constantly, so this matters. Implementing
//! the ~40 lines ourselves keeps the workspace inside its allowed dependency
//! set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (the classic "Fx" construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello");
        b.write(b"world");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"123456789"); // 8-byte chunk + 1 tail byte
        b.write(b"123456780");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        assert_eq!(m.len(), 2);
    }
}
