//! Interned strings.
//!
//! OPS5 programs compare symbols constantly (class names, attribute names,
//! symbolic values), so symbols are interned once into a process-wide table
//! and thereafter compared as `u32`s. Interned strings live for the life of
//! the process (they are leaked into the table), which is the standard
//! trade-off for rule engines whose vocabulary is fixed by the program text.

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An interned string. Copyable, `Eq`/`Hash` in O(1).
///
/// ```
/// use sorete_base::Symbol;
/// let a = Symbol::new("player");
/// let b = Symbol::new("player");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "player");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: FxHashMap::default(),
            strings: Vec::with_capacity(256),
        })
    })
}

/// Read lock on the interner. Interning never panics while holding the
/// lock, so poisoning is unreachable; recover the guard anyway.
fn read_interner() -> RwLockReadGuard<'static, Interner> {
    interner().read().unwrap_or_else(|p| p.into_inner())
}

fn write_interner() -> RwLockWriteGuard<'static, Interner> {
    interner().write().unwrap_or_else(|p| p.into_inner())
}

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn new(s: &str) -> Symbol {
        {
            let guard = read_interner();
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = write_interner();
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = guard.strings.len() as u32;
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        read_interner().strings[self.0 as usize]
    }

    /// Raw interner index (stable for the process lifetime).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Symbols order **lexically** (by their string), not by interner index,
/// so `foreach ... ascending` over symbolic values is deterministic and
/// human-sensible.
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::new("abc"), Symbol::new("abc"));
        assert_ne!(Symbol::new("abc"), Symbol::new("abd"));
    }

    #[test]
    fn roundtrips_string() {
        assert_eq!(Symbol::new("team-A").as_str(), "team-A");
    }

    #[test]
    fn orders_lexically() {
        // Intern in reverse lexical order to ensure ids don't drive the order.
        let z = Symbol::new("zzz-order-test");
        let a = Symbol::new("aaa-order-test");
        assert!(a < z);
    }

    #[test]
    fn display_is_bare() {
        assert_eq!(Symbol::new("nil").to_string(), "nil");
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..100 {
                        let s = Symbol::new(&format!("sym-{}", j));
                        assert_eq!(s.as_str(), format!("sym-{}", j));
                        let _ = i;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
