//! A small fork-join worker pool for the parallel match / fire phases.
//!
//! The engine drives matchers through *many tiny* work batches — one per
//! WME change — so spawning OS threads per batch (`std::thread::scope`)
//! would cost more than the work itself. This pool keeps `jobs - 1`
//! workers parked on a condvar; [`WorkerPool::run`] publishes a borrowed
//! `Fn(usize)` job, wakes them, runs shard 0 on the caller's thread, and
//! blocks until every worker has finished the epoch. Because `run` does
//! not return until all workers are done with the job pointer, lending a
//! non-`'static` closure across threads is sound.
//!
//! `jobs == 1` degenerates to a plain inline call — no threads, no locks —
//! so the sequential path pays nothing for the abstraction.
//!
//! Per-worker busy time is accumulated across runs (see
//! [`WorkerPool::busy_nanos`]); benches use it to report the critical-path
//! speedup `total_busy / max_busy` independently of how many hardware
//! cores the host actually has.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Raw pointer to the borrowed job closure. Only alive during one epoch;
/// `run` joins the epoch before the borrow expires.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `run` guarantees it outlives every worker's use of it.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per published job; workers run each epoch exactly once.
    epoch: u64,
    /// Workers still executing the current epoch.
    active: usize,
    job: Option<JobPtr>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
    /// Cumulative busy nanoseconds per lane (lane 0 = the caller thread).
    busy: Mutex<Vec<u64>>,
    /// First panic message from a worker lane this epoch; `run` re-raises
    /// it on the caller thread after the join barrier, so a panicking job
    /// behaves like `thread::scope` (propagates) instead of deadlocking.
    panic: Mutex<Option<String>>,
}

fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Fork-join pool with persistent workers. See the module docs.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    jobs: usize,
}

impl WorkerPool {
    /// A pool executing jobs across `jobs` lanes: the caller's thread plus
    /// `jobs - 1` spawned workers. `jobs` is clamped to `1..=64`.
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.clamp(1, 64);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                active: 0,
                job: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            busy: Mutex::new(vec![0; jobs]),
            panic: Mutex::new(None),
        });
        let handles = (1..jobs)
            .map(|lane| {
                let sh = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sorete-pool-{lane}"))
                    .spawn(move || worker_loop(&sh, lane))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            jobs,
        }
    }

    /// Number of lanes (1 means fully inline).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f(lane)` once on every lane and wait for all of them. Lane 0
    /// executes on the calling thread.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            let t0 = Instant::now();
            f(0);
            self.shared.busy.lock().unwrap()[0] += t0.elapsed().as_nanos() as u64;
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.active, 0, "pool re-entered while an epoch is live");
            // SAFETY: we erase the borrow's lifetime, but do not return from
            // `run` until `active` drops back to 0, i.e. until no worker can
            // touch the pointer again.
            st.job = Some(JobPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    f as *const _,
                )
            }));
            st.epoch += 1;
            st.active = self.handles.len();
            self.shared.start.notify_all();
        }
        let t0 = Instant::now();
        let caller_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let caller_busy = t0.elapsed().as_nanos() as u64;
        {
            let mut st = self.shared.state.lock().unwrap();
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
        }
        self.shared.busy.lock().unwrap()[0] += caller_busy;
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        let worker_panic = self.shared.panic.lock().unwrap().take();
        if let Some(msg) = worker_panic {
            panic!("pool worker panicked: {msg}");
        }
    }

    /// Parallel for over `0..n`: lanes claim indices from a shared atomic
    /// counter, so uneven item costs self-balance. `f` must be safe to call
    /// concurrently for distinct indices.
    pub fn for_each_index(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        self.for_each_index_lane(n, &|i, _lane| f(i));
    }

    /// Like [`WorkerPool::for_each_index`], but `f` also receives the lane
    /// executing the item — telemetry (per-lane span tracks, busy
    /// attribution) needs to know *where* each shard ran. Inline paths
    /// report lane 0.
    pub fn for_each_index_lane(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.jobs == 1 || n == 1 {
            let t0 = Instant::now();
            for i in 0..n {
                f(i, 0);
            }
            self.shared.busy.lock().unwrap()[0] += t0.elapsed().as_nanos() as u64;
            return;
        }
        let next = AtomicUsize::new(0);
        self.run(&|lane| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i, lane);
        });
    }

    /// Cumulative busy nanoseconds per lane since creation (or the last
    /// [`WorkerPool::reset_busy`]). Lane 0 is the caller thread.
    pub fn busy_nanos(&self) -> Vec<u64> {
        self.shared.busy.lock().unwrap().clone()
    }

    /// Zero the per-lane busy counters.
    pub fn reset_busy(&self) {
        for b in self.shared.busy.lock().unwrap().iter_mut() {
            *b = 0;
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &Shared, lane: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("live epoch without a job");
                }
                st = sh.start.wait(st).unwrap();
            }
        };
        let t0 = Instant::now();
        // SAFETY: `run` keeps the closure alive until `active` reaches 0.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (unsafe { &*job.0 })(lane)));
        if let Err(payload) = result {
            let mut p = sh.panic.lock().unwrap();
            if p.is_none() {
                *p = Some(describe_panic(payload));
            }
        }
        let busy = t0.elapsed().as_nanos() as u64;
        sh.busy.lock().unwrap()[lane] += busy;
        {
            let mut st = sh.state.lock().unwrap();
            st.active -= 1;
            if st.active == 0 {
                sh.done.notify_all();
            }
        }
    }
}

/// How many lanes to use, resolved from (in priority order) an explicit
/// request — the `--jobs` flag — then the `SORETE_JOBS` environment
/// variable, then 1 (fully sequential). `0` in either place means "use
/// every hardware thread".
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    let raw = explicit.or_else(jobs_from_env).unwrap_or(1);
    if raw == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        raw.clamp(1, 64)
    }
}

/// The `SORETE_JOBS` environment override, if set and parseable.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("SORETE_JOBS").ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_when_single_lane() {
        let pool = WorkerPool::new(1);
        let sum = AtomicU64::new(0);
        pool.for_each_index(100, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert_eq!(pool.busy_nanos().len(), 1);
    }

    #[test]
    fn fans_out_and_joins() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let sum = AtomicU64::new(0);
            pool.for_each_index(64, &|i| {
                sum.fetch_add(i as u64 + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 2016 + 64 * round);
        }
        assert_eq!(pool.busy_nanos().len(), 4);
    }

    #[test]
    fn run_executes_every_lane_once() {
        let pool = WorkerPool::new(3);
        let hits = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        pool.run(&|lane| {
            hits[lane].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn borrows_non_static_state() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0u64; 256];
        {
            let chunks: Vec<_> = out.chunks_mut(64).collect();
            let chunks: Vec<_> = chunks.into_iter().map(std::sync::Mutex::new).collect();
            pool.for_each_index(chunks.len(), &|c| {
                for (j, slot) in chunks[c].lock().unwrap().iter_mut().enumerate() {
                    *slot = (c * 64 + j) as u64;
                }
            });
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let pool = WorkerPool::new(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 2 {
                    panic!("boom on lane 2");
                }
            });
        }));
        let msg = describe_panic(r.unwrap_err());
        assert!(msg.contains("boom on lane 2"), "{msg}");
        // The pool survives and runs the next epoch normally.
        let hits = AtomicU64::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn for_each_index_lane_reports_valid_lanes() {
        for jobs in [1usize, 4] {
            let pool = WorkerPool::new(jobs);
            let hits = AtomicU64::new(0);
            let bad_lane = AtomicU64::new(0);
            pool.for_each_index_lane(32, &|_i, lane| {
                hits.fetch_add(1, Ordering::Relaxed);
                if lane >= jobs {
                    bad_lane.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 32);
            assert_eq!(bad_lane.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn resolve_jobs_priority() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(999)), 64);
        assert!(resolve_jobs(Some(0)) >= 1);
    }
}
