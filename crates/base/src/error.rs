//! Shared error plumbing.

use std::fmt;

/// Errors raised by base-layer operations and re-used by higher layers for
/// simple failure cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseError {
    /// A WME tag was referenced that is not (or no longer) in working memory.
    UnknownTag(u64),
    /// A class was used without a `literalize` declaration.
    UnknownClass(String),
    /// An attribute is not declared for the class.
    UnknownAttribute {
        /// The class in question.
        class: String,
        /// The undeclared attribute.
        attr: String,
    },
    /// Catch-all with a message.
    Message(String),
}

impl fmt::Display for BaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseError::UnknownTag(t) => write!(f, "unknown time tag {}", t),
            BaseError::UnknownClass(c) => write!(f, "class `{}` was not literalized", c),
            BaseError::UnknownAttribute { class, attr } => {
                write!(
                    f,
                    "attribute `^{}` is not declared for class `{}`",
                    attr, class
                )
            }
            BaseError::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for BaseError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(BaseError::UnknownTag(3).to_string(), "unknown time tag 3");
        assert!(BaseError::UnknownClass("player".into())
            .to_string()
            .contains("player"));
        let e = BaseError::UnknownAttribute {
            class: "player".into(),
            attr: "wings".into(),
        };
        assert!(e.to_string().contains("^wings"));
    }
}
