//! Conflict-set interchange types.
//!
//! Every match algorithm in the workspace (Rete, TREAT, the naive oracle)
//! reports its matches through these types, so the engine, the tests, and
//! the benchmarks can treat matchers interchangeably.
//!
//! The protocol mirrors the paper's §5: a matcher emits `+` tokens
//! ([`CsDelta::Insert`]), `-` tokens ([`CsDelta::Remove`]), and — for
//! set-oriented instantiations only — `time` tokens ([`CsDelta::Retime`]),
//! which reposition an SOI already in the conflict set without re-adding it.

use crate::define_id;
use crate::value::Value;
use crate::wme::TimeTag;
use std::fmt;

define_id!(
    /// Identifies a production within one matcher. Assigned in the order
    /// productions are added.
    pub struct RuleId
);

/// One component of an SOI identity: either the WME tag matched by a
/// non-set-oriented CE, or the scalar value of a `:scalar` pattern variable.
/// (Paper §5: "for all x in C, i\[x\] = token\[x\] and for all x in P,
/// i\[x\] = token\[x\]".)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyPart {
    /// Tag of the WME matching a regular (scalar) condition element.
    Tag(TimeTag),
    /// Value bound by a scalar pattern variable.
    Val(Value),
}

/// Stable identity of a conflict-set entry, used for refraction and removal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstKey {
    /// A regular (tuple-oriented) instantiation: the rule plus the matched
    /// WME tags, one per positive CE.
    Tuple {
        /// The production.
        rule: RuleId,
        /// Matched WME per positive CE, in CE order.
        tags: Box<[TimeTag]>,
    },
    /// A set-oriented instantiation: the rule plus the γ-memory key.
    Soi {
        /// The production.
        rule: RuleId,
        /// Scalar-CE tags and scalar-PV values, in static-data order.
        parts: Box<[KeyPart]>,
    },
}

impl InstKey {
    /// The production this entry instantiates.
    pub fn rule(&self) -> RuleId {
        match self {
            InstKey::Tuple { rule, .. } | InstKey::Soi { rule, .. } => *rule,
        }
    }

    /// True for set-oriented instantiations.
    pub fn is_soi(&self) -> bool {
        matches!(self, InstKey::Soi { .. })
    }

    /// Canonical, human-readable key text used by the trace event stream:
    /// space-separated components, tags as `t<n>`, scalar values rendered
    /// with their `Display` form. Deterministic for a given key.
    pub fn repr(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        match self {
            InstKey::Tuple { tags, .. } => {
                for (i, t) in tags.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    let _ = write!(s, "t{}", t.raw());
                }
            }
            InstKey::Soi { parts, .. } => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    match p {
                        KeyPart::Tag(t) => {
                            let _ = write!(s, "t{}", t.raw());
                        }
                        KeyPart::Val(v) => {
                            let _ = write!(s, "{}", v);
                        }
                    }
                }
            }
        }
        s
    }
}

/// A conflict-set entry as produced by a matcher.
///
/// `rows` is the relation the LHS generated (paper §3): each row holds the
/// matched WME tag for every *positive* CE, in CE order. A regular
/// instantiation has exactly one row; an SOI carries every candidate row,
/// most recent first (the "head" row, which determines the SOI's position in
/// the conflict set).
#[derive(Clone, Debug)]
pub struct ConflictItem {
    /// Identity (also the refraction key).
    pub key: InstKey,
    /// One row per underlying tuple match; one tag per positive CE.
    pub rows: Vec<Box<[TimeTag]>>,
    /// Current values of the rule's LHS aggregates, in declaration order.
    pub aggregates: Vec<Value>,
    /// Bumped whenever an SOI's contents change; a changed SOI becomes
    /// eligible to fire again (paper §6). Always 0 for regular entries.
    pub version: u64,
    /// Recency key: the head row's tags sorted descending. Drives LEX/MEA.
    pub recency: Box<[TimeTag]>,
    /// Number of LHS tests (OPS5 specificity tie-break).
    pub specificity: u32,
}

impl ConflictItem {
    /// The head (most recent) row.
    pub fn head(&self) -> &[TimeTag] {
        &self.rows[0]
    }
}

/// A `time` token: the SOI under `key` changed contents and/or conflict-set
/// position. Deliberately *slim* — the paper's S-node passes "only a
/// pointer" to the production node, and "updates to an active SOI in the
/// S-node's γ-memory transparently update the SOI in the conflict set".
/// Consumers re-fetch the rows through `Matcher::materialize` when (and
/// only when) the SOI actually fires.
#[derive(Clone, Debug)]
pub struct RetimeInfo {
    /// Identity of the SOI.
    pub key: InstKey,
    /// New content version (re-arms refraction).
    pub version: u64,
    /// New recency key (head row tags, descending).
    pub recency: Box<[TimeTag]>,
}

/// A change to the conflict set, as emitted by a matcher after each working
/// memory transaction.
#[derive(Clone, Debug)]
pub enum CsDelta {
    /// `+` token: a new entry enters the conflict set.
    Insert(ConflictItem),
    /// `-` token: the entry with this key leaves the conflict set.
    Remove(InstKey),
    /// `time` token: reposition/re-arm an SOI already in the conflict set.
    Retime(RetimeInfo),
}

impl CsDelta {
    /// Key of the affected entry.
    pub fn key(&self) -> &InstKey {
        match self {
            CsDelta::Insert(item) => &item.key,
            CsDelta::Retime(info) => &info.key,
            CsDelta::Remove(key) => key,
        }
    }
}

/// Work counters a matcher maintains, for the paper's efficiency claims
/// (tokens and join activity are the classic Rete cost measures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Right activations of alpha memories (WMEs entering the network).
    pub alpha_activations: u64,
    /// Left/right activations of beta-level nodes.
    pub beta_activations: u64,
    /// Individual inter-token consistency tests performed at join nodes.
    pub join_tests: u64,
    /// Tokens (partial instantiations) created.
    pub tokens_created: u64,
    /// Tokens deleted.
    pub tokens_deleted: u64,
    /// S-node activations (tokens processed by the Figure-3 algorithm).
    pub snode_activations: u64,
    /// Incremental aggregate updates performed inside S-nodes.
    pub aggregate_updates: u64,
    /// Hash-index probes performed in place of memory scans.
    pub index_probes: u64,
    /// Join tests the hash indexes made unnecessary (one failed test per
    /// candidate the probe filtered out, plus every equality test on the
    /// candidates it returned).
    pub index_skipped_tests: u64,
    /// Join/negative nodes compiled with an equality-hash index.
    pub indexed_nodes: u64,
}

impl MatchStats {
    /// Component-wise sum, for aggregating across matchers or runs.
    pub fn merged(&self, other: &MatchStats) -> MatchStats {
        MatchStats {
            alpha_activations: self.alpha_activations + other.alpha_activations,
            beta_activations: self.beta_activations + other.beta_activations,
            join_tests: self.join_tests + other.join_tests,
            tokens_created: self.tokens_created + other.tokens_created,
            tokens_deleted: self.tokens_deleted + other.tokens_deleted,
            snode_activations: self.snode_activations + other.snode_activations,
            aggregate_updates: self.aggregate_updates + other.aggregate_updates,
            index_probes: self.index_probes + other.index_probes,
            index_skipped_tests: self.index_skipped_tests + other.index_skipped_tests,
            indexed_nodes: self.indexed_nodes + other.indexed_nodes,
        }
    }
}

impl fmt::Display for MatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alpha={} beta={} join_tests={} tokens(+{}/-{}) snode={} agg={} \
             idx(nodes={} probes={} skipped={})",
            self.alpha_activations,
            self.beta_activations,
            self.join_tests,
            self.tokens_created,
            self.tokens_deleted,
            self.snode_activations,
            self.aggregate_updates,
            self.indexed_nodes,
            self.index_probes,
            self.index_skipped_tests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(ts: &[u64]) -> Box<[TimeTag]> {
        ts.iter().map(|&t| TimeTag::new(t)).collect()
    }

    #[test]
    fn tuple_key_identity() {
        let a = InstKey::Tuple {
            rule: RuleId::new(0),
            tags: tags(&[1, 3]),
        };
        let b = InstKey::Tuple {
            rule: RuleId::new(0),
            tags: tags(&[1, 3]),
        };
        let c = InstKey::Tuple {
            rule: RuleId::new(0),
            tags: tags(&[1, 4]),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_soi());
        assert_eq!(a.rule(), RuleId::new(0));
    }

    #[test]
    fn soi_key_mixes_tags_and_values() {
        let k = InstKey::Soi {
            rule: RuleId::new(1),
            parts: vec![KeyPart::Tag(TimeTag::new(2)), KeyPart::Val(Value::sym("A"))].into(),
        };
        assert!(k.is_soi());
        assert_eq!(k.rule(), RuleId::new(1));
    }

    #[test]
    fn stats_merge() {
        let a = MatchStats {
            join_tests: 2,
            tokens_created: 1,
            ..Default::default()
        };
        let b = MatchStats {
            join_tests: 3,
            tokens_deleted: 4,
            index_probes: 7,
            index_skipped_tests: 9,
            indexed_nodes: 2,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.join_tests, 5);
        assert_eq!(m.tokens_created, 1);
        assert_eq!(m.tokens_deleted, 4);
        assert_eq!(m.index_probes, 7);
        assert_eq!(m.index_skipped_tests, 9);
        assert_eq!(m.indexed_nodes, 2);
    }

    #[test]
    fn delta_key_access() {
        let key = InstKey::Tuple {
            rule: RuleId::new(0),
            tags: tags(&[9]),
        };
        let item = ConflictItem {
            key: key.clone(),
            rows: vec![tags(&[9])],
            aggregates: vec![],
            version: 0,
            recency: tags(&[9]),
            specificity: 1,
        };
        assert_eq!(CsDelta::Insert(item).key(), &key);
        assert_eq!(CsDelta::Remove(key.clone()).key(), &key);
        let retime = RetimeInfo {
            key: key.clone(),
            version: 3,
            recency: tags(&[9]),
        };
        assert_eq!(CsDelta::Retime(retime).key(), &key);
    }
}
