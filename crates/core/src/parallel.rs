//! Partitioned parallel matching: rules sharded across independent match
//! networks, working-memory changes fanned out over a worker pool.
//!
//! # Partitioning scheme
//!
//! Parallelising *one* Rete network while keeping its delta stream
//! deterministic is a losing fight — alpha memories are shared between
//! rules, join emission order interleaves across subtrees, and every token
//! structure would need locks on the hot path. Instead (following the
//! Hiperfact line of work) we shard the *rule base*: `PARTITIONS` complete
//! inner matchers, production `i` compiled into shard `i % PARTITIONS`.
//! Every WM change is fanned out to all shards on the pool; each shard
//! runs its ordinary sequential algorithm over its own private memories,
//! buffering conflict-set deltas locally.
//!
//! # Deterministic merge invariant
//!
//! [`Matcher::drain_deltas`] concatenates the per-shard buffers **in shard
//! order**. Within a shard the ordinary sequential emission order is
//! preserved; across shards the order is fixed by the static partition
//! map. Neither depends on thread scheduling, so the merged logical delta
//! stream — and therefore conflict-set arrival order, which LEX/MEA use as
//! a final tie-break — is byte-identical for every `jobs` value. The
//! partition count is a *constant* (never derived from `jobs`) for
//! exactly this reason.
//!
//! Shards assign their own dense local [`RuleId`]s; this wrapper owns the
//! global id space and remaps rule ids in every delta, key, and
//! materialised item that crosses the boundary.

use crate::engine::MatcherKind;
use sorete_base::{
    ConflictItem, CsDelta, InstKey, MatchStats, MemoryReport, NetProfile, RuleId, Spans, Tracer,
    Wme, WorkerPool,
};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::matcher::Matcher;
use sorete_naive::NaiveMatcher;
use sorete_rete::ReteMatcher;
use sorete_treat::TreatMatcher;
use std::sync::{Arc, Mutex};

/// Default shard count, independent of the worker count so the merged
/// delta stream is identical at every `--jobs` level (see module docs).
/// Configurable per matcher via [`ParallelMatcher::with_pool_shards`]
/// (`--shards N` on the CLI) — but still never derived from `jobs`, and
/// changing it changes the partition map, so runs are only comparable at
/// the same shard count.
pub const PARTITIONS: usize = 8;

/// A rule-partitioned parallel matcher over any [`MatcherKind`].
pub struct ParallelMatcher {
    shards: Vec<Mutex<Box<dyn Matcher>>>,
    pool: Arc<WorkerPool>,
    spans: Spans,
    name: &'static str,
    /// Global rule id → (shard, shard-local id).
    route: Vec<(usize, RuleId)>,
    /// Shard → shard-local id index → global id.
    globals: Vec<Vec<RuleId>>,
}

impl ParallelMatcher {
    /// Shard the given backend across [`PARTITIONS`] inner matchers,
    /// driving them with `jobs` pool lanes (1 = sequential fan-out on the
    /// caller's thread; the delta stream does not depend on this).
    pub fn new(kind: MatcherKind, jobs: usize) -> ParallelMatcher {
        Self::with_pool(kind, Arc::new(WorkerPool::new(jobs)))
    }

    /// Like [`ParallelMatcher::new`] with a shared pool, so the caller
    /// (engine, benches) can read back per-lane busy times.
    pub fn with_pool(kind: MatcherKind, pool: Arc<WorkerPool>) -> ParallelMatcher {
        Self::with_pool_shards(kind, pool, PARTITIONS)
    }

    /// Like [`ParallelMatcher::with_pool`] with an explicit partition
    /// count (`--shards N`). `shards` is clamped to at least 1. The
    /// partition map — and therefore the merged delta stream — depends on
    /// it, so checkpoint-compatible runs must keep it stable; it is still
    /// never derived from `jobs`.
    pub fn with_pool_shards(
        kind: MatcherKind,
        pool: Arc<WorkerPool>,
        shards: usize,
    ) -> ParallelMatcher {
        let shards = shards.max(1);
        let make = |kind: MatcherKind| -> Box<dyn Matcher> {
            match kind {
                MatcherKind::Rete => Box::new(ReteMatcher::new()),
                MatcherKind::ReteScan => Box::new(ReteMatcher::with_indexing(false)),
                MatcherKind::Treat => Box::new(TreatMatcher::new()),
                MatcherKind::Naive => Box::new(NaiveMatcher::new()),
            }
        };
        ParallelMatcher {
            shards: (0..shards).map(|_| Mutex::new(make(kind))).collect(),
            pool,
            spans: Spans::null(),
            name: match kind {
                MatcherKind::Rete => "parallel-rete",
                MatcherKind::ReteScan => "parallel-rete-scan",
                MatcherKind::Treat => "parallel-treat",
                MatcherKind::Naive => "parallel-naive",
            },
            route: Vec::new(),
            globals: vec![Vec::new(); shards],
        }
    }

    /// The shared pool (for busy-time accounting).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The partition count this matcher was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rewrite a shard-local key into the global id space.
    fn globalize_key(&self, shard: usize, key: InstKey) -> InstKey {
        match key {
            InstKey::Tuple { rule, tags } => InstKey::Tuple {
                rule: self.globals[shard][rule.index()],
                tags,
            },
            InstKey::Soi { rule, parts } => InstKey::Soi {
                rule: self.globals[shard][rule.index()],
                parts,
            },
        }
    }

    /// Rewrite a global key into its owning shard's local id space.
    fn localize_key(&self, key: &InstKey) -> (usize, InstKey) {
        let (shard, local) = self.route[key.rule().index()];
        let key = match key {
            InstKey::Tuple { tags, .. } => InstKey::Tuple {
                rule: local,
                tags: tags.clone(),
            },
            InstKey::Soi { parts, .. } => InstKey::Soi {
                rule: local,
                parts: parts.clone(),
            },
        };
        (shard, key)
    }

    fn globalize_delta(&self, shard: usize, delta: CsDelta) -> CsDelta {
        match delta {
            CsDelta::Insert(mut item) => {
                item.key = self.globalize_key(shard, item.key);
                CsDelta::Insert(item)
            }
            CsDelta::Remove(key) => CsDelta::Remove(self.globalize_key(shard, key)),
            CsDelta::Retime(mut info) => {
                info.key = self.globalize_key(shard, info.key);
                CsDelta::Retime(info)
            }
        }
    }
}

impl Matcher for ParallelMatcher {
    fn add_rule(&mut self, rule: Arc<AnalyzedRule>) -> RuleId {
        let shard = self.route.len() % self.shards.len();
        let local = self.shards[shard].lock().unwrap().add_rule(rule);
        debug_assert_eq!(local.index(), self.globals[shard].len());
        let global = RuleId::new(self.route.len());
        self.globals[shard].push(global);
        self.route.push((shard, local));
        global
    }

    fn insert_wme(&mut self, wme: &Wme) {
        let shards = &self.shards;
        let spans = &self.spans;
        self.pool.for_each_index_lane(shards.len(), &|i, lane| {
            let sp = spans.begin();
            shards[i].lock().unwrap().insert_wme(wme);
            spans.end_shard(sp, lane as u32, i);
        });
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let shards = &self.shards;
        let spans = &self.spans;
        self.pool.for_each_index_lane(shards.len(), &|i, lane| {
            let sp = spans.begin();
            shards[i].lock().unwrap().remove_wme(wme);
            spans.end_shard(sp, lane as u32, i);
        });
    }

    fn drain_deltas(&mut self) -> Vec<CsDelta> {
        let mut out = Vec::new();
        for shard in 0..self.shards.len() {
            let drained = self.shards[shard].lock().unwrap().drain_deltas();
            out.extend(drained.into_iter().map(|d| self.globalize_delta(shard, d)));
        }
        out
    }

    fn materialize(&self, key: &InstKey) -> Option<ConflictItem> {
        let (shard, local) = self.localize_key(key);
        let mut item = self.shards[shard].lock().unwrap().materialize(&local)?;
        item.key = self.globalize_key(shard, item.key);
        Some(item)
    }

    fn rebuild_from(&mut self, wmes: &[Wme]) {
        let shards = &self.shards;
        self.pool.for_each_index(shards.len(), &|i| {
            shards[i].lock().unwrap().rebuild_from(wmes);
        });
    }

    fn stats(&self) -> MatchStats {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().stats())
            .fold(MatchStats::default(), |acc, s| acc.merged(&s))
    }

    fn algorithm_name(&self) -> &'static str {
        self.name
    }

    fn to_dot(&self) -> Option<String> {
        // Each shard renders a full digraph; splice their bodies into one
        // valid graph as clusters.
        let mut out = String::from("digraph parallel {\n");
        let mut any = false;
        for (i, s) in self.shards.iter().enumerate() {
            let Some(dot) = s.lock().unwrap().to_dot() else {
                continue;
            };
            let body = dot
                .find('{')
                .and_then(|open| dot.rfind('}').map(|close| &dot[open + 1..close]))
                .unwrap_or(&dot);
            out.push_str(&format!("subgraph cluster_shard{i} {{\n"));
            out.push_str(&format!("label=\"shard {i}\";\n"));
            // Prefix node names so shards don't collide.
            for line in body.lines() {
                out.push_str(
                    &line
                        .replace("n_", &format!("s{i}_n_"))
                        .replace("alpha_", &format!("s{i}_alpha_")),
                );
                out.push('\n');
            }
            out.push_str("}\n");
            any = true;
        }
        out.push_str("}\n");
        any.then_some(out)
    }

    fn validate(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            s.lock()
                .unwrap()
                .validate()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    fn remove_rule(&mut self, rule: RuleId) {
        let (shard, local) = self.route[rule.index()];
        self.shards[shard].lock().unwrap().remove_rule(local);
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        for s in &self.shards {
            s.lock().unwrap().set_tracer(tracer.clone());
        }
    }

    fn set_spans(&mut self, spans: Spans) {
        self.spans = spans;
    }

    fn set_profiling(&mut self, on: bool) {
        for s in &self.shards {
            s.lock().unwrap().set_profiling(on);
        }
    }

    fn profile(&self) -> Option<NetProfile> {
        let mut merged = NetProfile {
            algorithm: self.name.to_string(),
            nodes: Vec::new(),
        };
        let mut any = false;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(p) = s.lock().unwrap().profile() {
                for mut n in p.nodes {
                    n.id = format!("s{i}:{}", n.id);
                    merged.nodes.push(n);
                }
                any = true;
            }
        }
        any.then_some(merged)
    }

    fn rule_network_path(&self, rule: RuleId) -> Option<Vec<String>> {
        let (shard, local) = self.route[rule.index()];
        self.shards[shard].lock().unwrap().rule_network_path(local)
    }

    fn memory_report(&self) -> MemoryReport {
        // Shards report the same region names; sum like-for-like so the
        // metrics gauges keep one series per region.
        let mut merged = MemoryReport::default();
        for s in &self.shards {
            for r in s.lock().unwrap().memory_report().regions {
                match merged.regions.iter_mut().find(|m| m.name == r.name) {
                    Some(m) => {
                        m.bytes += r.bytes;
                        m.entries += r.entries;
                    }
                    None => merged.regions.push(r),
                }
            }
        }
        merged
    }

    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        let mut merged: Vec<(&'static str, u64)> = Vec::new();
        for s in &self.shards {
            for (k, v) in s.lock().unwrap().metric_counters() {
                match merged.iter_mut().find(|(mk, _)| *mk == k) {
                    Some((_, mv)) => *mv += v,
                    None => merged.push((k, v)),
                }
            }
        }
        merged
    }
}
