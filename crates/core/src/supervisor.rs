//! The supervision layer: failure policy for the recognise–act cycle.
//!
//! The paper's §8 frames set-oriented firings as database transactions;
//! PR 1 gave them rollback and PR 5 gave them durability. This module adds
//! the *failure policy* a long-lived engine needs on top of those
//! mechanics:
//!
//! - [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter for transient durable-I/O errors (the WAL's clean, non-poisoning
//!   failures). The schedule is a pure function of `(seed, attempt)` so
//!   fault sweeps replay identically.
//! - [`BreakerPolicy`] + per-rule breaker state inside [`Supervisor`] — a
//!   rule whose RHS fails or rolls back `max_failures` times within a
//!   window of cycles is *quarantined*: excised from conflict resolution
//!   (its instantiations stay derived, just never selected) until an
//!   operator re-admits it.
//! - [`DegradationPolicy`] — soft memory/wall budgets trigger an automatic
//!   checkpoint and a warning; hard budgets end the run with an orderly,
//!   resumable halt-with-checkpoint instead of an abort.
//!
//! The engine owns one [`Supervisor`] when supervision is enabled (see
//! `ProductionSystem::enable_supervision`); this module is pure state — no
//! I/O — which is what makes the proptests over breaker transitions and
//! backoff schedules possible.

use sorete_base::{FxHashMap, Symbol};
use std::path::PathBuf;
use std::time::Duration;

/// splitmix64 — the same mixer `FaultPlan::seeded` uses, so every
/// deterministic knob in the fault-injection story shares one generator.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Capped exponential backoff with deterministic jitter, for retrying
/// *transient* durable-I/O failures (a clean WAL append failure that did
/// not poison the log). Poisoned logs are never retried — their on-disk
/// state is unknowable and only reopen-with-recovery re-establishes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts after the initial failure (0 disables retrying).
    pub max_attempts: u32,
    /// Backoff base: the first retry waits about this long.
    pub base_micros: u64,
    /// Backoff ceiling; the exponential curve saturates here.
    pub cap_micros: u64,
    /// Jitter seed. The whole schedule is a pure function of
    /// `(seed, attempt)` — sweep tests replay it exactly.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_micros: 500,
            cap_micros: 50_000,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry `attempt` (1-based), in
    /// microseconds: `min(cap, base · 2^(attempt-1))` scaled into
    /// `[raw/2, raw]` by deterministic jitter. Pure — no clock, no RNG
    /// state — so schedules are replayable and testable.
    pub fn delay_micros(&self, attempt: u32) -> u64 {
        let attempt = attempt.max(1);
        let exp = (attempt - 1).min(20);
        let cap = self.cap_micros.max(self.base_micros);
        let raw = self.base_micros.saturating_mul(1u64 << exp).min(cap);
        let half = raw / 2;
        half + splitmix64(self.seed ^ u64::from(attempt)) % (raw - half + 1)
    }

    /// The full delay schedule, for diagnostics and tests.
    pub fn schedule(&self) -> Vec<u64> {
        (1..=self.max_attempts)
            .map(|a| self.delay_micros(a))
            .collect()
    }
}

/// When does a rule's circuit breaker trip?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Failures (RHS error, injected fault, or caught panic, each rolled
    /// back) within the window that quarantine the rule.
    pub max_failures: u32,
    /// Window width in recognise–act cycles. Clamped up to at least
    /// `max_failures` — rolled-back firings still advance the cycle
    /// counter, so a narrower window could never accumulate enough
    /// failures to trip and the run would retry forever.
    pub window_cycles: u64,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            max_failures: 3,
            window_cycles: 20,
        }
    }
}

impl BreakerPolicy {
    fn window(&self) -> u64 {
        self.window_cycles.max(u64::from(self.max_failures))
    }
}

/// Resource budgets below the hard [`crate::RunGuards`] limits. Soft trips
/// fire once per run: automatic checkpoint + warning. Hard trips end the
/// run with `StopReason::ResourceExhausted` *after* cutting a checkpoint,
/// so `--resume` can continue — degradation, not death.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Soft wall-clock budget (checkpoint + warn, keep running).
    pub soft_wall: Option<Duration>,
    /// Soft live-byte budget over the matcher's memory report.
    pub soft_bytes: Option<u64>,
    /// Hard live-byte budget (orderly halt-with-checkpoint).
    pub hard_bytes: Option<u64>,
}

/// Everything the supervisor needs to know.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SupervisorConfig {
    /// Backoff for transient durable-I/O errors.
    pub retry: RetryPolicy,
    /// Per-rule circuit breakers.
    pub breaker: BreakerPolicy,
    /// Resource-pressure budgets.
    pub degradation: DegradationPolicy,
    /// Where degradation checkpoints go (also used by the hard-limit
    /// halt-with-checkpoint). `None` disables automatic checkpointing but
    /// keeps the warnings and the orderly stop.
    pub checkpoint_path: Option<PathBuf>,
}

/// Counters the supervisor accumulates. Deliberately *not* part of
/// [`crate::RunStats`]: run stats are serialized byte-for-byte into cycle
/// markers and checkpoints, and supervision activity must not perturb
/// those formats (recovered stats stay byte-identical to the oracle's).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Panics caught unwinding out of firings.
    pub panics_caught: u64,
    /// Durable-I/O retry attempts performed.
    pub io_retries: u64,
    /// Circuit-breaker trips (rules quarantined).
    pub quarantines: u64,
    /// Quarantined rules re-admitted.
    pub readmissions: u64,
    /// Soft-budget degradations (automatic checkpoints).
    pub soft_degrades: u64,
    /// Hard-budget degradations (orderly halts).
    pub hard_degrades: u64,
}

/// One rule's breaker: recent failure cycles plus the tripped flag.
#[derive(Clone, Debug, Default)]
struct BreakerState {
    /// Cycle numbers of recent failures (pruned to the window).
    failures: Vec<u64>,
    tripped: bool,
}

/// The engine's supervision state: per-rule circuit breakers, the
/// soft-degradation latch, and the activity counters.
#[derive(Debug, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
    breakers: FxHashMap<Symbol, BreakerState>,
    /// Soft budgets fire once per run; re-armed by `ProductionSystem::run`.
    pub(crate) soft_tripped: bool,
    pub(crate) stats: SupervisorStats,
}

impl Supervisor {
    /// A supervisor over `config`.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor {
            config,
            ..Supervisor::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// Record one failed (rolled-back) firing of `rule` at `cycle`.
    /// Returns `Some(failure_count)` when this failure *newly* trips the
    /// breaker — the caller quarantines the rule and records the trip.
    /// Deterministic: state depends only on the `(rule, cycle)` sequence.
    pub fn record_failure(&mut self, rule: Symbol, cycle: u64) -> Option<u32> {
        let window = self.config.breaker.window();
        let max = self.config.breaker.max_failures.max(1);
        let st = self.breakers.entry(rule).or_default();
        st.failures.push(cycle);
        st.failures.retain(|&c| cycle.saturating_sub(c) < window);
        let count = st.failures.len() as u32;
        if !st.tripped && count >= max {
            st.tripped = true;
            self.stats.quarantines += 1;
            Some(count)
        } else {
            None
        }
    }

    /// Is `rule`'s breaker currently tripped?
    pub fn is_tripped(&self, rule: Symbol) -> bool {
        self.breakers.get(&rule).is_some_and(|s| s.tripped)
    }

    /// Reset `rule`'s breaker (re-admission). Returns `true` when the
    /// breaker was tripped.
    pub fn readmit(&mut self, rule: Symbol) -> bool {
        let was = self
            .breakers
            .remove(&rule)
            .map(|s| s.tripped)
            .unwrap_or(false);
        if was {
            self.stats.readmissions += 1;
        }
        was
    }

    /// Rules with tripped breakers, sorted by name for deterministic
    /// reporting.
    pub fn tripped_rules(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self
            .breakers
            .iter()
            .filter(|(_, s)| s.tripped)
            .map(|(r, _)| *r)
            .collect();
        v.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_micros: 100,
            cap_micros: 1_000,
            seed: 42,
        };
        let a = p.schedule();
        let b = p.schedule();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 8);
        for (i, &d) in a.iter().enumerate() {
            assert!(d <= 1_000, "attempt {} delay {} exceeds cap", i + 1, d);
            assert!(d >= 50, "attempt {} delay {} below base/2", i + 1, d);
        }
        // A different seed reshuffles jitter but respects the same bounds.
        let q = RetryPolicy { seed: 43, ..p };
        assert_ne!(q.schedule(), a, "jitter depends on the seed");
    }

    #[test]
    fn backoff_grows_exponentially_before_the_cap() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_micros: 100,
            cap_micros: 1 << 40,
            seed: 7,
        };
        // raw doubles each attempt; jitter keeps delays within [raw/2, raw],
        // so attempt n+2's minimum (2·raw(n)) clears attempt n's maximum.
        let s = p.schedule();
        assert!(s[2] > s[0] && s[3] > s[1], "{:?}", s);
    }

    #[test]
    fn breaker_trips_once_within_window() {
        let mut sup = Supervisor::new(SupervisorConfig {
            breaker: BreakerPolicy {
                max_failures: 3,
                window_cycles: 10,
            },
            ..SupervisorConfig::default()
        });
        let r = Symbol::new("hot");
        assert_eq!(sup.record_failure(r, 1), None);
        assert_eq!(sup.record_failure(r, 2), None);
        assert_eq!(sup.record_failure(r, 3), Some(3), "third failure trips");
        assert!(sup.is_tripped(r));
        assert_eq!(sup.record_failure(r, 4), None, "trips only once");
        assert_eq!(sup.stats().quarantines, 1);
        assert!(sup.readmit(r));
        assert!(!sup.is_tripped(r));
        assert_eq!(sup.stats().readmissions, 1);
        assert!(!sup.readmit(r), "second readmit is a no-op");
    }

    #[test]
    fn breaker_window_forgets_old_failures() {
        let mut sup = Supervisor::new(SupervisorConfig {
            breaker: BreakerPolicy {
                max_failures: 3,
                window_cycles: 5,
            },
            ..SupervisorConfig::default()
        });
        let r = Symbol::new("flaky");
        assert_eq!(sup.record_failure(r, 1), None);
        assert_eq!(sup.record_failure(r, 2), None);
        // Cycle 20 is far outside the window: the old failures age out.
        assert_eq!(sup.record_failure(r, 20), None);
        assert!(!sup.is_tripped(r));
    }

    #[test]
    fn breaker_window_clamps_to_max_failures() {
        // A 1-cycle window with max_failures 3 could never trip (each
        // failure evicts the previous); the clamp keeps it live.
        let mut sup = Supervisor::new(SupervisorConfig {
            breaker: BreakerPolicy {
                max_failures: 3,
                window_cycles: 1,
            },
            ..SupervisorConfig::default()
        });
        let r = Symbol::new("r");
        assert_eq!(sup.record_failure(r, 1), None);
        assert_eq!(sup.record_failure(r, 2), None);
        assert_eq!(sup.record_failure(r, 3), Some(3));
    }

    #[test]
    fn tripped_rules_sorted() {
        let mut sup = Supervisor::new(SupervisorConfig {
            breaker: BreakerPolicy {
                max_failures: 1,
                window_cycles: 1,
            },
            ..SupervisorConfig::default()
        });
        sup.record_failure(Symbol::new("zeta"), 1);
        sup.record_failure(Symbol::new("alpha"), 2);
        let names: Vec<&str> = sup.tripped_rules().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
