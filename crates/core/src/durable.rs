//! Durability codecs for the engine: the checkpoint text format and the
//! WAL cycle-marker payload.
//!
//! A crash-recoverable run combines the two (see `engine`): a checkpoint
//! captures working memory, the refraction memory, the tag allocator, the
//! cycle counter, and the run statistics at a cycle boundary; the
//! write-ahead log ([`sorete_reldb::Wal`]) then records every committed
//! working-memory operation after it, with one cycle marker per
//! successful firing. Recovery loads the checkpoint (rebuilding any
//! matcher from the surviving WMEs) and replays the log's committed
//! prefix.
//!
//! Both formats are line/tab-oriented text over the [`Value`] wire tokens
//! (`sorete_base::Value::to_wire`), which escape tabs and newlines — the
//! same tokens the `reldb` dump format and the WME-op codec use.

use crate::error::CoreError;
use crate::stats::{RuleStats, RunStats};
use sorete_base::{InstKey, KeyPart, RuleId, Symbol, TimeTag, Value, Wme};

/// First line of a checkpoint file.
pub const CKPT_MAGIC: &str = "sorete-ckpt 1";

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Durability(msg.into())
}

fn num(tok: &str, what: &str) -> Result<u64, CoreError> {
    tok.parse::<u64>()
        .map_err(|_| corrupt(format!("bad {}: `{}`", what, tok)))
}

fn sym_of(tok: &str, what: &str) -> Result<Symbol, CoreError> {
    match Value::from_wire(tok).map_err(corrupt)? {
        Value::Sym(s) => Ok(s),
        other => Err(corrupt(format!("{} is not a symbol: `{}`", what, other))),
    }
}

// ---------------------------------------------------------------------------
// Instantiation keys, without their matcher-local rule ids.

/// The matcher-independent part of an [`InstKey`]: the matched tags (tuple
/// instantiations) or the γ-memory key parts (SOIs). The rule itself is
/// carried separately by *name*, because [`RuleId`]s are positional and
/// only meaningful inside one matcher instance.
#[derive(Clone, Debug, PartialEq)]
pub enum KeySpec {
    /// A tuple-oriented instantiation's matched tags, in CE order.
    Tuple(Vec<TimeTag>),
    /// A set-oriented instantiation's key parts, in static-data order.
    Soi(Vec<KeyPart>),
}

impl KeySpec {
    /// Strip the rule id off an [`InstKey`].
    pub fn of(key: &InstKey) -> KeySpec {
        match key {
            InstKey::Tuple { tags, .. } => KeySpec::Tuple(tags.to_vec()),
            InstKey::Soi { parts, .. } => KeySpec::Soi(parts.to_vec()),
        }
    }

    /// Rebuild the [`InstKey`] against a (possibly different) matcher's
    /// id for the same rule.
    pub fn into_key(&self, rule: RuleId) -> InstKey {
        match self {
            KeySpec::Tuple(tags) => InstKey::Tuple {
                rule,
                tags: tags.clone().into(),
            },
            KeySpec::Soi(parts) => InstKey::Soi {
                rule,
                parts: parts.clone().into(),
            },
        }
    }

    /// Append the `T|S [part…]` serialization (tab-separated, no leading
    /// tab).
    fn push(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            KeySpec::Tuple(tags) => {
                out.push('T');
                for t in tags {
                    let _ = write!(out, "\t{}", t.raw());
                }
            }
            KeySpec::Soi(parts) => {
                out.push('S');
                for p in parts {
                    out.push('\t');
                    match p {
                        KeyPart::Tag(t) => {
                            let _ = write!(out, "t:{}", t.raw());
                        }
                        KeyPart::Val(v) => {
                            out.push_str("v:");
                            v.push_wire(out);
                        }
                    }
                }
            }
        }
    }

    /// Parse from an iterator positioned at the `T|S` token.
    fn parse<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Result<KeySpec, CoreError> {
        match parts.next() {
            Some("T") => {
                let mut tags = Vec::new();
                for tok in parts {
                    tags.push(TimeTag::new(num(tok, "key tag")?));
                }
                Ok(KeySpec::Tuple(tags))
            }
            Some("S") => {
                let mut out = Vec::new();
                for tok in parts {
                    if let Some(raw) = tok.strip_prefix("t:") {
                        out.push(KeyPart::Tag(TimeTag::new(num(raw, "key tag")?)));
                    } else if let Some(wire) = tok.strip_prefix("v:") {
                        out.push(KeyPart::Val(Value::from_wire(wire).map_err(corrupt)?));
                    } else {
                        return Err(corrupt(format!("bad SOI key part `{}`", tok)));
                    }
                }
                Ok(KeySpec::Soi(out))
            }
            other => Err(corrupt(format!("bad key kind `{}`", other.unwrap_or("")))),
        }
    }
}

// ---------------------------------------------------------------------------
// WME lines (shared by checkpoints; WAL op payloads use reldb's WmeOp).

fn push_wme(w: &Wme, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}\t", w.tag.raw());
    Value::Sym(w.class).push_wire(out);
    for (a, v) in w.slots() {
        out.push('\t');
        Value::Sym(*a).push_wire(out);
        out.push('\t');
        v.push_wire(out);
    }
}

fn parse_wme<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Result<Wme, CoreError> {
    let tag = TimeTag::new(num(
        parts
            .next()
            .ok_or_else(|| corrupt("WME line missing tag"))?,
        "WME tag",
    )?);
    let class = sym_of(
        parts
            .next()
            .ok_or_else(|| corrupt("WME line missing class"))?,
        "WME class",
    )?;
    let mut slots = Vec::new();
    while let Some(attr) = parts.next() {
        let val = parts
            .next()
            .ok_or_else(|| corrupt(format!("dangling attribute in WME t{}", tag.raw())))?;
        slots.push((
            sym_of(attr, "WME attribute")?,
            Value::from_wire(val).map_err(corrupt)?,
        ));
    }
    Ok(Wme::new(tag, class, slots))
}

// ---------------------------------------------------------------------------
// Run-stat totals (the eight scalar RunStats counters).

fn push_totals(rs: &RunStats, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        rs.firings,
        rs.makes,
        rs.removes,
        rs.modifies,
        rs.writes,
        rs.actions,
        rs.skipped_actions,
        rs.rolled_back
    );
}

fn parse_totals<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Result<RunStats, CoreError> {
    let mut take = |what| -> Result<u64, CoreError> {
        num(
            parts
                .next()
                .ok_or_else(|| corrupt(format!("missing {}", what)))?,
            what,
        )
    };
    Ok(RunStats {
        firings: take("firings")?,
        makes: take("makes")?,
        removes: take("removes")?,
        modifies: take("modifies")?,
        writes: take("writes")?,
        actions: take("actions")?,
        skipped_actions: take("skipped_actions")?,
        rolled_back: take("rolled_back")?,
        per_rule: Default::default(),
    })
}

// ---------------------------------------------------------------------------
// The WAL cycle marker.

/// Payload of a WAL cycle-boundary record: everything recovery needs to
/// reproduce the firing's bookkeeping — the cycle counter, the halt flag,
/// the cumulative [`RunStats`] totals, the fired rule's cumulative
/// per-rule counters, and the fired instantiation's key and version (so
/// recovery can re-arm refraction exactly as `mark_fired` did).
#[derive(Clone, Debug, PartialEq)]
pub struct CycleMarker {
    /// 1-based cycle number of the firing this marker commits.
    pub cycle: u64,
    /// Halt flag after the firing.
    pub halted: bool,
    /// Cumulative scalar totals after the firing (`per_rule` empty).
    pub totals: RunStats,
    /// The fired rule, by name.
    pub rule: Symbol,
    /// The rule's cumulative firings after this one.
    pub rule_firings: u64,
    /// The rule's cumulative RHS actions after this one.
    pub rule_actions: u64,
    /// Version at which the instantiation fired (refraction memory).
    pub version: u64,
    /// The fired instantiation's key.
    pub key: KeySpec,
}

impl CycleMarker {
    /// Serialize to a WAL cycle payload.
    pub fn encode(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "{}\t{}\t", self.cycle, u8::from(self.halted));
        push_totals(&self.totals, &mut s);
        s.push('\t');
        Value::Sym(self.rule).push_wire(&mut s);
        let _ = write!(
            s,
            "\t{}\t{}\t{}\t",
            self.rule_firings, self.rule_actions, self.version
        );
        self.key.push(&mut s);
        s.into_bytes()
    }

    /// Parse a WAL cycle payload.
    pub fn decode(bytes: &[u8]) -> Result<CycleMarker, CoreError> {
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt("cycle marker is not utf-8"))?;
        let mut parts = text.split('\t');
        let cycle = num(
            parts
                .next()
                .ok_or_else(|| corrupt("cycle marker missing cycle"))?,
            "cycle",
        )?;
        let halted = match parts.next() {
            Some("0") => false,
            Some("1") => true,
            other => {
                return Err(corrupt(format!(
                    "bad halted flag `{}`",
                    other.unwrap_or("")
                )))
            }
        };
        let totals = parse_totals(&mut parts)?;
        let rule = sym_of(
            parts
                .next()
                .ok_or_else(|| corrupt("cycle marker missing rule"))?,
            "rule",
        )?;
        let rule_firings = num(
            parts
                .next()
                .ok_or_else(|| corrupt("missing rule firings"))?,
            "rule firings",
        )?;
        let rule_actions = num(
            parts
                .next()
                .ok_or_else(|| corrupt("missing rule actions"))?,
            "rule actions",
        )?;
        let version = num(
            parts.next().ok_or_else(|| corrupt("missing version"))?,
            "version",
        )?;
        let key = KeySpec::parse(&mut parts)?;
        Ok(CycleMarker {
            cycle,
            halted,
            totals,
            rule,
            rule_firings,
            rule_actions,
            version,
            key,
        })
    }
}

// ---------------------------------------------------------------------------
// Checkpoints.

/// A parsed (or to-be-rendered) engine checkpoint: the full recoverable
/// state of a [`crate::ProductionSystem`] at a cycle boundary. The match
/// network is deliberately *not* serialized — any matcher rebuilds its
/// memories (γ-memories included) from the WMEs, which is what makes a
/// checkpoint portable across Rete, TREAT, and the naive oracle.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Algorithm name of the engine that wrote the checkpoint
    /// (informational; resume into any matcher is supported).
    pub matcher: String,
    /// WAL-pairing generation: the log that *continues* this checkpoint
    /// carries the same stamp; a log one generation behind predates the
    /// checkpoint (crash between checkpoint rename and log rotation) and
    /// is stale. 0 for checkpoints with no logged lineage.
    pub generation: u64,
    /// Cycle counter at the boundary.
    pub cycle: u64,
    /// Tag-allocator high-water mark (≥ the highest surviving WME tag:
    /// dead tags must not be reused after resume).
    pub tag_mark: u64,
    /// Halt flag.
    pub halted: bool,
    /// Scalar [`RunStats`] totals (`per_rule` empty; see [`Self::rules`]).
    pub totals: RunStats,
    /// Per-rule counters, sorted by rule name.
    pub rules: Vec<(Symbol, RuleStats)>,
    /// Surviving WMEs in tag order.
    pub wmes: Vec<Wme>,
    /// Refracted instantiations: rule name + matcher-independent key.
    pub fired: Vec<(Symbol, KeySpec)>,
}

impl Checkpoint {
    /// Render to the checkpoint text format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{}", CKPT_MAGIC);
        let _ = writeln!(s, "MATCHER\t{}", self.matcher);
        let _ = writeln!(s, "GEN\t{}", self.generation);
        let _ = writeln!(s, "CYCLE\t{}", self.cycle);
        let _ = writeln!(s, "TAG\t{}", self.tag_mark);
        let _ = writeln!(s, "HALTED\t{}", u8::from(self.halted));
        s.push_str("STATS\t");
        push_totals(&self.totals, &mut s);
        s.push('\n');
        for (name, rs) in &self.rules {
            s.push_str("RULE\t");
            Value::Sym(*name).push_wire(&mut s);
            let _ = writeln!(s, "\t{}\t{}", rs.firings, rs.actions);
        }
        for w in &self.wmes {
            s.push_str("WME\t");
            push_wme(w, &mut s);
            s.push('\n');
        }
        for (rule, key) in &self.fired {
            s.push_str("FIRED\t");
            Value::Sym(*rule).push_wire(&mut s);
            s.push('\t');
            key.push(&mut s);
            s.push('\n');
        }
        s
    }

    /// Parse the checkpoint text format.
    pub fn parse(text: &str) -> Result<Checkpoint, CoreError> {
        let mut lines = text.lines();
        if lines.next() != Some(CKPT_MAGIC) {
            return Err(corrupt(format!(
                "not a checkpoint (missing `{}` header)",
                CKPT_MAGIC
            )));
        }
        let mut ck = Checkpoint::default();
        let mut seen_stats = false;
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let tag = parts.next().unwrap_or("");
            let fail = |msg: String| corrupt(format!("checkpoint line {}: {}", i + 2, msg));
            match tag {
                "MATCHER" => {
                    ck.matcher = parts.next().unwrap_or("").to_string();
                }
                "GEN" => {
                    ck.generation = num(parts.next().unwrap_or(""), "generation")?;
                }
                "CYCLE" => {
                    ck.cycle = num(parts.next().unwrap_or(""), "cycle")?;
                }
                "TAG" => {
                    ck.tag_mark = num(parts.next().unwrap_or(""), "tag mark")?;
                }
                "HALTED" => {
                    ck.halted = match parts.next() {
                        Some("0") => false,
                        Some("1") => true,
                        other => {
                            return Err(fail(format!("bad halted flag `{}`", other.unwrap_or(""))))
                        }
                    };
                }
                "STATS" => {
                    ck.totals = parse_totals(&mut parts)?;
                    seen_stats = true;
                }
                "RULE" => {
                    let name = sym_of(
                        parts.next().ok_or_else(|| fail("missing rule".into()))?,
                        "rule",
                    )?;
                    let firings = num(parts.next().unwrap_or(""), "rule firings")?;
                    let actions = num(parts.next().unwrap_or(""), "rule actions")?;
                    ck.rules.push((name, RuleStats { firings, actions }));
                }
                "WME" => {
                    ck.wmes.push(parse_wme(&mut parts)?);
                }
                "FIRED" => {
                    let rule = sym_of(
                        parts.next().ok_or_else(|| fail("missing rule".into()))?,
                        "rule",
                    )?;
                    ck.fired.push((rule, KeySpec::parse(&mut parts)?));
                }
                other => return Err(fail(format!("unknown record `{}`", other))),
            }
        }
        if !seen_stats {
            return Err(corrupt("checkpoint has no STATS line"));
        }
        for w in &ck.wmes {
            if w.tag.raw() > ck.tag_mark {
                return Err(corrupt(format!(
                    "WME t{} exceeds the checkpoint tag mark {}",
                    w.tag.raw(),
                    ck.tag_mark
                )));
            }
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wme(tag: u64, class: &str, slots: &[(&str, Value)]) -> Wme {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        )
    }

    #[test]
    fn checkpoint_round_trips() {
        let ck = Checkpoint {
            matcher: "rete".into(),
            generation: 2,
            cycle: 12,
            tag_mark: 40,
            halted: true,
            totals: RunStats {
                firings: 12,
                makes: 3,
                removes: 1,
                modifies: 4,
                writes: 5,
                actions: 13,
                skipped_actions: 0,
                rolled_back: 1,
                per_rule: Default::default(),
            },
            rules: vec![(
                Symbol::new("r1"),
                RuleStats {
                    firings: 12,
                    actions: 13,
                },
            )],
            wmes: vec![
                wme(1, "player", &[("name", Value::sym("Jack"))]),
                wme(
                    40,
                    "score",
                    &[("n", Value::Int(7)), ("f", Value::Float(1.5))],
                ),
            ],
            fired: vec![
                (Symbol::new("r1"), KeySpec::Tuple(vec![TimeTag::new(1)])),
                (
                    Symbol::new("r1"),
                    KeySpec::Soi(vec![
                        KeyPart::Tag(TimeTag::new(40)),
                        KeyPart::Val(Value::sym("A")),
                    ]),
                ),
            ],
        };
        let text = ck.render();
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back.matcher, "rete");
        assert_eq!(back.generation, 2);
        assert_eq!(back.cycle, 12);
        assert_eq!(back.tag_mark, 40);
        assert!(back.halted);
        assert_eq!(back.totals.firings, 12);
        assert_eq!(back.totals.rolled_back, 1);
        assert_eq!(back.rules, ck.rules);
        assert_eq!(back.wmes.len(), 2);
        assert_eq!(back.wmes[1].get(Symbol::new("f")), Value::Float(1.5));
        assert_eq!(back.fired, ck.fired);
        // Re-render is byte-identical (canonical form).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let err = Checkpoint::parse("nonsense").unwrap_err();
        assert!(err.to_string().contains("not a checkpoint"), "{}", err);
        let err =
            Checkpoint::parse("sorete-ckpt 1\nSTATS\t0\t0\t0\t0\t0\t0\t0\t0\nWHAT\t1").unwrap_err();
        assert!(err.to_string().contains("unknown record `WHAT`"), "{}", err);
        let err = Checkpoint::parse("sorete-ckpt 1\nCYCLE\t3").unwrap_err();
        assert!(err.to_string().contains("no STATS line"), "{}", err);
        // A WME above the recorded tag mark is inconsistent.
        let err =
            Checkpoint::parse("sorete-ckpt 1\nTAG\t1\nSTATS\t0\t0\t0\t0\t0\t0\t0\t0\nWME\t5\tS:c")
                .unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{}", err);
    }

    #[test]
    fn cycle_marker_round_trips() {
        let m = CycleMarker {
            cycle: 9,
            halted: false,
            totals: RunStats {
                firings: 9,
                makes: 2,
                removes: 0,
                modifies: 3,
                writes: 1,
                actions: 6,
                skipped_actions: 0,
                rolled_back: 0,
                per_rule: Default::default(),
            },
            rule: Symbol::new("sweep"),
            rule_firings: 4,
            rule_actions: 5,
            version: 3,
            key: KeySpec::Soi(vec![KeyPart::Val(Value::sym("B"))]),
        };
        let back = CycleMarker::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        let t = CycleMarker {
            key: KeySpec::Tuple(vec![TimeTag::new(3), TimeTag::new(8)]),
            ..m
        };
        assert_eq!(CycleMarker::decode(&t.encode()).unwrap(), t);
        assert!(CycleMarker::decode(b"garbage").is_err());
    }

    #[test]
    fn keyspec_survives_rule_renumbering() {
        let key = InstKey::Soi {
            rule: RuleId::new(3),
            parts: vec![KeyPart::Val(Value::Int(1))].into(),
        };
        let spec = KeySpec::of(&key);
        let rebuilt = spec.into_key(RuleId::new(7));
        assert_eq!(rebuilt.rule(), RuleId::new(7));
        assert!(rebuilt.is_soi());
    }
}
