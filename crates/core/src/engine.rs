//! The production-system engine: recognise–act cycle over a pluggable
//! match algorithm.

use crate::conflict::{ConflictSet, Strategy};
use crate::durable::{Checkpoint, CycleMarker, KeySpec};
use crate::error::CoreError;
use crate::rhs::{self, RhsCtx, RhsHost};
use crate::stats::RunStats;
use crate::supervisor::{Supervisor, SupervisorConfig, SupervisorStats};
use crate::wm::WorkingMemory;
use sorete_base::flight::{CycleRecord, Flight};
use sorete_base::span::category as span_cat;
use sorete_base::{
    CollectSink, ConflictItem, CsDelta, FxHashMap, InstKey, MetricId, Metrics, NetProfile, RuleId,
    SharedSink, SnapshotWriter, Span, Spans, Symbol, TimeTag, TraceEvent, Tracer, Value, Wme,
};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::matcher::Matcher;
use sorete_lang::{analyze_program, parse_program};
use sorete_naive::NaiveMatcher;
use sorete_reldb::{decode_wme_op, encode_wme_op, IoFaultPlan, Wal, WalOptions, WalRecord};
use sorete_reldb::{WalStats, WmeOp};
use sorete_rete::ReteMatcher;
use sorete_treat::TreatMatcher;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which match algorithm backs the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Rete with S-nodes (the paper's implementation), equality joins
    /// answered through hash-indexed memories.
    #[default]
    Rete,
    /// The same Rete with indexing disabled (pure memory scans) — the
    /// baseline for measuring the indexing win; delta streams are
    /// byte-identical to `Rete`.
    ReteScan,
    /// TREAT (Miranker 1986) with S-nodes.
    Treat,
    /// Recompute-from-scratch oracle.
    Naive,
}

/// What the engine does when a RHS fails mid-firing.
///
/// Undo recording is enabled for every policy except [`AbortRun`]
/// (`RecoveryPolicy::AbortRun`), which therefore has zero per-action
/// overhead but leaves the partial firing's effects in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Stop the run at the error. Partial effects of the failed firing
    /// remain in working memory (the pre-transactional behaviour).
    AbortRun,
    /// Roll the failed firing back, keep it refracted, and continue the
    /// run with the next instantiation.
    SkipFiring,
    /// Roll the failed firing back — working memory, matcher memories,
    /// conflict set, refraction, output, and the `halt` flag return to
    /// their exact pre-firing state — then stop the run with the error.
    #[default]
    Rollback,
}

/// Resource limits enforced by [`ProductionSystem::run`]. All default to
/// unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunGuards {
    /// Maximum wall-clock time for the whole run.
    pub max_wall: Option<Duration>,
    /// Maximum number of WMEs in working memory.
    pub max_wm: Option<usize>,
    /// Maximum consecutive firings of the *same rule* that leave the WME
    /// count unchanged (no WM progress) — catches modify-loops that never
    /// quiesce.
    pub max_stagnant_firings: Option<u64>,
}

/// Which [`RunGuards`] limit a run exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardViolation {
    /// The run exceeded [`RunGuards::max_wall`].
    WallClock {
        /// The configured limit.
        limit: Duration,
    },
    /// Working memory exceeded [`RunGuards::max_wm`].
    WmSize {
        /// The configured limit.
        limit: usize,
        /// WME count when the guard tripped.
        actual: usize,
    },
    /// One rule fired [`RunGuards::max_stagnant_firings`] times in a row
    /// without WM progress.
    Stagnation {
        /// The spinning rule.
        rule: Symbol,
        /// Consecutive stagnant firings observed.
        firings: u64,
    },
    /// The matcher's live-byte estimate exceeded the supervisor's hard
    /// memory budget ([`crate::DegradationPolicy::hard_bytes`]). The run
    /// halted in order — with a checkpoint when one is configured — never
    /// by abort.
    MemoryBytes {
        /// The configured hard budget.
        limit: u64,
        /// Live bytes when the budget tripped.
        actual: u64,
    },
}

impl fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardViolation::WallClock { limit } => {
                write!(f, "wall-clock limit {:?} exceeded", limit)
            }
            GuardViolation::WmSize { limit, actual } => {
                write!(
                    f,
                    "working memory grew to {} WMEs (limit {})",
                    actual, limit
                )
            }
            GuardViolation::Stagnation { rule, firings } => {
                write!(
                    f,
                    "rule {} fired {} times without WM progress",
                    rule, firings
                )
            }
            GuardViolation::MemoryBytes { limit, actual } => {
                write!(
                    f,
                    "matcher memory grew to {} bytes (hard budget {})",
                    actual, limit
                )
            }
        }
    }
}

/// Why a [`ProductionSystem::run`] stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum StopReason {
    /// No fireable instantiation remained.
    Quiescence,
    /// A `(halt)` was executed.
    Halt,
    /// The firing limit was reached.
    Limit,
    /// A [`RunGuards`] limit tripped.
    ResourceExhausted(GuardViolation),
    /// A RHS failed and the [`RecoveryPolicy`] does not continue past
    /// errors. Under [`RecoveryPolicy::Rollback`] the failed firing has
    /// been fully undone; under [`RecoveryPolicy::AbortRun`] its partial
    /// effects remain.
    Error(CoreError),
    /// A panic unwound out of a firing, was caught by the engine's
    /// `catch_unwind` fence, and the [`RecoveryPolicy`] does not continue
    /// past errors. The firing was handled like any other failed firing
    /// (rolled back under [`RecoveryPolicy::Rollback`]).
    Panicked {
        /// The rule whose firing panicked.
        rule: Symbol,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The run went quiescent *but only because of quarantine*: every
    /// remaining fireable instantiation belongs to a quarantined rule.
    /// Re-admit (see [`ProductionSystem::readmit_rule`]) and run again to
    /// continue.
    Quarantined {
        /// The quarantined rules, sorted by name.
        rules: Vec<Symbol>,
    },
    /// The operator asked the run to stop: the interrupt flag installed
    /// with [`ProductionSystem::set_interrupt`] was raised (SIGTERM /
    /// SIGINT, a server shutdown, a cancelled request). The engine
    /// stopped at a firing boundary, so every committed cycle is intact
    /// — this is a *normal* end, distinguished so orchestrators can tell
    /// "asked to stop, checkpointed cleanly" from failure.
    Interrupted,
}

impl StopReason {
    /// True for every stop the operator did not ask for — panics,
    /// errors, quarantine stalls, and tripped resource guards. Abnormal
    /// stops drain the flight recorder into a crash bundle; `Quiescence`,
    /// `Halt`, and `Limit` are normal ends.
    pub fn is_abnormal(&self) -> bool {
        !matches!(
            self,
            StopReason::Quiescence | StopReason::Halt | StopReason::Limit | StopReason::Interrupted
        )
    }

    /// Short machine-readable label (`quiescence`, `panicked`, …) used in
    /// bundle manifests and exit-code mapping.
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Quiescence => "quiescence",
            StopReason::Halt => "halt",
            StopReason::Limit => "limit",
            StopReason::ResourceExhausted(_) => "resource-exhausted",
            StopReason::Error(_) => "error",
            StopReason::Panicked { .. } => "panicked",
            StopReason::Quarantined { .. } => "quarantined",
            StopReason::Interrupted => "interrupted",
        }
    }
}

/// Result of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Rules fired during this run.
    pub fired: u64,
    /// Why the run ended.
    pub reason: StopReason,
}

/// Render a WME for trace events: `(class ^attr val …)` — the tag rides
/// in the event's own field.
pub(crate) fn render_wme(w: &Wme) -> String {
    use std::fmt::Write as _;
    let mut s = format!("({}", w.class);
    for (a, v) in w.slots() {
        let _ = write!(s, " ^{} {}", a, v);
    }
    s.push(')');
    s
}

/// The legacy string form of an event, for [`ProductionSystem::take_trace`].
/// Events without a legacy form render to nothing.
fn legacy_trace_line(ev: &TraceEvent) -> Option<String> {
    match ev {
        TraceEvent::Fire { rule, rows, .. } => Some(format!("FIRE {} {:?}", rule, rows)),
        TraceEvent::SkipAction { action, tag } => {
            Some(format!("SKIP {} {} (dead time tag)", action, tag))
        }
        TraceEvent::Rollback { rule, error } => Some(format!("ROLLBACK {} ({})", rule, error)),
        _ => None,
    }
}

/// One inverse action in the firing's undo log. Replayed in reverse on
/// rollback, through the matcher, exactly like a forward WM transaction
/// (mirrors the write-set of `reldb`'s optimistic transactions).
enum UndoOp {
    /// The firing asserted this tag; rollback retracts it.
    Retract(TimeTag),
    /// The firing removed this WME; rollback re-inserts it under its
    /// original tag.
    Restore(Wme),
}

/// Deterministic single-shot fault: fail the `target`-th primitive RHS
/// action (0-based, counted across the whole run), then pass everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    target: u64,
    seen: u64,
    triggered: bool,
    panics: bool,
}

impl FaultPlan {
    /// Fail exactly the `n`-th action (0-based).
    pub fn nth(n: u64) -> FaultPlan {
        FaultPlan {
            target: n,
            seen: 0,
            triggered: false,
            panics: false,
        }
    }

    /// Make the fault *panic* at its target action instead of returning
    /// an error — exercises the engine's `catch_unwind` fence. A plan
    /// that panics is consumed ([`ProductionSystem::take_fault`] returns
    /// `None` afterwards): the unwind tears down the injector before it
    /// can hand the plan back.
    pub fn panicking(mut self) -> FaultPlan {
        self.panics = true;
        self
    }

    /// Derive a target action index in `0..max_actions` from a seed
    /// (splitmix64), for property tests that sweep seeds.
    pub fn seeded(seed: u64, max_actions: u64) -> FaultPlan {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultPlan::nth(z % max_actions.max(1))
    }

    /// The action index this plan fails.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Has the fault fired yet?
    pub fn triggered(&self) -> bool {
        self.triggered
    }

    /// Count one action; fail it if it is the target.
    fn check(&mut self) -> Result<(), CoreError> {
        if self.triggered {
            return Ok(());
        }
        let idx = self.seen;
        self.seen += 1;
        if idx == self.target {
            self.triggered = true;
            if self.panics {
                panic!("injected panic at action {}", idx);
            }
            return Err(CoreError::FaultInjected { action: idx });
        }
        Ok(())
    }
}

/// Render a caught panic payload (the `&str`/`String` cases `panic!`
/// produces) to text for [`CoreError::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A [`RhsHost`] wrapper that injects the faults of a [`FaultPlan`].
///
/// The check runs *before* delegating, so a failed action has no side
/// effects — the fault models an action that died before touching state.
/// Usable around any host; [`ProductionSystem::inject_fault`] installs one
/// around the engine itself for whole-run fault sweeps.
pub struct FaultInjector<'a, H: RhsHost + ?Sized> {
    host: &'a mut H,
    plan: &'a mut FaultPlan,
}

impl<'a, H: RhsHost + ?Sized> FaultInjector<'a, H> {
    /// Wrap `host`, failing actions according to `plan`.
    pub fn new(host: &'a mut H, plan: &'a mut FaultPlan) -> Self {
        FaultInjector { host, plan }
    }
}

impl<H: RhsHost + ?Sized> RhsHost for FaultInjector<'_, H> {
    fn make(&mut self, class: Symbol, slots: Vec<(Symbol, Value)>) -> Result<TimeTag, CoreError> {
        self.plan.check()?;
        self.host.make(class, slots)
    }

    fn remove(&mut self, tag: TimeTag) -> Result<bool, CoreError> {
        self.plan.check()?;
        self.host.remove(tag)
    }

    fn modify(
        &mut self,
        tag: TimeTag,
        updates: Vec<(Symbol, Value)>,
    ) -> Result<Option<TimeTag>, CoreError> {
        self.plan.check()?;
        self.host.modify(tag, updates)
    }

    fn write_line(&mut self, line: String) -> Result<(), CoreError> {
        self.plan.check()?;
        self.host.write_line(line)
    }

    fn halt(&mut self) -> Result<(), CoreError> {
        self.plan.check()?;
        self.host.halt()
    }

    fn note_bind(&mut self) -> Result<(), CoreError> {
        self.plan.check()?;
        self.host.note_bind()
    }
}

/// Pre-registered ids for every engine-owned metric family, resolved once
/// in [`ProductionSystem::enable_metrics`] so the per-cycle sampling path
/// never touches the registry's name table.
struct MetricIds {
    cycles: MetricId,
    firings: MetricId,
    actions: MetricId,
    makes: MetricId,
    removes: MetricId,
    modifies: MetricId,
    writes: MetricId,
    skipped_actions: MetricId,
    rolled_back: MetricId,
    wm_asserts: MetricId,
    wm_retracts: MetricId,
    alpha_activations: MetricId,
    beta_activations: MetricId,
    join_tests: MetricId,
    tokens_created: MetricId,
    tokens_deleted: MetricId,
    snode_activations: MetricId,
    aggregate_updates: MetricId,
    index_probes: MetricId,
    index_skipped_tests: MetricId,
    wal_records: MetricId,
    wal_bytes: MetricId,
    wal_commits: MetricId,
    wal_fsyncs: MetricId,
    wal_recovered_records: MetricId,
    wal_discarded_records: MetricId,
    wal_truncated_bytes: MetricId,
    wal_writes: MetricId,
    sup_panics: MetricId,
    sup_io_retries: MetricId,
    sup_quarantines: MetricId,
    sup_readmissions: MetricId,
    sup_soft_degrades: MetricId,
    sup_hard_degrades: MetricId,
    quarantined_rules: MetricId,
    conflict_set_size: MetricId,
    wm_size: MetricId,
    shards: MetricId,
    shard_imbalance: MetricId,
    fire_nanos: MetricId,
    resolve_nanos: MetricId,
    rhs_nanos: MetricId,
    match_nanos: MetricId,
}

/// Metrics state carried by the engine when telemetry is enabled: the
/// shared registry handle, the pre-registered ids, and the two WM-churn
/// tallies that have no [`RunStats`] source of truth.
struct EngineMetrics {
    handle: Metrics,
    ids: MetricIds,
    /// WME assertions (engine API + RHS `make` + `modify` re-asserts).
    wm_asserts: u64,
    /// WME retractions (engine API + RHS `remove` + `modify` retracts).
    wm_retracts: u64,
}

/// Engine-attached write-ahead log: the `reldb` WAL plus the op buffer of
/// the in-flight firing. Ops accumulate while a RHS runs and hit the log
/// only when the firing commits (followed by a cycle marker); a failed
/// firing's buffer is dropped, so the log never contains rolled-back
/// effects.
struct EngineWal {
    wal: Wal,
    pending: Vec<WmeOp>,
}

/// What [`ProductionSystem::attach_wal`] replayed from an existing log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalReplayReport {
    /// Committed WME operations re-applied to working memory.
    pub replayed_ops: u64,
    /// Cycle markers applied (firings the recovered run already did).
    pub replayed_cycles: u64,
    /// Plain transaction commits applied (API-level WM changes).
    pub replayed_commits: u64,
    /// Intact-but-uncommitted tail records discarded by recovery.
    pub discarded_records: u64,
    /// Tail bytes truncated by recovery (torn/short/uncommitted frames).
    pub truncated_bytes: u64,
    /// Committed records discarded as stale: the resumed checkpoint was
    /// one generation ahead of the log (crash between checkpoint rename
    /// and log rotation), so it already contains their effects.
    pub stale_records: u64,
}

/// What [`ProductionSystem::resume`] restored from a checkpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResumeReport {
    /// WMEs replayed into working memory and the match network.
    pub wmes: usize,
    /// Refracted instantiations re-armed in the rebuilt conflict set.
    pub refracted: usize,
    /// Cycle counter after the resume.
    pub cycle: u64,
    /// Algorithm name of the engine that wrote the checkpoint.
    pub matcher_was: String,
}

/// A complete forward-chaining production system: working memory, match
/// network, conflict resolution, and the set-oriented RHS interpreter.
///
/// ```
/// use sorete_core::{MatcherKind, ProductionSystem};
/// use sorete_base::Value;
///
/// let mut ps = ProductionSystem::new(MatcherKind::Rete);
/// ps.load_program(
///     "(literalize player name team)
///      (p greet (player ^name <n>) (write hello <n>) (remove 1))",
/// ).unwrap();
/// ps.make_str("player", &[("name", Value::sym("Jack"))]).unwrap();
/// let outcome = ps.run(None);
/// assert_eq!(outcome.fired, 1);
/// assert_eq!(ps.take_output(), vec!["hello Jack"]);
/// ```
pub struct ProductionSystem {
    matcher: Box<dyn Matcher>,
    rules: Vec<Arc<AnalyzedRule>>,
    rule_ids: FxHashMap<Symbol, RuleId>,
    wm: WorkingMemory,
    cs: ConflictSet,
    strategy: Strategy,
    halted: bool,
    stats: RunStats,
    output: Vec<String>,
    /// Combined tracer (user sinks + legacy shim + event log); the matcher
    /// holds a clone for its physical events.
    tracer: Tracer,
    /// Sinks installed via [`Self::add_trace_sink`] (e.g. a `JsonlSink`).
    user_sinks: Vec<SharedSink>,
    /// Backing store of the legacy string trace ([`Self::take_trace`]).
    legacy: Option<Arc<Mutex<CollectSink>>>,
    /// In-memory event log serving `explain` ([`Self::trace_events`]).
    event_log: Option<Arc<Mutex<CollectSink>>>,
    /// 1-based recognise–act cycle counter (0 = before any firing).
    cycle: u64,
    /// Set while a RHS runs, for per-rule action accounting.
    firing_rule: Option<Symbol>,
    recovery: RecoveryPolicy,
    guards: RunGuards,
    /// Inverse ops of the in-flight firing (recorded only when the policy
    /// can roll back).
    undo: Vec<UndoOp>,
    /// True while a RHS runs under a rollback-capable policy.
    recording: bool,
    /// Installed fault plan, applied to every firing until triggered.
    fault: Option<FaultPlan>,
    /// Metrics registry + pre-registered ids; `None` until
    /// [`Self::enable_metrics`] — the disabled path is a null check.
    metrics: Option<Box<EngineMetrics>>,
    /// Write-ahead log; `None` until [`Self::attach_wal`] — the detached
    /// path is a null check.
    dur: Option<Box<EngineWal>>,
    /// Checkpoint generation this engine's state descends from: set by
    /// [`Self::resume`], advanced by [`Self::checkpoint_to`], matched
    /// against the log's stamp by [`Self::attach_wal`].
    ckpt_gen: u64,
    /// Supervision state (circuit breakers, retry policy, degradation
    /// budgets); `None` until [`Self::enable_supervision`] — the
    /// unsupervised path is a null check.
    sup: Option<Box<Supervisor>>,
    /// The rule whose firing produced the last [`Self::step`] error, for
    /// [`Self::run`]'s breaker bookkeeping and structured stop reasons.
    last_failed: Option<Symbol>,
    /// Worker pool backing a parallel matcher; `None` under the classic
    /// single-threaded backends. Shared with the matcher for busy-time
    /// accounting.
    pool: Option<Arc<sorete_base::WorkerPool>>,
    /// Hierarchical span recorder (run → cycle → match/resolve/rhs/
    /// wal_commit); disabled (a single branch per site) until
    /// [`Self::enable_spans`].
    spans: Spans,
    /// Always-on flight recorder: a fixed ring of the most recent logical
    /// trace events, closed spans, and per-cycle summary records, drained
    /// into a crash bundle on abnormal exit. On (default capacity) from
    /// construction; [`Self::set_flight_recorder`] resizes or disables it.
    flight: Flight,
    /// Match-network partition count recorded in bundles and metrics
    /// (1 under the single-threaded backends).
    shard_count: usize,
    /// Process invocation (argv) recorded into crash bundles; set by the
    /// CLI via [`Self::set_invocation`].
    invocation: Vec<String>,
    /// Where crash bundles land; defaults to the WAL's directory when one
    /// is attached, else the current directory.
    crash_dir: Option<PathBuf>,
    /// Path of the most recent crash bundle written by [`Self::run`] or
    /// [`Self::dump_bundle`].
    last_bundle: Option<PathBuf>,
    /// Bundle retention cap applied after every bundle write (newest N
    /// survive; 0 disables pruning). Seeded from `SORETE_CRASH_KEEP`,
    /// overridden by [`Self::set_crash_keep`] (`--crash-keep`).
    crash_keep: usize,
    /// Cooperative cancellation flag checked between firings; `None`
    /// until [`Self::set_interrupt`].
    interrupt: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl ProductionSystem {
    /// New engine over the chosen matcher, LEX strategy. When the
    /// `SORETE_JOBS` environment variable is set, the partitioned parallel
    /// backend is used with that many worker lanes (equivalent to
    /// [`Self::with_jobs`]); otherwise the classic monolithic matcher runs
    /// on the calling thread.
    pub fn new(kind: MatcherKind) -> ProductionSystem {
        match sorete_base::jobs_from_env() {
            Some(_) => Self::with_jobs(kind, sorete_base::resolve_jobs(None)),
            None => Self::with_matcher(kind, None),
        }
    }

    /// New engine over the rule-partitioned parallel backend
    /// ([`crate::ParallelMatcher`]) for `kind`, fanning match work across
    /// `jobs` pool lanes. The logical delta stream — and therefore every
    /// firing decision — is byte-identical for all `jobs` values,
    /// including 1 (see `crate::parallel` for the merge invariant).
    pub fn with_jobs(kind: MatcherKind, jobs: usize) -> ProductionSystem {
        Self::with_matcher(kind, Some(jobs.max(1)))
    }

    /// [`Self::with_jobs`] with an explicit match-network partition count
    /// (`--shards N`; default [`crate::parallel::PARTITIONS`]). The
    /// partition map depends on it, so runs are only comparable — and
    /// checkpoints only resumable — at the same shard count.
    pub fn with_jobs_shards(kind: MatcherKind, jobs: usize, shards: usize) -> ProductionSystem {
        Self::with_matcher_shards(kind, Some(jobs.max(1)), Some(shards.max(1)))
    }

    fn with_matcher(kind: MatcherKind, jobs: Option<usize>) -> ProductionSystem {
        Self::with_matcher_shards(kind, jobs, None)
    }

    fn with_matcher_shards(
        kind: MatcherKind,
        jobs: Option<usize>,
        shards: Option<usize>,
    ) -> ProductionSystem {
        let shards = shards.unwrap_or(crate::parallel::PARTITIONS).max(1);
        let (matcher, pool, shard_count): (
            Box<dyn Matcher>,
            Option<Arc<sorete_base::WorkerPool>>,
            usize,
        ) = match jobs {
            Some(n) => {
                let pool = Arc::new(sorete_base::WorkerPool::new(n));
                let m = crate::parallel::ParallelMatcher::with_pool_shards(
                    kind,
                    Arc::clone(&pool),
                    shards,
                );
                (Box::new(m), Some(pool), shards)
            }
            None => (
                match kind {
                    MatcherKind::Rete => Box::new(ReteMatcher::new()),
                    MatcherKind::ReteScan => Box::new(ReteMatcher::with_indexing(false)),
                    MatcherKind::Treat => Box::new(TreatMatcher::new()),
                    MatcherKind::Naive => Box::new(NaiveMatcher::new()),
                },
                None,
                1,
            ),
        };
        let mut ps = ProductionSystem {
            matcher,
            rules: Vec::new(),
            rule_ids: FxHashMap::default(),
            wm: WorkingMemory::new(),
            cs: ConflictSet::new(),
            strategy: Strategy::Lex,
            halted: false,
            stats: RunStats::default(),
            output: Vec::new(),
            tracer: Tracer::null(),
            user_sinks: Vec::new(),
            legacy: None,
            event_log: None,
            cycle: 0,
            firing_rule: None,
            recovery: RecoveryPolicy::default(),
            guards: RunGuards::default(),
            undo: Vec::new(),
            recording: false,
            fault: None,
            metrics: None,
            dur: None,
            ckpt_gen: 0,
            sup: None,
            last_failed: None,
            pool,
            spans: Spans::null(),
            flight: Flight::recording(sorete_base::flight::DEFAULT_CAPACITY),
            shard_count,
            invocation: Vec::new(),
            crash_dir: None,
            last_bundle: None,
            crash_keep: std::env::var("SORETE_CRASH_KEEP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(crate::bundle::DEFAULT_CRASH_KEEP),
            interrupt: None,
        };
        // The default tracer must carry the always-on flight recorder.
        ps.rebuild_tracer();
        ps
    }

    /// Worker lanes driving the match network (1 when single-threaded).
    pub fn jobs(&self) -> usize {
        self.pool.as_ref().map(|p| p.jobs()).unwrap_or(1)
    }

    /// Match-network partition count (1 under the single-threaded
    /// backends). Exported as the `sorete_shards` gauge and recorded in
    /// crash bundles, so post-mortems know the topology of the run.
    pub fn shards(&self) -> usize {
        self.shard_count
    }

    /// Resize the always-on flight recorder ring (each of the event, span,
    /// and cycle rings keeps the last `capacity` entries); `0` turns the
    /// recorder off entirely. Call before [`Self::enable_spans`] — a span
    /// recorder enabled earlier keeps tapping the previous ring.
    pub fn set_flight_recorder(&mut self, capacity: usize) {
        self.flight = Flight::recording(capacity);
        self.rebuild_tracer();
    }

    /// Whether the flight recorder is on.
    pub fn flight_enabled(&self) -> bool {
        self.flight.enabled()
    }

    /// A handle on the flight recorder (off handle when disabled).
    pub fn flight(&self) -> Flight {
        self.flight.clone()
    }

    /// Record the process invocation (argv) for crash-bundle manifests.
    pub fn set_invocation(&mut self, argv: Vec<String>) {
        self.invocation = argv;
    }

    /// The recorded invocation (empty unless [`Self::set_invocation`]).
    pub fn invocation(&self) -> &[String] {
        &self.invocation
    }

    /// Direct crash bundles into `dir` instead of the default (the WAL's
    /// directory when attached, else the current directory).
    pub fn set_crash_dir(&mut self, dir: impl Into<PathBuf>) {
        self.crash_dir = Some(dir.into());
    }

    /// Where a crash bundle would be written right now.
    pub fn crash_dir(&self) -> PathBuf {
        if let Some(d) = &self.crash_dir {
            return d.clone();
        }
        self.dur
            .as_ref()
            .and_then(|d| d.wal.path().parent().map(Path::to_path_buf))
            .unwrap_or_else(|| PathBuf::from("."))
    }

    /// Path of the most recent crash bundle this engine wrote, if any.
    pub fn last_crash_bundle(&self) -> Option<&Path> {
        self.last_bundle.as_deref()
    }

    /// Bundle retention cap: after every bundle write, only the newest
    /// `keep` `sorete-crash-*` directories in the crash directory survive
    /// ([`crate::bundle::prune`], oldest removed first). `0` disables
    /// pruning. Defaults to `SORETE_CRASH_KEEP`, else
    /// [`crate::bundle::DEFAULT_CRASH_KEEP`].
    pub fn set_crash_keep(&mut self, keep: usize) {
        self.crash_keep = keep;
    }

    /// The active bundle-retention cap (see [`Self::set_crash_keep`]).
    pub fn crash_keep(&self) -> usize {
        self.crash_keep
    }

    /// Install a cooperative interrupt flag. [`Self::run`] checks it
    /// between firings; once it reads `true` the run stops at the next
    /// firing boundary with [`StopReason::Interrupted`] (cutting an
    /// orderly checkpoint first when supervision has a checkpoint path).
    /// Committed state is never torn: the flag is only honoured between
    /// cycles. Share one flag across engines to broadcast a shutdown.
    pub fn set_interrupt(&mut self, flag: Arc<std::sync::atomic::AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// True when an installed interrupt flag is currently raised.
    pub fn interrupt_requested(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Cumulative per-lane busy nanoseconds of the match worker pool
    /// (lane 0 = the engine thread), or `None` when single-threaded.
    /// Benches use this for critical-path speedup accounting.
    pub fn pool_busy_nanos(&self) -> Option<Vec<u64>> {
        self.pool.as_ref().map(|p| p.busy_nanos())
    }

    /// Zero the pool's per-lane busy counters (no-op when
    /// single-threaded), so a bench can scope the accounting to its
    /// measured phase.
    pub fn pool_reset_busy(&self) {
        if let Some(p) = &self.pool {
            p.reset_busy();
        }
    }

    /// Turn on supervision: panic isolation feeds the circuit breakers,
    /// transient durable-I/O errors are retried with deterministic
    /// backoff, rules that keep failing are quarantined, and resource
    /// budgets degrade the run gracefully (checkpoint + halt, never
    /// abort). Quarantine-past-failure requires a rollback-capable
    /// [`RecoveryPolicy`]; under [`RecoveryPolicy::AbortRun`] only the
    /// retry and degradation halves are active.
    pub fn enable_supervision(&mut self, config: SupervisorConfig) {
        self.sup = Some(Box::new(Supervisor::new(config)));
    }

    /// Whether [`Self::enable_supervision`] has been called.
    pub fn supervision_enabled(&self) -> bool {
        self.sup.is_some()
    }

    /// Supervision activity counters (all zero when supervision is off).
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.sup.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Rules currently quarantined, sorted by name.
    pub fn quarantined_rules(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self
            .cs
            .quarantined_rules()
            .map(|id| self.rules[id.index()].name)
            .collect();
        v.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        v
    }

    /// Manually quarantine a rule: its instantiations stay derived (and
    /// keep refraction bookkeeping) but conflict resolution never selects
    /// them. Errors when no such rule is loaded.
    pub fn quarantine_rule(&mut self, name: &str) -> Result<(), CoreError> {
        let sym = Symbol::new(name);
        let id = self
            .rule_ids
            .get(&sym)
            .copied()
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` to quarantine", name)))?;
        self.cs.set_rule_quarantined(id, true);
        self.tracer.emit(|| TraceEvent::Quarantine {
            rule: sym,
            failures: 0,
        });
        Ok(())
    }

    /// Re-admit a quarantined rule: its preserved instantiations become
    /// selectable again immediately and its circuit breaker is reset.
    /// Returns whether the rule was actually quarantined. Errors when no
    /// such rule is loaded.
    pub fn readmit_rule(&mut self, name: &str) -> Result<bool, CoreError> {
        let sym = Symbol::new(name);
        let id = self
            .rule_ids
            .get(&sym)
            .copied()
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` to readmit", name)))?;
        let was = self.cs.is_rule_quarantined(id);
        self.cs.set_rule_quarantined(id, false);
        if let Some(sup) = self.sup.as_mut() {
            sup.readmit(sym);
        }
        if was {
            self.tracer.emit(|| TraceEvent::Readmit { rule: sym });
        }
        Ok(was)
    }

    /// Change the conflict-resolution strategy.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Change what happens when a RHS fails mid-firing (default:
    /// [`RecoveryPolicy::Rollback`]).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Install resource limits for [`Self::run`] (default: unlimited).
    pub fn set_guards(&mut self, guards: RunGuards) {
        self.guards = guards;
    }

    /// The active resource limits.
    pub fn guards(&self) -> RunGuards {
        self.guards
    }

    /// Install a fault plan: RHS actions are counted across firings and
    /// the plan's target action fails with [`CoreError::FaultInjected`].
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Remove and return the installed fault plan (inspect
    /// [`FaultPlan::triggered`] to see whether it fired).
    pub fn take_fault(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Enable firing traces (retrievable via [`Self::take_trace`]).
    ///
    /// This is a compatibility shim over the event stream: it installs an
    /// internal [`CollectSink`] and [`Self::take_trace`] renders the
    /// collected fire/skip/rollback events in the old string format.
    pub fn set_tracing(&mut self, on: bool) {
        if on == self.legacy.is_some() {
            return;
        }
        self.legacy = on.then(|| Arc::new(Mutex::new(CollectSink::new())));
        self.rebuild_tracer();
    }

    /// Attach a [`sorete_base::TraceSink`] to the engine's event stream
    /// (both the engine's logical events and the matcher's physical ones).
    pub fn add_trace_sink(&mut self, sink: SharedSink) {
        self.user_sinks.push(sink);
        self.rebuild_tracer();
    }

    /// Enable (or disable) the in-memory event log behind
    /// [`Self::trace_events`], which `explain` reads.
    pub fn set_event_log(&mut self, on: bool) {
        if on == self.event_log.is_some() {
            return;
        }
        self.event_log = on.then(|| Arc::new(Mutex::new(CollectSink::new())));
        self.rebuild_tracer();
    }

    /// A copy of the in-memory event log (empty unless
    /// [`Self::set_event_log`] enabled it).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.event_log
            .as_ref()
            .map(|l| l.lock().unwrap().events().to_vec())
            .unwrap_or_default()
    }

    /// Flush every attached trace sink and the metrics snapshot stream
    /// (forces buffered JSONL out). This is the single "flush everything"
    /// hook every abnormal-exit path funnels through.
    pub fn flush_trace(&self) {
        sorete_base::flight::on_abnormal_exit(&self.tracer, &self.metrics());
    }

    /// Enable or disable the matcher's per-node profiler.
    pub fn set_profiling(&mut self, on: bool) {
        self.matcher.set_profiling(on);
    }

    /// Turn on hierarchical span recording (`run` → `cycle` →
    /// `match`/`resolve`/`rhs`/`wal_commit`, plus physical `shard_match` /
    /// `firing_build` / WAL I/O spans on their worker lanes). Idempotent.
    /// The recorder is handed to the matcher and any attached WAL; a WAL
    /// attached later inherits it in [`Self::attach_wal`].
    pub fn enable_spans(&mut self) {
        if self.spans.enabled() {
            return;
        }
        self.spans = Spans::recording_with_flight(self.flight.clone());
        self.matcher.set_spans(self.spans.clone());
        if let Some(d) = &mut self.dur {
            d.wal.set_spans(self.spans.clone());
        }
    }

    /// Whether [`Self::enable_spans`] has been called.
    pub fn spans_enabled(&self) -> bool {
        self.spans.enabled()
    }

    /// A handle on the engine's span recorder (a null handle when
    /// disabled, so callers can hold it unconditionally).
    pub fn spans(&self) -> Spans {
        self.spans.clone()
    }

    /// Drain every finished span recorded so far, oldest first (empty
    /// when spans are disabled).
    pub fn take_spans(&mut self) -> Vec<Span> {
        self.spans.take()
    }

    /// A copy of the finished spans without draining them.
    pub fn span_snapshot(&self) -> Vec<Span> {
        self.spans.snapshot()
    }

    /// The matcher's per-node profile, when profiling is enabled and the
    /// backend supports it.
    pub fn profile(&self) -> Option<NetProfile> {
        self.matcher.profile()
    }

    /// The static match-network path of a rule (for `explain`), when the
    /// backend has a network.
    pub fn rule_network_path(&self, name: &str) -> Option<Vec<String>> {
        let id = self.rule_ids.get(&Symbol::new(name))?;
        self.matcher.rule_network_path(*id)
    }

    /// The current recognise–act cycle number (0 before any firing).
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Turn on the metrics registry. Idempotent. All counter families are
    /// registered up front; per-cycle sampling then works by id. Counters
    /// with an existing source of truth ([`RunStats`],
    /// [`sorete_base::MatchStats`]) are *sampled* from it, never
    /// incremented independently — the registry cannot diverge from
    /// `--stats` by construction.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_some() {
            return;
        }
        let handle = Metrics::new_registry();
        let ids = handle
            .with(|r| MetricIds {
                cycles: r.counter("sorete_cycles_total", "Recognise-act cycles begun"),
                firings: r.counter("sorete_firings_total", "Rule firings (incl. rolled back)"),
                actions: r.counter("sorete_actions_total", "RHS actions executed"),
                makes: r.counter("sorete_makes_total", "RHS make actions"),
                removes: r.counter("sorete_removes_total", "RHS remove actions"),
                modifies: r.counter("sorete_modifies_total", "RHS modify actions"),
                writes: r.counter("sorete_writes_total", "RHS write actions"),
                skipped_actions: r.counter(
                    "sorete_skipped_actions_total",
                    "RHS actions on already-dead WMEs (overlapping set ops)",
                ),
                rolled_back: r.counter("sorete_rolled_back_total", "Firings rolled back"),
                wm_asserts: r.counter("sorete_wm_asserts_total", "WME assertions"),
                wm_retracts: r.counter("sorete_wm_retracts_total", "WME retractions"),
                alpha_activations: r.counter(
                    "sorete_match_alpha_activations_total",
                    "Alpha-memory activations",
                ),
                beta_activations: r.counter(
                    "sorete_match_beta_activations_total",
                    "Beta-node activations",
                ),
                join_tests: r.counter("sorete_match_join_tests_total", "Join consistency tests"),
                tokens_created: r.counter("sorete_match_tokens_created_total", "Tokens created"),
                tokens_deleted: r.counter("sorete_match_tokens_deleted_total", "Tokens deleted"),
                snode_activations: r
                    .counter("sorete_match_snode_activations_total", "S-node activations"),
                aggregate_updates: r.counter(
                    "sorete_match_aggregate_updates_total",
                    "Incremental aggregate updates",
                ),
                index_probes: r.counter("sorete_match_index_probes_total", "Hash-index probes"),
                index_skipped_tests: r.counter(
                    "sorete_match_index_skipped_tests_total",
                    "Join tests answered by hash indexes instead of evaluation",
                ),
                wal_records: r.counter("sorete_wal_records_total", "WAL records appended"),
                wal_bytes: r.counter("sorete_wal_bytes_total", "WAL bytes appended"),
                wal_commits: r.counter(
                    "sorete_wal_commits_total",
                    "WAL commit points (tx commits + cycle markers)",
                ),
                wal_fsyncs: r.counter("sorete_wal_fsyncs_total", "WAL fsyncs issued"),
                wal_recovered_records: r.counter(
                    "sorete_wal_recovered_records_total",
                    "Committed WAL records replayed at attach",
                ),
                wal_discarded_records: r.counter(
                    "sorete_wal_discarded_records_total",
                    "Intact-but-uncommitted WAL tail records discarded at attach",
                ),
                wal_truncated_bytes: r.counter(
                    "sorete_wal_truncated_bytes_total",
                    "WAL tail bytes truncated by recovery at attach",
                ),
                wal_writes: r.counter(
                    "sorete_wal_writes_total",
                    "write(2) calls issued by the WAL (group-commit flushes)",
                ),
                sup_panics: r.counter(
                    "sorete_supervisor_panics_total",
                    "Panics caught unwinding out of firings",
                ),
                sup_io_retries: r.counter(
                    "sorete_supervisor_io_retries_total",
                    "Durable-I/O retry attempts (WAL appends + checkpoints)",
                ),
                sup_quarantines: r.counter(
                    "sorete_supervisor_quarantines_total",
                    "Circuit-breaker trips (rules quarantined)",
                ),
                sup_readmissions: r.counter(
                    "sorete_supervisor_readmissions_total",
                    "Quarantined rules re-admitted",
                ),
                sup_soft_degrades: r.counter(
                    "sorete_supervisor_soft_degrades_total",
                    "Soft-budget degradations (automatic checkpoints)",
                ),
                sup_hard_degrades: r.counter(
                    "sorete_supervisor_hard_degrades_total",
                    "Hard-budget degradations (orderly halts)",
                ),
                quarantined_rules: r
                    .gauge("sorete_quarantined_rules", "Rules currently quarantined"),
                conflict_set_size: r.gauge(
                    "sorete_conflict_set_size",
                    "Conflict-set entries (fired included)",
                ),
                wm_size: r.gauge("sorete_wm_size", "Working-memory size"),
                shards: r.gauge(
                    "sorete_shards",
                    "Match-network partition count (1 = single-threaded)",
                ),
                shard_imbalance: r.gauge(
                    "sorete_shard_imbalance_permille",
                    "max/mean per-shard match busy time, permille (1000 = balanced; \
                     0 until spans record shard work)",
                ),
                fire_nanos: r.histogram(
                    "sorete_fire_nanos",
                    "Whole recognise-act cycle wall time (ns)",
                ),
                resolve_nanos: r.histogram(
                    "sorete_resolve_nanos",
                    "Conflict-resolution (select + materialize) wall time (ns)",
                ),
                rhs_nanos: r.histogram("sorete_rhs_nanos", "RHS execution wall time (ns)"),
                match_nanos: r.histogram(
                    "sorete_match_nanos",
                    "Matcher propagation wall time per WM change (ns)",
                ),
            })
            .expect("fresh registry is enabled");
        self.metrics = Some(Box::new(EngineMetrics {
            handle,
            ids,
            wm_asserts: 0,
            wm_retracts: 0,
        }));
    }

    /// Whether [`Self::enable_metrics`] has been called.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// A handle on the engine's registry ([`Metrics::null`] when metrics
    /// are disabled, so callers can hold it unconditionally).
    pub fn metrics(&self) -> Metrics {
        self.metrics
            .as_ref()
            .map(|m| m.handle.clone())
            .unwrap_or_else(Metrics::null)
    }

    /// Stream every per-cycle snapshot to `writer` as JSONL (enables
    /// metrics if needed).
    pub fn set_metrics_stream(&mut self, writer: SnapshotWriter) {
        self.enable_metrics();
        let m = self.metrics.as_ref().expect("just enabled");
        m.handle.with(|r| r.stream_to(writer));
    }

    /// Bound the in-memory snapshot ring (enables metrics if needed).
    pub fn set_metrics_capacity(&mut self, capacity: usize) {
        self.enable_metrics();
        let m = self.metrics.as_ref().expect("just enabled");
        m.handle.with(|r| r.set_capacity(capacity));
    }

    /// Snapshot lines streamed to the JSONL writer so far.
    pub fn metrics_stream_written(&self) -> u64 {
        self.metrics
            .as_ref()
            .and_then(|m| m.handle.with(|r| r.stream_written()))
            .unwrap_or(0)
    }

    /// Sample every gauge/counter from its source of truth and record a
    /// snapshot at the current cycle. The engine calls this at the end of
    /// every cycle (success *and* failure); call it manually to capture
    /// state between runs. No-op when metrics are disabled.
    ///
    /// Snapshots are taken at **cycle barriers only**: while a firing is in
    /// flight (RHS running, parallel match propagation not yet merged) the
    /// call is refused, so `--watch` gauge readers can never observe a
    /// half-applied cycle — e.g. a WM size that includes a firing's asserts
    /// but not yet its conflict-set consequences.
    pub fn record_metrics_snapshot(&self) {
        let Some(m) = self.metrics.as_ref() else {
            return;
        };
        if self.firing_rule.is_some() {
            return;
        }
        self.sample_metrics(m);
        let cycle = self.cycle;
        m.handle.with(|r| r.snapshot(cycle));
    }

    /// Pull current values into the registry: [`RunStats`] and
    /// [`sorete_base::MatchStats`] counters, conflict-set/WM gauges, the
    /// matcher's [`sorete_base::MemoryReport`] as labeled byte/entry
    /// gauges, and its extra counters as one labeled family.
    fn sample_metrics(&self, m: &EngineMetrics) {
        let ids = &m.ids;
        let rs = &self.stats;
        let ms = self.matcher.stats();
        let ws = self
            .dur
            .as_ref()
            .map(|d| *d.wal.stats())
            .unwrap_or_default();
        let mem = self.matcher.memory_report();
        let extra = self.matcher.metric_counters();
        let sup = self.sup.as_ref().map(|s| s.stats()).unwrap_or_default();
        let quarantined = self.cs.quarantined_rules().count() as u64;
        let cs_len = self.cs.len() as u64;
        let wm_len = self.wm.len() as u64;
        let imbalance = self.spans.shard_imbalance_permille().unwrap_or(0);
        let shards = self.shard_count as u64;
        let cycle = self.cycle;
        m.handle.with(|r| {
            r.set(ids.cycles, cycle);
            r.set(ids.firings, rs.firings);
            r.set(ids.actions, rs.actions);
            r.set(ids.makes, rs.makes);
            r.set(ids.removes, rs.removes);
            r.set(ids.modifies, rs.modifies);
            r.set(ids.writes, rs.writes);
            r.set(ids.skipped_actions, rs.skipped_actions);
            r.set(ids.rolled_back, rs.rolled_back);
            r.set(ids.wm_asserts, m.wm_asserts);
            r.set(ids.wm_retracts, m.wm_retracts);
            r.set(ids.alpha_activations, ms.alpha_activations);
            r.set(ids.beta_activations, ms.beta_activations);
            r.set(ids.join_tests, ms.join_tests);
            r.set(ids.tokens_created, ms.tokens_created);
            r.set(ids.tokens_deleted, ms.tokens_deleted);
            r.set(ids.snode_activations, ms.snode_activations);
            r.set(ids.aggregate_updates, ms.aggregate_updates);
            r.set(ids.index_probes, ms.index_probes);
            r.set(ids.index_skipped_tests, ms.index_skipped_tests);
            r.set(ids.wal_records, ws.records);
            r.set(ids.wal_bytes, ws.bytes);
            r.set(ids.wal_commits, ws.commits);
            r.set(ids.wal_fsyncs, ws.fsyncs);
            r.set(ids.wal_recovered_records, ws.recovered_records);
            r.set(ids.wal_discarded_records, ws.discarded_records);
            r.set(ids.wal_truncated_bytes, ws.truncated_bytes);
            r.set(ids.wal_writes, ws.writes);
            r.set(ids.sup_panics, sup.panics_caught);
            r.set(ids.sup_io_retries, sup.io_retries);
            r.set(ids.sup_quarantines, sup.quarantines);
            r.set(ids.sup_readmissions, sup.readmissions);
            r.set(ids.sup_soft_degrades, sup.soft_degrades);
            r.set(ids.sup_hard_degrades, sup.hard_degrades);
            r.set(ids.quarantined_rules, quarantined);
            r.set(ids.conflict_set_size, cs_len);
            r.set(ids.wm_size, wm_len);
            r.set(ids.shards, shards);
            r.set(ids.shard_imbalance, imbalance);
            for region in &mem.regions {
                let b = r.gauge_labeled(
                    "sorete_memory_bytes",
                    "Estimated live bytes per matcher store (live-set methodology)",
                    "region",
                    region.name,
                );
                r.set(b, region.bytes);
                let e = r.gauge_labeled(
                    "sorete_memory_entries",
                    "Live entries per matcher store",
                    "region",
                    region.name,
                );
                r.set(e, region.entries);
            }
            for &(kind, total) in &extra {
                let id = r.counter_labeled(
                    "sorete_matcher_events_total",
                    "Backend-specific match events (S-node token protocol, gamma churn)",
                    "kind",
                    kind,
                );
                r.set(id, total);
            }
        });
    }

    /// A rendered metrics table ([`None`] when metrics are disabled). Does
    /// not sample — call [`Self::record_metrics_snapshot`] first for fresh
    /// values.
    pub fn metrics_table(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .and_then(|m| m.handle.with(|r| r.render_table()))
    }

    /// The Prometheus text exposition of the registry ([`None`] when
    /// metrics are disabled). Does not sample.
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .and_then(|m| m.handle.with(|r| r.render_prometheus()))
    }

    /// Record an elapsed matcher-propagation interval.
    fn note_match_time(&self, start: Option<Instant>) {
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), start) {
            let ns = t.elapsed().as_nanos() as u64;
            let id = m.ids.match_nanos;
            m.handle.with(|r| r.observe(id, ns));
        }
    }

    fn rebuild_tracer(&mut self) {
        let mut sinks: Vec<SharedSink> = self.user_sinks.clone();
        if let Some(l) = &self.legacy {
            sinks.push(l.clone() as SharedSink);
        }
        if let Some(l) = &self.event_log {
            sinks.push(l.clone() as SharedSink);
        }
        self.tracer = Tracer::from_sinks(sinks).with_flight(self.flight.clone());
        self.matcher.set_tracer(self.tracer.clone());
    }

    /// Parse, analyse, and load a whole program (literalizes + rules).
    /// Must be called before any working-memory change.
    pub fn load_program(&mut self, src: &str) -> Result<(), CoreError> {
        let prog = parse_program(src)?;
        let analyzed = analyze_program(&prog)?;
        for l in &prog.literalizes {
            self.wm.declare_class(l.class, l.attrs.clone());
        }
        for ar in analyzed {
            let ar = Arc::new(ar);
            let id = self.matcher.add_rule(ar.clone());
            debug_assert_eq!(id.index(), self.rules.len());
            self.rule_ids.insert(ar.name, id);
            self.rules.push(ar);
        }
        // Rules added after WMEs derive instantiations immediately.
        self.sync();
        Ok(())
    }

    /// Excise a production by name: its instantiations leave the conflict
    /// set and it never matches again.
    pub fn excise(&mut self, name: &str) -> Result<(), CoreError> {
        let sym = Symbol::new(name);
        let id = self
            .rule_ids
            .remove(&sym)
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` to excise", name)))?;
        self.matcher.remove_rule(id);
        self.sync();
        Ok(())
    }

    /// Look up a loaded rule by name.
    pub fn rule(&self, name: &str) -> Option<&Arc<AnalyzedRule>> {
        let id = self.rule_ids.get(&Symbol::new(name))?;
        self.rules.get(id.index())
    }

    /// The matcher id of a loaded (non-excised) rule.
    pub(crate) fn rule_id(&self, name: &str) -> Option<RuleId> {
        self.rule_ids.get(&Symbol::new(name)).copied()
    }

    /// Assert a WME (string-keyed convenience).
    pub fn make_str(&mut self, class: &str, slots: &[(&str, Value)]) -> Result<TimeTag, CoreError> {
        self.assert_wme(
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        )
    }

    /// Assert a WME.
    pub fn assert_wme(
        &mut self,
        class: Symbol,
        slots: Vec<(Symbol, Value)>,
    ) -> Result<TimeTag, CoreError> {
        let pre_mark = self.wm.tag_mark();
        let wme = self.wm.make(class, slots)?;
        if let Some(dur) = &mut self.dur {
            dur.pending.push(WmeOp::Assert(wme.clone()));
        }
        let cycle = self.cycle;
        self.tracer.emit(|| TraceEvent::WmeAssert {
            cycle,
            tag: wme.tag,
            wme: render_wme(&wme),
        });
        if let Some(m) = &mut self.metrics {
            m.wm_asserts += 1;
        }
        let t = self.metrics.is_some().then(Instant::now);
        let sp = self.spans.begin_scope();
        self.matcher.insert_wme(&wme);
        self.sync();
        self.spans.end(sp, span_cat::MATCH, 0, Vec::new);
        self.note_match_time(t);
        if let Err(e) = self.wal_commit_if_api() {
            // The log refused the op: undo the assert (WME, match network,
            // tag allocator) so live state never runs ahead of durable
            // state — an unlogged WME would survive in memory but vanish
            // on recovery.
            let _ = self.wm.remove(wme.tag);
            self.matcher.remove_wme(&wme);
            self.sync();
            self.wm.reset_tag_mark(pre_mark);
            return Err(e);
        }
        Ok(wme.tag)
    }

    /// Retract a WME.
    pub fn retract_wme(&mut self, tag: TimeTag) -> Result<(), CoreError> {
        let wme = self.wm.remove(tag)?;
        if let Some(dur) = &mut self.dur {
            dur.pending.push(WmeOp::Retract(tag));
        }
        let cycle = self.cycle;
        self.tracer.emit(|| TraceEvent::WmeRetract { cycle, tag });
        if let Some(m) = &mut self.metrics {
            m.wm_retracts += 1;
        }
        let t = self.metrics.is_some().then(Instant::now);
        let sp = self.spans.begin_scope();
        self.matcher.remove_wme(&wme);
        self.sync();
        self.spans.end(sp, span_cat::MATCH, 0, Vec::new);
        self.note_match_time(t);
        if let Err(e) = self.wal_commit_if_api() {
            // Undo the retract: an unlogged removal would resurrect the
            // WME on recovery.
            self.wm.restore(wme.clone());
            self.matcher.insert_wme(&wme);
            self.sync();
            return Err(e);
        }
        Ok(())
    }

    /// Modify = retract + re-assert with a fresh time tag (OPS5 semantics).
    pub fn modify_wme(
        &mut self,
        tag: TimeTag,
        updates: &[(Symbol, Value)],
    ) -> Result<TimeTag, CoreError> {
        let old = self.wm.remove(tag)?;
        if let Some(dur) = &mut self.dur {
            dur.pending.push(WmeOp::Retract(tag));
        }
        let cycle = self.cycle;
        self.tracer.emit(|| TraceEvent::WmeRetract { cycle, tag });
        if let Some(m) = &mut self.metrics {
            m.wm_retracts += 1;
        }
        let t = self.metrics.is_some().then(Instant::now);
        let sp = self.spans.begin_scope();
        self.matcher.remove_wme(&old);
        self.sync();
        self.spans.end(sp, span_cat::MATCH, 0, Vec::new);
        self.note_match_time(t);
        let class = old.class;
        let mut slots: Vec<(Symbol, Value)> = old.slots().to_vec();
        for &(a, v) in updates {
            match slots.iter_mut().find(|(sa, _)| *sa == a) {
                Some((_, sv)) => *sv = v,
                None => slots.push((a, v)),
            }
        }
        let pre_mark = self.wm.tag_mark();
        let wme = match self.wm.make(class, slots) {
            Ok(wme) => wme,
            Err(e) => {
                // The retract half already ran. Inside a firing the undo
                // log restores it (the RHS records Restore(old) before
                // calling here); for an API-level modify put the old WME
                // back ourselves (and drop its buffered Retract op)
                // rather than leaving a half-applied modify behind.
                if self.firing_rule.is_none() {
                    if let Some(dur) = &mut self.dur {
                        dur.pending.pop();
                    }
                    self.matcher.insert_wme(&old);
                    self.wm.restore(old);
                    self.sync();
                }
                return Err(e.into());
            }
        };
        if let Some(dur) = &mut self.dur {
            dur.pending.push(WmeOp::Assert(wme.clone()));
        }
        self.tracer.emit(|| TraceEvent::WmeAssert {
            cycle,
            tag: wme.tag,
            wme: render_wme(&wme),
        });
        if let Some(m) = &mut self.metrics {
            m.wm_asserts += 1;
        }
        let t = self.metrics.is_some().then(Instant::now);
        let sp = self.spans.begin_scope();
        self.matcher.insert_wme(&wme);
        self.sync();
        self.spans.end(sp, span_cat::MATCH, 0, Vec::new);
        self.note_match_time(t);
        if let Err(e) = self.wal_commit_if_api() {
            // Undo both halves of the modify: remove the new incarnation,
            // restore the old one, and release the new tag.
            let _ = self.wm.remove(wme.tag);
            self.matcher.remove_wme(&wme);
            self.wm.restore(old.clone());
            self.matcher.insert_wme(&old);
            self.sync();
            self.wm.reset_tag_mark(pre_mark);
            return Err(e);
        }
        Ok(wme.tag)
    }

    // -----------------------------------------------------------------
    // Durability: write-ahead log + checkpoints.

    /// Attach a write-ahead log. If `path` already holds a log (a crashed
    /// run), its committed prefix is replayed into the engine first —
    /// WME ops re-applied tag-for-tag, cycle markers restoring the cycle
    /// counter, stats, refraction, and the halt flag — and any torn or
    /// uncommitted tail is truncated. From then on every committed WM
    /// change is logged: API-level changes under a transaction commit,
    /// firings as their op batch plus one cycle marker.
    ///
    /// Call after [`Self::load_program`] (and after [`Self::resume`] when
    /// recovering a checkpointed run, so the log's records land on top of
    /// the checkpoint state).
    pub fn attach_wal(
        &mut self,
        path: &Path,
        opts: WalOptions,
    ) -> Result<WalReplayReport, CoreError> {
        if self.dur.is_some() {
            return Err(CoreError::Durability("a WAL is already attached".into()));
        }
        let (mut wal, records) = Wal::open(path, opts)?;
        let mut report = WalReplayReport::default();
        let wal_gen = wal.generation();
        if wal_gen == self.ckpt_gen {
            let mut pending: Vec<WmeOp> = Vec::new();
            for rec in records {
                match rec {
                    WalRecord::Op(payload) => pending.push(decode_wme_op(&payload)?),
                    WalRecord::Commit => {
                        report.replayed_commits += 1;
                        for op in pending.drain(..) {
                            self.replay_op(op)?;
                            report.replayed_ops += 1;
                        }
                    }
                    WalRecord::Cycle(payload) => {
                        let marker = CycleMarker::decode(&payload)?;
                        // Refraction is re-armed *before* the cycle's ops, in
                        // the order the live run did it: `mark_fired` precedes
                        // the RHS, and an RHS that retracts the fired
                        // instantiation's own WMEs must clear it again.
                        if let Some(&id) = self.rule_ids.get(&marker.rule) {
                            self.cs.mark_fired(&marker.key.into_key(id), marker.version);
                        }
                        for op in pending.drain(..) {
                            self.replay_op(op)?;
                            report.replayed_ops += 1;
                        }
                        self.cycle = marker.cycle;
                        self.halted = marker.halted;
                        let pr = self.stats.per_rule.entry(marker.rule).or_default();
                        pr.firings = marker.rule_firings;
                        pr.actions = marker.rule_actions;
                        let per_rule = std::mem::take(&mut self.stats.per_rule);
                        self.stats = RunStats {
                            per_rule,
                            ..marker.totals
                        };
                        report.replayed_cycles += 1;
                    }
                }
            }
            // `Wal::open` only returns the committed prefix.
            debug_assert!(pending.is_empty(), "uncommitted records survived recovery");
        } else if wal_gen + 1 == self.ckpt_gen || (wal_gen == 0 && records.is_empty()) {
            // Either the crash hit between checkpoint rename and log
            // rotation — the resumed checkpoint already contains every
            // logged record, so replaying them would double-apply — or a
            // brand-new empty log is being attached to a resumed
            // checkpoint. Both finish by rotating the log to the
            // checkpoint's generation.
            report.stale_records = records.len() as u64;
            wal.rotate(self.ckpt_gen)?;
        } else {
            return Err(CoreError::Durability(format!(
                "WAL generation {} does not pair with checkpoint generation {} \
                 (resume from the matching checkpoint before attaching this log)",
                wal_gen, self.ckpt_gen
            )));
        }
        let stats = *wal.stats();
        report.discarded_records = stats.discarded_records;
        report.truncated_bytes = stats.truncated_bytes;
        if self.spans.enabled() {
            wal.set_spans(self.spans.clone());
        }
        self.dur = Some(Box::new(EngineWal {
            wal,
            pending: Vec::new(),
        }));
        Ok(report)
    }

    /// Is a write-ahead log attached?
    pub fn wal_attached(&self) -> bool {
        self.dur.is_some()
    }

    /// The attached WAL's counters ([`None`] when detached).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.dur.as_ref().map(|d| *d.wal.stats())
    }

    /// Inject a storage fault into the attached WAL (see
    /// [`sorete_reldb::IoFaultPlan`]). Returns `false` when no WAL is
    /// attached.
    pub fn inject_wal_fault(&mut self, plan: IoFaultPlan) -> bool {
        match &mut self.dur {
            Some(d) => {
                d.wal.inject_fault(plan);
                true
            }
            None => false,
        }
    }

    /// Fsync the attached WAL (a no-op when detached). Useful before
    /// handing the file to another process.
    pub fn sync_wal(&mut self) -> Result<(), CoreError> {
        if let Some(d) = &mut self.dur {
            d.wal.sync()?;
        }
        Ok(())
    }

    /// Re-apply one recovered WME op. Bypasses the logging hooks (recovery
    /// must not re-log what it reads) and the trace stream (a recovered
    /// run's trace starts at recovery).
    fn replay_op(&mut self, op: WmeOp) -> Result<(), CoreError> {
        match op {
            WmeOp::Assert(wme) => {
                self.wm.replay(wme.clone())?;
                if let Some(m) = &mut self.metrics {
                    m.wm_asserts += 1;
                }
                self.matcher.insert_wme(&wme);
                self.sync();
            }
            WmeOp::Retract(tag) => {
                let wme = self.wm.remove(tag)?;
                if let Some(m) = &mut self.metrics {
                    m.wm_retracts += 1;
                }
                self.matcher.remove_wme(&wme);
                self.sync();
            }
            WmeOp::Update(tag, _) => {
                return Err(CoreError::Durability(format!(
                    "unexpected update record for t{} (engine WALs log retract + assert)",
                    tag.raw()
                )));
            }
        }
        Ok(())
    }

    /// Flush the pending op buffer under a transaction commit marker —
    /// API-level WM changes, which commit individually. No-op inside a
    /// firing (the ops ride to [`Self::step`]'s cycle marker) or when no
    /// WAL is attached.
    fn wal_commit_if_api(&mut self) -> Result<(), CoreError> {
        if self.firing_rule.is_some() {
            return Ok(());
        }
        if self.dur.as_ref().is_none_or(|d| d.pending.is_empty()) {
            return Ok(());
        }
        self.wal_flush_pending(None)
    }

    /// Commit a successful firing to the log: its op batch followed by a
    /// cycle marker carrying the bookkeeping recovery needs. The marker
    /// doubles as the commit point (group commit applies).
    fn wal_commit_cycle(
        &mut self,
        rule: Symbol,
        cycle: u64,
        key: &InstKey,
        version: u64,
    ) -> Result<(), CoreError> {
        if self.dur.is_none() {
            return Ok(());
        }
        let pr = self.stats.per_rule.get(&rule).copied().unwrap_or_default();
        let marker = CycleMarker {
            cycle,
            halted: self.halted,
            totals: RunStats {
                per_rule: Default::default(),
                ..self.stats.clone()
            },
            rule,
            rule_firings: pr.firings,
            rule_actions: pr.actions,
            version,
            key: KeySpec::of(key),
        };
        self.wal_flush_pending(Some(marker.encode()))
    }

    /// Append the pending op buffer plus its commit point (a transaction
    /// commit, or the given cycle marker) to the log. The buffer is only
    /// drained on success or on *final* failure: a clean append failure
    /// leaves the log truncated at its last commit point, so when a
    /// supervisor retry policy is installed the whole batch is retried
    /// with backoff. A poisoned log (real I/O failure of unknown extent)
    /// is never retried — only reopen-with-recovery re-establishes its
    /// state.
    fn wal_flush_pending(&mut self, marker: Option<Vec<u8>>) -> Result<(), CoreError> {
        let retry = self.sup.as_ref().map(|s| s.config().retry);
        let tracer = self.tracer.clone();
        let Some(dur) = self.dur.as_mut() else {
            return Ok(());
        };
        let encoded: Vec<Vec<u8>> = dur.pending.iter().map(encode_wme_op).collect();
        let mut attempt: u32 = 0;
        loop {
            let res = (|| -> Result<(), sorete_reldb::DbError> {
                for op in &encoded {
                    dur.wal.append_op(op)?;
                }
                match &marker {
                    Some(payload) => dur.wal.append_cycle(payload)?,
                    None => dur.wal.append_commit()?,
                }
                Ok(())
            })();
            match res {
                Ok(()) => {
                    dur.pending.clear();
                    return Ok(());
                }
                Err(e) => {
                    let retryable = !dur.wal.is_poisoned();
                    if let Some(rp) = retry {
                        if retryable && attempt < rp.max_attempts {
                            attempt += 1;
                            let delay = rp.delay_micros(attempt);
                            let error = e.to_string();
                            tracer.emit(|| TraceEvent::IoRetry {
                                attempt,
                                delay_micros: delay,
                                error: error.clone(),
                            });
                            if let Some(sup) = self.sup.as_mut() {
                                sup.stats.io_retries += 1;
                            }
                            std::thread::sleep(Duration::from_micros(delay));
                            continue;
                        }
                    }
                    dur.pending.clear();
                    return Err(e.into());
                }
            }
        }
    }

    /// Snapshot the engine's recoverable state at the current cycle
    /// boundary: surviving WMEs (tag order), the tag allocator, the cycle
    /// counter, run statistics, the halt flag, and the refraction memory
    /// as matcher-independent keys. Must not be called mid-firing.
    pub fn checkpoint(&self) -> Checkpoint {
        debug_assert!(self.firing_rule.is_none(), "checkpoint mid-firing");
        let mut fired: Vec<(Symbol, String, KeySpec)> = self
            .cs
            .refracted_keys()
            .into_iter()
            .map(|k| (self.rules[k.rule().index()].name, k.repr(), KeySpec::of(k)))
            .collect();
        fired.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()).then_with(|| a.1.cmp(&b.1)));
        Checkpoint {
            matcher: self.matcher.algorithm_name().to_string(),
            generation: self.ckpt_gen,
            cycle: self.cycle,
            tag_mark: self.wm.tag_mark(),
            halted: self.halted,
            totals: RunStats {
                per_rule: Default::default(),
                ..self.stats.clone()
            },
            rules: self.stats.per_rule_sorted(),
            wmes: self.wm.dump().into_iter().cloned().collect(),
            fired: fired.into_iter().map(|(n, _, s)| (n, s)).collect(),
        }
    }

    /// The checkpoint rendered to its text format.
    pub fn checkpoint_string(&self) -> String {
        self.checkpoint().render()
    }

    /// Write a checkpoint file crash-atomically (temp file + fsync +
    /// rename + directory fsync), then rotate the attached WAL (if any):
    /// the checkpoint becomes the new recovery base and the log restarts
    /// empty. With a WAL attached the checkpoint is stamped one
    /// generation ahead of the pre-rotation log, so a crash *between*
    /// the two steps is recognised at [`Self::attach_wal`]: the stale
    /// log's records — already folded into the checkpoint — are
    /// discarded instead of double-applied, and the interrupted rotation
    /// is finished.
    pub fn checkpoint_to(&mut self, path: &Path) -> Result<(), CoreError> {
        let mut ck = self.checkpoint();
        if self.dur.is_some() {
            ck.generation = self.ckpt_gen + 1;
        }
        let rendered = ck.render();
        let retry = self.sup.as_ref().map(|s| s.config().retry);
        let mut attempt: u32 = 0;
        loop {
            match sorete_reldb::persist::atomic_write(path, rendered.as_bytes()) {
                Ok(()) => break,
                Err(e) => {
                    // Checkpoint writes go through a temp file + rename, so
                    // a failed attempt leaves no partial state behind and is
                    // always safe to retry under the supervisor's policy.
                    if let Some(rp) = retry {
                        if attempt < rp.max_attempts {
                            attempt += 1;
                            let delay = rp.delay_micros(attempt);
                            let error = e.to_string();
                            self.tracer.emit(|| TraceEvent::IoRetry {
                                attempt,
                                delay_micros: delay,
                                error: error.clone(),
                            });
                            if let Some(sup) = self.sup.as_mut() {
                                sup.stats.io_retries += 1;
                            }
                            std::thread::sleep(Duration::from_micros(delay));
                            continue;
                        }
                    }
                    return Err(CoreError::Durability(format!(
                        "write checkpoint {}: {}",
                        path.display(),
                        e
                    )));
                }
            }
        }
        if let Some(dur) = &mut self.dur {
            dur.wal.rotate(ck.generation)?;
        }
        self.ckpt_gen = ck.generation;
        Ok(())
    }

    /// Restore a checkpoint into a *fresh* engine (program loaded, working
    /// memory empty, cycle 0). The match network — whichever algorithm
    /// backs this engine, not necessarily the one that wrote the
    /// checkpoint — is rebuilt by replaying the WMEs, and refraction is
    /// re-armed at each rebuilt entry's current version, so the conflict
    /// set offers exactly the instantiations the checkpointed run had
    /// left.
    pub fn resume(&mut self, ck: Checkpoint) -> Result<ResumeReport, CoreError> {
        if !self.wm.is_empty() || self.cycle != 0 {
            return Err(CoreError::Durability(
                "resume requires a fresh engine (empty working memory, cycle 0)".into(),
            ));
        }
        if self.dur.is_some() {
            return Err(CoreError::Durability(
                "resume before attaching a WAL, so the log replays on top of the checkpoint".into(),
            ));
        }
        for w in &ck.wmes {
            self.wm.replay(w.clone())?;
        }
        self.wm.raise_tag_mark(ck.tag_mark);
        self.matcher.rebuild_from(&ck.wmes);
        self.sync();
        let mut refracted = 0;
        for (rule, spec) in &ck.fired {
            let Some(&id) = self.rule_ids.get(rule) else {
                continue;
            };
            let key = spec.into_key(id);
            // The rebuilt network renumbers SOI versions (only surviving
            // WMEs replay), so refraction is pinned to the *rebuilt*
            // entry's version, not the version the original run saw.
            if let Some(version) = self.cs.version_of(&key) {
                self.cs.mark_fired(&key, version);
                refracted += 1;
            }
        }
        self.cycle = ck.cycle;
        self.halted = ck.halted;
        self.ckpt_gen = ck.generation;
        let mut per_rule = FxHashMap::default();
        for (name, rs) in &ck.rules {
            per_rule.insert(*name, *rs);
        }
        self.stats = RunStats {
            per_rule,
            ..ck.totals.clone()
        };
        Ok(ResumeReport {
            wmes: ck.wmes.len(),
            refracted,
            cycle: ck.cycle,
            matcher_was: ck.matcher.clone(),
        })
    }

    /// [`Self::resume`] from checkpoint text.
    pub fn resume_from_str(&mut self, text: &str) -> Result<ResumeReport, CoreError> {
        self.resume(Checkpoint::parse(text)?)
    }

    /// [`Self::resume`] from a checkpoint file.
    pub fn resume_from_file(&mut self, path: &Path) -> Result<ResumeReport, CoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            CoreError::Durability(format!("read checkpoint {}: {}", path.display(), e))
        })?;
        self.resume_from_str(&text)
    }

    fn sync(&mut self) {
        for d in self.matcher.drain_deltas() {
            if self.tracer.enabled() {
                self.emit_cs_event(&d);
            }
            self.cs.apply(d);
        }
    }

    /// Translate one conflict-set delta into its logical trace event
    /// (resolving the rule id to a name).
    fn emit_cs_event(&self, d: &CsDelta) {
        match d {
            CsDelta::Insert(item) => {
                let rule = self.rules[item.key.rule().index()].name;
                let soi = matches!(item.key, InstKey::Soi { .. });
                self.tracer.emit(|| TraceEvent::CsInsert {
                    rule,
                    key: item.key.repr(),
                    soi,
                    rows: item
                        .rows
                        .iter()
                        .map(|r| r.iter().map(|t| t.raw()).collect())
                        .collect(),
                    aggregates: item.aggregates.iter().map(|v| v.to_string()).collect(),
                });
            }
            CsDelta::Remove(key) => {
                let rule = self.rules[key.rule().index()].name;
                let soi = matches!(key, InstKey::Soi { .. });
                self.tracer.emit(|| TraceEvent::CsRemove {
                    rule,
                    key: key.repr(),
                    soi,
                });
            }
            CsDelta::Retime(info) => {
                let rule = self.rules[info.key.rule().index()].name;
                self.tracer.emit(|| TraceEvent::CsRetime {
                    rule,
                    key: info.key.repr(),
                    version: info.version,
                });
            }
        }
    }

    /// One recognise–act cycle. Returns the fired rule's name, or `None` at
    /// quiescence / after halt.
    pub fn step(&mut self) -> Result<Option<Symbol>, CoreError> {
        if self.halted {
            return Ok(None);
        }
        self.sync();
        let t_cycle = (self.metrics.is_some() || self.flight.enabled()).then(Instant::now);
        // The cycle span opens before selection so resolve nests under it;
        // a quiescent step cancels both without recording anything.
        let sp_cycle = self.spans.begin_scope();
        let sp_resolve = self.spans.begin_scope();
        let Some((selected, stale)) = self.cs.select(self.strategy) else {
            self.spans.cancel(sp_resolve);
            self.spans.cancel(sp_cycle);
            return Ok(None);
        };
        let mut item = selected.clone();
        if stale {
            // A slim `time` token updated this SOI; fetch its real rows.
            match self.matcher.materialize(&item.key) {
                Some(fresh) => {
                    item = fresh;
                    self.cs.refresh(item.clone());
                }
                None => {
                    // Unreachable after sync (a dead SOI gets a Remove
                    // delta first), but recover by dropping the entry.
                    debug_assert!(false, "stale entry vanished without a Remove delta");
                    let key = item.key.clone();
                    self.cs.apply(sorete_base::CsDelta::Remove(key));
                    self.spans.cancel(sp_resolve);
                    self.spans.cancel(sp_cycle);
                    return self.step();
                }
            }
        }
        let rule = self.rules[item.key.rule().index()].clone();
        self.spans.end(sp_resolve, span_cat::RESOLVE, 0, Vec::new);
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), t_cycle) {
            let ns = t.elapsed().as_nanos() as u64;
            let id = m.ids.resolve_nanos;
            m.handle.with(|r| r.observe(id, ns));
        }
        self.cycle += 1;
        let cycle = self.cycle;
        self.tracer.emit(|| TraceEvent::CycleBegin { cycle });
        // Open the firing transaction: capture everything rollback needs
        // *before* the first externally visible effect (mark_fired).
        let can_rollback = self.recovery != RecoveryPolicy::AbortRun;
        let tag_mark = self.wm.tag_mark();
        let output_mark = self.output.len();
        let halted_before = self.halted;
        if can_rollback {
            debug_assert!(self.undo.is_empty());
            self.cs.begin_journal();
        }
        self.cs.mark_fired(&item.key, item.version);
        self.stats.firings += 1;
        self.stats.per_rule.entry(rule.name).or_default().firings += 1;
        self.tracer.emit(|| TraceEvent::Fire {
            cycle,
            rule: rule.name,
            rows: item
                .rows
                .iter()
                .map(|r| r.iter().map(|t| t.raw()).collect())
                .collect(),
        });

        // Snapshot the instantiation's WMEs (bindings are fixed at firing).
        let mut wmes: FxHashMap<TimeTag, Wme> = FxHashMap::default();
        for row in &item.rows {
            for &t in row.iter() {
                if let Some(w) = self.wm.get(t) {
                    wmes.entry(t).or_insert_with(|| w.clone());
                }
            }
        }
        let mut ctx = RhsCtx::new(
            rule.clone(),
            item.rows.clone(),
            wmes,
            item.aggregates.clone(),
        );
        self.firing_rule = Some(rule.name);
        self.recording = can_rollback;
        let t_rhs = self.metrics.is_some().then(Instant::now);
        // Panic fence: a panic unwinding out of the RHS, the matcher
        // propagation it triggers, or the commit path is caught here and
        // handled by the same recovery path as any other firing error.
        // The fence is unconditional — supervision only changes what the
        // caller does with the resulting `CoreError::Panic`.
        let exec = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let sp_rhs = self.spans.begin_scope();
            let r = match self.fault.take() {
                Some(mut plan) => {
                    let r = {
                        let mut host = FaultInjector::new(self, &mut plan);
                        rhs::execute(&mut host, &mut ctx, &rule.rhs)
                    };
                    self.fault = Some(plan);
                    r
                }
                None => rhs::execute(self, &mut ctx, &rule.rhs),
            };
            if let (Some(m), Some(t)) = (self.metrics.as_ref(), t_rhs) {
                let ns = t.elapsed().as_nanos() as u64;
                let id = m.ids.rhs_nanos;
                m.handle.with(|reg| reg.observe(id, ns));
            }
            self.spans.end(sp_rhs, span_cat::RHS, 0, Vec::new);
            // A successful RHS still has to reach the log before the firing
            // commits: a WAL failure here rolls the firing back exactly like
            // an RHS error, so in-memory state never runs ahead of durable
            // state.
            r.and_then(|()| {
                self.sync();
                let sp_wal = self.spans.begin_scope();
                let r = self.wal_commit_cycle(rule.name, cycle, &item.key, item.version);
                self.spans.end(sp_wal, span_cat::WAL_COMMIT, 0, Vec::new);
                r
            })
        }));
        self.recording = false;
        self.firing_rule = None;
        let result = match exec {
            Ok(r) => r,
            Err(payload) => {
                let message = panic_message(payload);
                if let Some(sup) = self.sup.as_mut() {
                    sup.stats.panics_caught += 1;
                }
                let rule_name = rule.name;
                let msg = message.clone();
                self.tracer.emit(|| TraceEvent::PanicCaught {
                    rule: rule_name,
                    message: msg.clone(),
                });
                // Push buffered telemetry to disk while still inside the
                // fence: if the caller re-raises or the process dies, the
                // trace/metrics tail (including PanicCaught itself) must
                // already be durable.
                self.flush_trace();
                Err(CoreError::Panic(message))
            }
        };
        match result {
            Ok(()) => {
                if can_rollback {
                    self.undo.clear();
                    self.cs.end_journal();
                }
                self.sync();
                self.tracer.emit(|| TraceEvent::CycleEnd {
                    cycle,
                    rule: rule.name,
                    ok: true,
                });
                // Ending the scoped cycle span also repairs the scope
                // stack if a panic abandoned rhs/wal_commit tickets.
                self.spans
                    .end(sp_cycle, span_cat::CYCLE, 0, || vec![("cycle", cycle)]);
                self.finish_cycle_metrics(t_cycle);
                self.record_flight_cycle(cycle, rule.name, true, t_cycle);
                Ok(Some(rule.name))
            }
            Err(e) => {
                self.last_failed = Some(rule.name);
                // The firing aborts: its buffered WAL ops must never be
                // committed (under AbortRun its in-memory effects remain,
                // but recovery rewinds to the last committed cycle).
                if let Some(dur) = &mut self.dur {
                    dur.pending.clear();
                }
                if can_rollback {
                    self.rollback_firing(rule.name, &e, tag_mark, output_mark, halted_before);
                    if self.recovery == RecoveryPolicy::SkipFiring {
                        // The failed instantiation stays refracted so the
                        // run can make progress past it.
                        self.cs.mark_fired(&item.key, item.version);
                    }
                }
                self.tracer.emit(|| TraceEvent::CycleEnd {
                    cycle,
                    rule: rule.name,
                    ok: false,
                });
                self.spans
                    .end(sp_cycle, span_cat::CYCLE, 0, || vec![("cycle", cycle)]);
                self.finish_cycle_metrics(t_cycle);
                self.record_flight_cycle(cycle, rule.name, false, t_cycle);
                Err(e)
            }
        }
    }

    /// Append this cycle's summary row to the flight ring (no-op when the
    /// recorder is off). Runs on success *and* failure so the black box
    /// always holds the cycles leading up to a crash.
    fn record_flight_cycle(&self, cycle: u64, rule: Symbol, ok: bool, t_cycle: Option<Instant>) {
        if !self.flight.enabled() {
            return;
        }
        let firings = self
            .stats
            .per_rule
            .get(&rule)
            .map(|r| r.firings)
            .unwrap_or(0);
        self.flight.record_cycle(&CycleRecord {
            cycle,
            rule,
            ok,
            firings,
            wm_len: self.wm.len() as u64,
            cs_len: self.cs.len() as u64,
            nanos: t_cycle.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
        });
    }

    /// End-of-cycle telemetry: observe the whole-cycle histogram, then
    /// sample and snapshot. Runs on success *and* failure, so rolled-back
    /// cycles still appear in the time series.
    fn finish_cycle_metrics(&self, t_cycle: Option<Instant>) {
        let Some(m) = self.metrics.as_ref() else {
            return;
        };
        if let Some(t) = t_cycle {
            let ns = t.elapsed().as_nanos() as u64;
            let id = m.ids.fire_nanos;
            m.handle.with(|r| r.observe(id, ns));
        }
        self.record_metrics_snapshot();
    }

    /// Undo a failed firing: replay the undo log in reverse through
    /// working memory *and* the matcher, then restore refraction, output,
    /// the halt flag, and the time-tag allocator. Afterwards the engine is
    /// observationally identical to its pre-firing state.
    fn rollback_firing(
        &mut self,
        rule: Symbol,
        error: &CoreError,
        tag_mark: u64,
        output_mark: usize,
        halted_before: bool,
    ) {
        self.sync();
        let journal = self.cs.take_journal();
        let ops = std::mem::take(&mut self.undo);
        for op in ops.into_iter().rev() {
            match op {
                UndoOp::Retract(tag) => {
                    let wme = self.wm.remove(tag).expect("undo retract of a dead tag");
                    self.matcher.remove_wme(&wme);
                }
                UndoOp::Restore(wme) => {
                    self.wm.restore(wme.clone());
                    self.matcher.insert_wme(&wme);
                }
            }
            self.sync();
        }
        self.wm.reset_tag_mark(tag_mark);
        self.cs.restore_fired(journal);
        self.output.truncate(output_mark);
        self.halted = halted_before;
        self.stats.rolled_back += 1;
        self.tracer.emit(|| TraceEvent::Rollback {
            rule,
            error: error.to_string(),
        });
    }

    /// Run to quiescence, halt, the firing limit, a [`RunGuards`] limit,
    /// or an error the [`RecoveryPolicy`] does not continue past.
    pub fn run(&mut self, limit: Option<u64>) -> RunOutcome {
        let sp_run = self.spans.begin_scope();
        let outcome = self.run_inner(limit);
        let fired = outcome.fired;
        self.spans
            .end(sp_run, span_cat::RUN, 0, || vec![("fired", fired)]);
        if outcome.reason.is_abnormal() {
            // Black-box drain: flush live telemetry, then persist the
            // flight rings as a crash bundle for offline post-mortem.
            self.flush_trace();
            if self.flight.enabled() {
                let dir = self.crash_dir();
                match crate::bundle::write(self, outcome.reason.label(), Some(&outcome), &dir) {
                    Ok(path) => {
                        self.last_bundle = Some(path);
                        crate::bundle::prune(&dir, self.crash_keep);
                    }
                    Err(e) => eprintln!("sorete: failed to write crash bundle: {}", e),
                }
            }
        }
        outcome
    }

    /// Write a bundle of the flight recorder's current contents on demand
    /// (the REPL's `dump bundle`), into `dir` or the default crash
    /// directory. Errors when the recorder is off.
    pub fn dump_bundle(&mut self, dir: Option<&Path>) -> Result<PathBuf, CoreError> {
        if !self.flight.enabled() {
            return Err(CoreError::Rhs(
                "flight recorder is off (--flight-recorder 0)".into(),
            ));
        }
        let dir = dir
            .map(Path::to_path_buf)
            .unwrap_or_else(|| self.crash_dir());
        self.flush_trace();
        let path = crate::bundle::write(self, "manual", None, &dir)
            .map_err(|e| CoreError::Durability(format!("write bundle: {}", e)))?;
        self.last_bundle = Some(path.clone());
        crate::bundle::prune(&dir, self.crash_keep);
        Ok(path)
    }

    fn run_inner(&mut self, limit: Option<u64>) -> RunOutcome {
        let start = Instant::now();
        let mut fired = 0;
        let mut stagnant: u64 = 0;
        let mut last_rule: Option<Symbol> = None;
        let mut last_wm_len = self.wm.len();
        // Soft degradation budgets re-arm per run.
        if let Some(sup) = self.sup.as_mut() {
            sup.soft_tripped = false;
        }
        loop {
            if let Some(l) = limit {
                if fired >= l {
                    return RunOutcome {
                        fired,
                        reason: StopReason::Limit,
                    };
                }
            }
            if self.interrupt_requested() {
                // Operator-requested stop: cut an orderly checkpoint when
                // supervision has one configured, then end normally.
                self.orderly_halt_checkpoint();
                return RunOutcome {
                    fired,
                    reason: StopReason::Interrupted,
                };
            }
            if let Some(v) = self.check_guards(start) {
                self.tracer.emit(|| TraceEvent::GuardTrip {
                    reason: v.to_string(),
                });
                // Under supervision a hard limit halts in order: cut a
                // checkpoint first so `--resume` can continue the run.
                self.orderly_halt_checkpoint();
                return RunOutcome {
                    fired,
                    reason: StopReason::ResourceExhausted(v),
                };
            }
            if self.sup.is_some() {
                if let Some(outcome) = self.supervise_budgets(start, fired) {
                    return outcome;
                }
            }
            match self.step() {
                Ok(Some(rule)) => {
                    fired += 1;
                    let wm_len = self.wm.len();
                    if wm_len == last_wm_len && last_rule == Some(rule) {
                        stagnant += 1;
                        if let Some(max) = self.guards.max_stagnant_firings {
                            if stagnant >= max {
                                let v = GuardViolation::Stagnation {
                                    rule,
                                    firings: stagnant,
                                };
                                self.tracer.emit(|| TraceEvent::GuardTrip {
                                    reason: v.to_string(),
                                });
                                self.orderly_halt_checkpoint();
                                return RunOutcome {
                                    fired,
                                    reason: StopReason::ResourceExhausted(v),
                                };
                            }
                        }
                    } else {
                        stagnant = 0;
                    }
                    last_wm_len = wm_len;
                    last_rule = Some(rule);
                }
                Ok(None) => {
                    let reason = if self.halted {
                        StopReason::Halt
                    } else if self.cs.quarantined_fireable() > 0 {
                        // Not true quiescence: fireable work remains, every
                        // bit of it behind quarantined rules.
                        StopReason::Quarantined {
                            rules: self.quarantined_rules(),
                        }
                    } else {
                        StopReason::Quiescence
                    };
                    return RunOutcome { fired, reason };
                }
                Err(e) => {
                    // Rule-scoped failures (RHS errors, injected faults,
                    // caught panics) feed the supervisor's circuit
                    // breakers: step() rolled the firing back, the breaker
                    // counts it, and a rule that keeps failing is
                    // quarantined so the rest of the run can proceed.
                    // Durability errors are engine-scoped and never
                    // continue. AbortRun cannot roll back, so supervision
                    // cannot safely continue past failures under it.
                    let rule_scoped = !matches!(e, CoreError::Durability(_));
                    if let Some(sup) = self
                        .sup
                        .as_mut()
                        .filter(|_| rule_scoped && self.recovery != RecoveryPolicy::AbortRun)
                    {
                        if let Some(rule) = self.last_failed {
                            let tripped = sup.record_failure(rule, self.cycle);
                            if let Some(failures) = tripped {
                                if let Some(&id) = self.rule_ids.get(&rule) {
                                    self.cs.set_rule_quarantined(id, true);
                                }
                                self.tracer
                                    .emit(|| TraceEvent::Quarantine { rule, failures });
                            }
                        }
                        continue;
                    }
                    // Under SkipFiring, step() already rolled the firing
                    // back and refracted it; keep going.
                    if self.recovery == RecoveryPolicy::SkipFiring {
                        continue;
                    }
                    let reason = match e {
                        CoreError::Panic(message) => StopReason::Panicked {
                            rule: self.last_failed.unwrap_or_else(|| Symbol::new("?")),
                            message,
                        },
                        other => StopReason::Error(other),
                    };
                    return RunOutcome { fired, reason };
                }
            }
        }
    }

    /// Check the supervisor's degradation budgets. A soft trip (once per
    /// run) cuts an automatic checkpoint and warns; a hard trip checkpoints
    /// and ends the run with `ResourceExhausted` — an orderly, resumable
    /// halt, never an abort.
    fn supervise_budgets(&mut self, start: Instant, fired: u64) -> Option<RunOutcome> {
        let (deg, soft_done) = {
            let s = self.sup.as_ref().expect("caller checked");
            (s.config().degradation, s.soft_tripped)
        };
        let bytes = (deg.hard_bytes.is_some() || (deg.soft_bytes.is_some() && !soft_done))
            .then(|| self.matcher.memory_report().total_bytes());
        if let (Some(limit), Some(actual)) = (deg.hard_bytes, bytes) {
            if actual > limit {
                let sup = self.sup.as_mut().expect("caller checked");
                sup.stats.hard_degrades += 1;
                let detail = format!(
                    "{} live bytes > hard budget {}; halting with checkpoint",
                    actual, limit
                );
                self.tracer.emit(|| TraceEvent::Degrade {
                    severity: "hard",
                    budget: "memory_bytes",
                    detail: detail.clone(),
                });
                let v = GuardViolation::MemoryBytes { limit, actual };
                self.tracer.emit(|| TraceEvent::GuardTrip {
                    reason: v.to_string(),
                });
                self.orderly_halt_checkpoint();
                return Some(RunOutcome {
                    fired,
                    reason: StopReason::ResourceExhausted(v),
                });
            }
        }
        if !soft_done {
            let mut trip: Option<(&'static str, String)> = None;
            if let (Some(limit), Some(actual)) = (deg.soft_bytes, bytes) {
                if actual > limit {
                    trip = Some((
                        "memory_bytes",
                        format!("{} live bytes > soft budget {}", actual, limit),
                    ));
                }
            }
            if trip.is_none() {
                if let Some(limit) = deg.soft_wall {
                    let elapsed = start.elapsed();
                    if elapsed > limit {
                        trip = Some((
                            "wall_clock",
                            format!("{:?} elapsed > soft budget {:?}", elapsed, limit),
                        ));
                    }
                }
            }
            if let Some((budget, detail)) = trip {
                let sup = self.sup.as_mut().expect("caller checked");
                sup.soft_tripped = true;
                sup.stats.soft_degrades += 1;
                self.tracer.emit(|| TraceEvent::Degrade {
                    severity: "soft",
                    budget,
                    detail: detail.clone(),
                });
                self.orderly_halt_checkpoint();
            }
        }
        None
    }

    /// Cut a checkpoint at the supervisor's configured path (if any),
    /// best-effort: degradation must never turn into an abort because the
    /// checkpoint disk is also unhappy.
    fn orderly_halt_checkpoint(&mut self) {
        let Some(path) = self
            .sup
            .as_ref()
            .and_then(|s| s.config().checkpoint_path.clone())
        else {
            return;
        };
        if let Err(e) = self.checkpoint_to(&path) {
            let detail = format!("degradation checkpoint failed: {}", e);
            self.tracer.emit(|| TraceEvent::Degrade {
                severity: "hard",
                budget: "checkpoint",
                detail: detail.clone(),
            });
        }
    }

    fn check_guards(&self, start: Instant) -> Option<GuardViolation> {
        if let Some(limit) = self.guards.max_wall {
            if start.elapsed() > limit {
                return Some(GuardViolation::WallClock { limit });
            }
        }
        if let Some(limit) = self.guards.max_wm {
            let actual = self.wm.len();
            if actual > limit {
                return Some(GuardViolation::WmSize { limit, actual });
            }
        }
        None
    }

    /// Current conflict-set size (fired entries included).
    pub fn conflict_set_len(&self) -> usize {
        self.cs.len()
    }

    /// Conflict-set entries (unordered), for inspection. SOI entries are
    /// materialized so their rows reflect the γ-memory's current state
    /// (slim `time` tokens only update position metadata).
    pub fn conflict_items(&self) -> Vec<ConflictItem> {
        self.cs
            .items()
            .map(|item| {
                self.matcher
                    .materialize(&item.key)
                    .unwrap_or_else(|| item.clone())
            })
            .collect()
    }

    /// Working memory (read access).
    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Accumulated `write` output (drained).
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Firing trace (drained). Rendered from the event stream collected
    /// since [`Self::set_tracing`] was enabled, in the legacy string
    /// format (`FIRE …`, `SKIP …`, `ROLLBACK …`).
    pub fn take_trace(&mut self) -> Vec<String> {
        let Some(legacy) = &self.legacy else {
            return Vec::new();
        };
        let events = legacy.lock().unwrap().take();
        events.iter().filter_map(legacy_trace_line).collect()
    }

    /// Engine counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Recognise–act cycles completed so far (rule firings committed).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Matcher counters.
    pub fn match_stats(&self) -> sorete_base::MatchStats {
        self.matcher.stats()
    }

    /// Point-in-time matcher memory accounting (live-set methodology —
    /// see [`sorete_base::MemoryReport`]). Works with metrics disabled;
    /// when enabled, the same report feeds the `sorete_memory_bytes` /
    /// `sorete_memory_entries` gauges each cycle.
    pub fn memory_report(&self) -> sorete_base::MemoryReport {
        self.matcher.memory_report()
    }

    /// The matcher backing this engine.
    pub fn matcher_name(&self) -> &'static str {
        self.matcher.algorithm_name()
    }

    /// Every loaded (non-excised) rule, sorted by name — the static rule
    /// context crash bundles carry for offline `explain`/`why-not`.
    pub fn loaded_rules(&self) -> Vec<Arc<AnalyzedRule>> {
        let mut v: Vec<Arc<AnalyzedRule>> = self
            .rule_ids
            .values()
            .map(|id| self.rules[id.index()].clone())
            .collect();
        v.sort_by(|a, b| a.name.as_str().cmp(b.name.as_str()));
        v
    }

    /// Name of the rule behind a matcher rule id (stable across excise).
    pub fn rule_name(&self, id: RuleId) -> Symbol {
        self.rules[id.index()].name
    }

    /// Checkpoint generation this engine's state descends from.
    pub fn checkpoint_generation(&self) -> u64 {
        self.ckpt_gen
    }

    /// Path of the attached WAL, if any.
    pub fn wal_path(&self) -> Option<PathBuf> {
        self.dur.as_ref().map(|d| d.wal.path().to_path_buf())
    }

    /// Generation of the attached WAL, if any.
    pub fn wal_generation(&self) -> Option<u64> {
        self.dur.as_ref().map(|d| d.wal.generation())
    }

    /// Ask the matcher to check its internal derived state (e.g. Rete's
    /// hash-join indexes) against a from-scratch rebuild. A test/debug aid.
    pub fn validate_matcher(&self) -> Result<(), String> {
        self.matcher.validate()
    }

    /// Graphviz rendering of the match network (Rete only).
    pub fn network_dot(&self) -> Option<String> {
        self.matcher.to_dot()
    }

    /// Has `(halt)` been executed?
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn note_action(&mut self) {
        self.stats.actions += 1;
        if let Some(r) = self.firing_rule {
            self.stats.per_rule.entry(r).or_default().actions += 1;
        }
    }
}

impl RhsHost for ProductionSystem {
    fn make(&mut self, class: Symbol, slots: Vec<(Symbol, Value)>) -> Result<TimeTag, CoreError> {
        self.note_action();
        self.stats.makes += 1;
        let tag = self.assert_wme(class, slots)?;
        if self.recording {
            self.undo.push(UndoOp::Retract(tag));
        }
        Ok(tag)
    }

    fn remove(&mut self, tag: TimeTag) -> Result<bool, CoreError> {
        self.note_action();
        let Some(old) = self.wm.get(tag).cloned() else {
            // Already gone (overlapping set ops) — tolerated, but counted.
            self.stats.skipped_actions += 1;
            self.tracer.emit(|| TraceEvent::SkipAction {
                action: "remove",
                tag,
            });
            return Ok(false);
        };
        self.stats.removes += 1;
        self.retract_wme(tag)?;
        if self.recording {
            self.undo.push(UndoOp::Restore(old));
        }
        Ok(true)
    }

    fn modify(
        &mut self,
        tag: TimeTag,
        updates: Vec<(Symbol, Value)>,
    ) -> Result<Option<TimeTag>, CoreError> {
        self.note_action();
        let Some(old) = self.wm.get(tag).cloned() else {
            self.stats.skipped_actions += 1;
            self.tracer.emit(|| TraceEvent::SkipAction {
                action: "modify",
                tag,
            });
            return Ok(None);
        };
        self.stats.modifies += 1;
        // Record the restore *first*: `modify_wme` can fail after the
        // retract half (e.g. an undeclared attribute), and the retract
        // must still be undone.
        if self.recording {
            self.undo.push(UndoOp::Restore(old));
        }
        let new_tag = self.modify_wme(tag, &updates)?;
        if self.recording {
            self.undo.push(UndoOp::Retract(new_tag));
        }
        Ok(Some(new_tag))
    }

    fn write_line(&mut self, line: String) -> Result<(), CoreError> {
        self.note_action();
        self.stats.writes += 1;
        self.output.push(line);
        Ok(())
    }

    fn halt(&mut self) -> Result<(), CoreError> {
        self.note_action();
        self.halted = true;
        Ok(())
    }

    fn note_bind(&mut self) -> Result<(), CoreError> {
        self.note_action();
        Ok(())
    }
}
