//! The production-system engine: recognise–act cycle over a pluggable
//! match algorithm.

use crate::conflict::{ConflictSet, Strategy};
use crate::error::CoreError;
use crate::rhs::{self, RhsCtx, RhsHost};
use crate::stats::RunStats;
use crate::wm::WorkingMemory;
use sorete_base::{ConflictItem, FxHashMap, RuleId, Symbol, TimeTag, Value, Wme};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::matcher::Matcher;
use sorete_lang::{analyze_program, parse_program};
use sorete_naive::NaiveMatcher;
use sorete_rete::ReteMatcher;
use sorete_treat::TreatMatcher;
use std::sync::Arc;

/// Which match algorithm backs the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Rete with S-nodes (the paper's implementation).
    #[default]
    Rete,
    /// TREAT (Miranker 1986) with S-nodes.
    Treat,
    /// Recompute-from-scratch oracle.
    Naive,
}

/// Why a [`ProductionSystem::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No fireable instantiation remained.
    Quiescence,
    /// A `(halt)` was executed.
    Halt,
    /// The firing limit was reached.
    Limit,
}

/// Result of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rules fired during this run.
    pub fired: u64,
    /// Why the run ended.
    pub reason: StopReason,
}

/// A complete forward-chaining production system: working memory, match
/// network, conflict resolution, and the set-oriented RHS interpreter.
///
/// ```
/// use sorete_core::{MatcherKind, ProductionSystem};
/// use sorete_base::Value;
///
/// let mut ps = ProductionSystem::new(MatcherKind::Rete);
/// ps.load_program(
///     "(literalize player name team)
///      (p greet (player ^name <n>) (write hello <n>) (remove 1))",
/// ).unwrap();
/// ps.make_str("player", &[("name", Value::sym("Jack"))]).unwrap();
/// let outcome = ps.run(None);
/// assert_eq!(outcome.fired, 1);
/// assert_eq!(ps.take_output(), vec!["hello Jack"]);
/// ```
pub struct ProductionSystem {
    matcher: Box<dyn Matcher>,
    rules: Vec<Arc<AnalyzedRule>>,
    rule_ids: FxHashMap<Symbol, RuleId>,
    wm: WorkingMemory,
    cs: ConflictSet,
    strategy: Strategy,
    halted: bool,
    stats: RunStats,
    output: Vec<String>,
    trace: Vec<String>,
    tracing: bool,
    /// Set while a RHS runs, for per-rule action accounting.
    firing_rule: Option<Symbol>,
}

impl ProductionSystem {
    /// New engine over the chosen matcher, LEX strategy.
    pub fn new(kind: MatcherKind) -> ProductionSystem {
        let matcher: Box<dyn Matcher> = match kind {
            MatcherKind::Rete => Box::new(ReteMatcher::new()),
            MatcherKind::Treat => Box::new(TreatMatcher::new()),
            MatcherKind::Naive => Box::new(NaiveMatcher::new()),
        };
        ProductionSystem {
            matcher,
            rules: Vec::new(),
            rule_ids: FxHashMap::default(),
            wm: WorkingMemory::new(),
            cs: ConflictSet::new(),
            strategy: Strategy::Lex,
            halted: false,
            stats: RunStats::default(),
            output: Vec::new(),
            trace: Vec::new(),
            tracing: false,
            firing_rule: None,
        }
    }

    /// Change the conflict-resolution strategy.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Enable firing traces (retrievable via [`Self::take_trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Parse, analyse, and load a whole program (literalizes + rules).
    /// Must be called before any working-memory change.
    pub fn load_program(&mut self, src: &str) -> Result<(), CoreError> {
        let prog = parse_program(src)?;
        let analyzed = analyze_program(&prog)?;
        for l in &prog.literalizes {
            self.wm.declare_class(l.class, l.attrs.clone());
        }
        for ar in analyzed {
            let ar = Arc::new(ar);
            let id = self.matcher.add_rule(ar.clone());
            debug_assert_eq!(id.index(), self.rules.len());
            self.rule_ids.insert(ar.name, id);
            self.rules.push(ar);
        }
        // Rules added after WMEs derive instantiations immediately.
        self.sync();
        Ok(())
    }

    /// Excise a production by name: its instantiations leave the conflict
    /// set and it never matches again.
    pub fn excise(&mut self, name: &str) -> Result<(), CoreError> {
        let sym = Symbol::new(name);
        let id = self
            .rule_ids
            .remove(&sym)
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` to excise", name)))?;
        self.matcher.remove_rule(id);
        self.sync();
        Ok(())
    }

    /// Look up a loaded rule by name.
    pub fn rule(&self, name: &str) -> Option<&Arc<AnalyzedRule>> {
        let id = self.rule_ids.get(&Symbol::new(name))?;
        self.rules.get(id.index())
    }

    /// Assert a WME (string-keyed convenience).
    pub fn make_str(&mut self, class: &str, slots: &[(&str, Value)]) -> Result<TimeTag, CoreError> {
        self.assert_wme(
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        )
    }

    /// Assert a WME.
    pub fn assert_wme(
        &mut self,
        class: Symbol,
        slots: Vec<(Symbol, Value)>,
    ) -> Result<TimeTag, CoreError> {
        let wme = self.wm.make(class, slots)?;
        self.matcher.insert_wme(&wme);
        self.sync();
        Ok(wme.tag)
    }

    /// Retract a WME.
    pub fn retract_wme(&mut self, tag: TimeTag) -> Result<(), CoreError> {
        let wme = self.wm.remove(tag)?;
        self.matcher.remove_wme(&wme);
        self.sync();
        Ok(())
    }

    /// Modify = retract + re-assert with a fresh time tag (OPS5 semantics).
    pub fn modify_wme(
        &mut self,
        tag: TimeTag,
        updates: &[(Symbol, Value)],
    ) -> Result<TimeTag, CoreError> {
        let old = self.wm.remove(tag)?;
        self.matcher.remove_wme(&old);
        self.sync();
        let class = old.class;
        let mut slots: Vec<(Symbol, Value)> = old.slots().to_vec();
        drop(old);
        for &(a, v) in updates {
            match slots.iter_mut().find(|(sa, _)| *sa == a) {
                Some((_, sv)) => *sv = v,
                None => slots.push((a, v)),
            }
        }
        let wme = self.wm.make(class, slots)?;
        self.matcher.insert_wme(&wme);
        self.sync();
        Ok(wme.tag)
    }

    fn sync(&mut self) {
        for d in self.matcher.drain_deltas() {
            self.cs.apply(d);
        }
    }

    /// One recognise–act cycle. Returns the fired rule's name, or `None` at
    /// quiescence / after halt.
    pub fn step(&mut self) -> Result<Option<Symbol>, CoreError> {
        if self.halted {
            return Ok(None);
        }
        self.sync();
        let Some((selected, stale)) = self.cs.select(self.strategy) else {
            return Ok(None);
        };
        let mut item = selected.clone();
        if stale {
            // A slim `time` token updated this SOI; fetch its real rows.
            match self.matcher.materialize(&item.key) {
                Some(fresh) => {
                    item = fresh;
                    self.cs.refresh(item.clone());
                }
                None => {
                    // Unreachable after sync (a dead SOI gets a Remove
                    // delta first), but recover by dropping the entry.
                    debug_assert!(false, "stale entry vanished without a Remove delta");
                    let key = item.key.clone();
                    self.cs.apply(sorete_base::CsDelta::Remove(key));
                    return self.step();
                }
            }
        }
        let rule = self.rules[item.key.rule().index()].clone();
        self.cs.mark_fired(&item.key, item.version);
        self.stats.firings += 1;
        self.stats.per_rule.entry(rule.name).or_default().firings += 1;
        if self.tracing {
            self.trace.push(format!(
                "FIRE {} {:?}",
                rule.name,
                item.rows.iter().map(|r| r.iter().map(|t| t.raw()).collect::<Vec<_>>()).collect::<Vec<_>>()
            ));
        }

        // Snapshot the instantiation's WMEs (bindings are fixed at firing).
        let mut wmes: FxHashMap<TimeTag, Wme> = FxHashMap::default();
        for row in &item.rows {
            for &t in row.iter() {
                if let Some(w) = self.wm.get(t) {
                    wmes.entry(t).or_insert_with(|| w.clone());
                }
            }
        }
        let mut ctx = RhsCtx::new(rule.clone(), item.rows.clone(), wmes, item.aggregates.clone());
        self.firing_rule = Some(rule.name);
        let result = rhs::execute(self, &mut ctx, &rule.rhs);
        self.firing_rule = None;
        result?;
        self.sync();
        Ok(Some(rule.name))
    }

    /// Run to quiescence, halt, or the firing limit.
    pub fn run(&mut self, limit: Option<u64>) -> RunOutcome {
        let mut fired = 0;
        loop {
            if let Some(l) = limit {
                if fired >= l {
                    return RunOutcome { fired, reason: StopReason::Limit };
                }
            }
            match self.step() {
                Ok(Some(_)) => fired += 1,
                Ok(None) => {
                    let reason =
                        if self.halted { StopReason::Halt } else { StopReason::Quiescence };
                    return RunOutcome { fired, reason };
                }
                Err(e) => {
                    // Surface RHS errors in the output; stop the run.
                    self.output.push(format!("ERROR: {}", e));
                    return RunOutcome { fired, reason: StopReason::Halt };
                }
            }
        }
    }

    /// Current conflict-set size (fired entries included).
    pub fn conflict_set_len(&self) -> usize {
        self.cs.len()
    }

    /// Conflict-set entries (unordered), for inspection. SOI entries are
    /// materialized so their rows reflect the γ-memory's current state
    /// (slim `time` tokens only update position metadata).
    pub fn conflict_items(&self) -> Vec<ConflictItem> {
        self.cs
            .items()
            .map(|item| self.matcher.materialize(&item.key).unwrap_or_else(|| item.clone()))
            .collect()
    }

    /// Working memory (read access).
    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Accumulated `write` output (drained).
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Firing trace (drained).
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.trace)
    }

    /// Engine counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Matcher counters.
    pub fn match_stats(&self) -> sorete_base::MatchStats {
        self.matcher.stats()
    }

    /// The matcher backing this engine.
    pub fn matcher_name(&self) -> &'static str {
        self.matcher.algorithm_name()
    }

    /// Graphviz rendering of the match network (Rete only).
    pub fn network_dot(&self) -> Option<String> {
        self.matcher.to_dot()
    }

    /// Has `(halt)` been executed?
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn note_action(&mut self) {
        self.stats.actions += 1;
        if let Some(r) = self.firing_rule {
            self.stats.per_rule.entry(r).or_default().actions += 1;
        }
    }
}

impl RhsHost for ProductionSystem {
    fn make(&mut self, class: Symbol, slots: Vec<(Symbol, Value)>) -> Result<TimeTag, CoreError> {
        self.note_action();
        self.stats.makes += 1;
        self.assert_wme(class, slots)
    }

    fn remove(&mut self, tag: TimeTag) -> bool {
        self.note_action();
        if self.wm.get(tag).is_none() {
            return false; // already gone (overlapping set ops) — tolerated
        }
        self.stats.removes += 1;
        self.retract_wme(tag).is_ok()
    }

    fn modify(
        &mut self,
        tag: TimeTag,
        updates: Vec<(Symbol, Value)>,
    ) -> Result<Option<TimeTag>, CoreError> {
        self.note_action();
        if self.wm.get(tag).is_none() {
            return Ok(None);
        }
        self.stats.modifies += 1;
        Ok(Some(self.modify_wme(tag, &updates)?))
    }

    fn write_line(&mut self, line: String) {
        self.note_action();
        self.stats.writes += 1;
        self.output.push(line);
    }

    fn halt(&mut self) {
        self.note_action();
        self.halted = true;
    }

    fn note_bind(&mut self) {
        self.note_action();
    }
}
