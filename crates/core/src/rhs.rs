//! The RHS interpreter — including every set-oriented action of §6.
//!
//! Semantics implemented from the paper:
//!
//! - the fired (set-oriented) instantiation is a **relation** (rows of
//!   matched WMEs); `foreach` decomposes it by successive selection;
//! - `foreach` over a set-oriented **pattern variable** iterates the
//!   distinct values of its domain, constraining the active sub-relation
//!   and binding the variable scalar inside the body (§6.1);
//! - `foreach` over a set-oriented **element variable** iterates distinct
//!   WMEs (time tags); within the body every PV of that CE reads from the
//!   current WME (§6.2);
//! - default iteration order is conflict-set (recency) order — "the order
//!   in which they would have occurred as separate instantiations";
//!   `ascending`/`descending` sort by value (by tag for element variables);
//! - `set-modify`/`set-remove` apply to every WME the element variable
//!   matches in the *current* (sub)instantiation context;
//! - WM changes take effect immediately (they flow into the matcher), but
//!   the fired instantiation's bindings come from a snapshot taken at fire
//!   time, as in OPS5.

use crate::error::CoreError;
use sorete_base::{FxHashMap, FxHashSet, Symbol, TimeTag, Value, Wme};
use sorete_lang::analyze::AnalyzedRule;
use sorete_lang::ast::{truthy, Action, AggOp, Expr, IterOrder, RhsTarget};
use sorete_lang::eval::{eval, Env};
use std::sync::Arc;

/// What the interpreter asks of the engine.
///
/// Every method is fallible so that wrappers (notably
/// `crate::engine::FaultInjector`) can fail *any* primitive action, not
/// just the WM-mutating ones — the rollback machinery must cope with a
/// failure at every action index.
pub trait RhsHost {
    /// Assert a new WME.
    fn make(&mut self, class: Symbol, slots: Vec<(Symbol, Value)>) -> Result<TimeTag, CoreError>;
    /// Retract a WME. Returns `Ok(false)` if it was already gone (e.g.
    /// removed twice by overlapping set operations) — a warning, not an
    /// error.
    fn remove(&mut self, tag: TimeTag) -> Result<bool, CoreError>;
    /// Modify = retract + re-assert with a fresh tag. `Ok(None)` if the WME
    /// was already gone.
    fn modify(
        &mut self,
        tag: TimeTag,
        updates: Vec<(Symbol, Value)>,
    ) -> Result<Option<TimeTag>, CoreError>;
    /// Emit one `write` line.
    fn write_line(&mut self, line: String) -> Result<(), CoreError>;
    /// `halt` was executed.
    fn halt(&mut self) -> Result<(), CoreError>;
    /// A `bind` was executed (counted as an action).
    fn note_bind(&mut self) -> Result<(), CoreError>;
}

/// Snapshot of the fired instantiation plus the interpreter's mutable
/// iteration state.
pub struct RhsCtx {
    /// The rule being fired.
    pub rule: Arc<AnalyzedRule>,
    /// The instantiation's rows (most recent first).
    pub rows: Vec<Box<[TimeTag]>>,
    /// Snapshot of every WME referenced by `rows`, taken at fire time.
    pub wmes: FxHashMap<TimeTag, Wme>,
    /// The rule's aggregate values at fire time.
    pub aggregates: Vec<Value>,
    active: Vec<usize>,
    binds: FxHashMap<Symbol, Value>,
    ce_current: FxHashMap<usize, TimeTag>,
    /// Detailed message from the last failed variable resolution (the
    /// `Env` trait can only say "unbound"; this preserves the real cause).
    last_resolve_err: std::cell::RefCell<Option<String>>,
}

impl RhsCtx {
    /// Build a context over a fired instantiation.
    pub fn new(
        rule: Arc<AnalyzedRule>,
        rows: Vec<Box<[TimeTag]>>,
        wmes: FxHashMap<TimeTag, Wme>,
        aggregates: Vec<Value>,
    ) -> RhsCtx {
        let active = (0..rows.len()).collect();
        RhsCtx {
            rule,
            rows,
            wmes,
            aggregates,
            active,
            binds: FxHashMap::default(),
            ce_current: FxHashMap::default(),
            last_resolve_err: std::cell::RefCell::new(None),
        }
    }

    fn value_at(&self, row: usize, pos_ce: usize, attr: Symbol) -> Value {
        self.wmes[&self.rows[row][pos_ce]].get(attr)
    }

    /// Resolve a variable in the current context.
    fn resolve(&self, v: Symbol) -> Result<Value, CoreError> {
        if let Some(val) = self.binds.get(&v) {
            return Ok(*val);
        }
        let Some(src) = self.rule.var_sources.get(&v) else {
            return Err(CoreError::Rhs(format!("unbound variable <{}>", v)));
        };
        // A PV of a CE currently iterated by its element variable reads
        // from the current WME (it is "treated as a regular PV", §6.2).
        if let Some(&tag) = self.ce_current.get(&src.pos_ce) {
            return Ok(self.wmes[&tag].get(src.attr));
        }
        if src.set_oriented {
            // §6.1: each enclosing `foreach` reduces the sub-instantiation
            // by selection, shrinking every sibling PV's domain. When the
            // reduced domain is a singleton the variable is effectively
            // scalar and may be read directly.
            let domain = self.domain_values(src.pos_ce, src.attr);
            if domain.len() == 1 {
                return Ok(domain[0]);
            }
            return Err(CoreError::Rhs(format!(
                "set-oriented variable <{}> has {} values in the current context \
                 (iterate it with `foreach` first)",
                v,
                domain.len()
            )));
        }
        let &row = self.active.first().ok_or_else(|| {
            CoreError::Rhs("empty sub-instantiation while resolving a variable".into())
        })?;
        Ok(self.value_at(row, src.pos_ce, src.attr))
    }

    /// Distinct values of a set-oriented PV over the active rows, in
    /// active-row (recency) order.
    fn domain_values(&self, pos_ce: usize, attr: Symbol) -> Vec<Value> {
        let mut seen: FxHashSet<Value> = FxHashSet::default();
        let mut out = Vec::new();
        for &r in &self.active {
            let v = self.value_at(r, pos_ce, attr);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Distinct WMEs of a CE over the active rows, in active-row order.
    fn domain_tags(&self, pos_ce: usize) -> Vec<TimeTag> {
        let mut seen: FxHashSet<TimeTag> = FxHashSet::default();
        let mut out = Vec::new();
        for &r in &self.active {
            let t = self.rows[r][pos_ce];
            if seen.insert(t) {
                out.push(t);
            }
        }
        out
    }
}

impl RhsCtx {
    /// Evaluate an expression, preserving detailed resolution errors.
    fn eval_expr(&self, e: &Expr) -> Result<Value, CoreError> {
        self.last_resolve_err.borrow_mut().take();
        match eval(e, self) {
            Ok(v) => Ok(v),
            Err(err) => match self.last_resolve_err.borrow_mut().take() {
                Some(msg) => Err(CoreError::Rhs(msg)),
                None => Err(err.into()),
            },
        }
    }
}

impl Env for RhsCtx {
    fn var(&self, v: Symbol) -> Option<Value> {
        match self.resolve(v) {
            Ok(v) => Some(v),
            Err(e) => {
                *self.last_resolve_err.borrow_mut() = Some(e.to_string());
                None
            }
        }
    }

    fn agg(&self, op: AggOp, var: Symbol) -> Option<Value> {
        let idx = self.rule.agg_index(op, var)?;
        self.aggregates.get(idx).copied()
    }
}

/// Execute a full RHS.
pub fn execute(
    host: &mut dyn RhsHost,
    ctx: &mut RhsCtx,
    actions: &[Action],
) -> Result<(), CoreError> {
    for a in actions {
        exec_action(host, ctx, a)?;
    }
    Ok(())
}

fn eval_slots(ctx: &RhsCtx, slots: &[(Symbol, Expr)]) -> Result<Vec<(Symbol, Value)>, CoreError> {
    slots
        .iter()
        .map(|(attr, e)| Ok((*attr, ctx.eval_expr(e)?)))
        .collect()
}

/// Resolve a scalar `remove`/`modify` target to one WME.
fn scalar_target(ctx: &RhsCtx, target: &RhsTarget) -> Result<TimeTag, CoreError> {
    let pos = match target {
        RhsTarget::Var(v) => *ctx
            .rule
            .elem_vars
            .get(v)
            .ok_or_else(|| CoreError::Rhs(format!("<{}> is not an element variable", v)))?,
        RhsTarget::Idx(i) => i - 1,
    };
    let is_set_ce = ctx
        .rule
        .ces
        .iter()
        .find(|c| c.pos_idx == Some(pos))
        .is_some_and(|c| c.set_oriented);
    if is_set_ce {
        // Scalar access to a set CE requires iteration context.
        ctx.ce_current.get(&pos).copied().ok_or_else(|| {
            CoreError::Rhs(
                "scalar `remove`/`modify` of a set-oriented element requires an enclosing \
                 `foreach` over it (use `set-remove`/`set-modify` otherwise)"
                    .into(),
            )
        })
    } else {
        let &row = ctx
            .active
            .first()
            .ok_or_else(|| CoreError::Rhs("empty sub-instantiation".into()))?;
        Ok(ctx.rows[row][pos])
    }
}

fn exec_action(host: &mut dyn RhsHost, ctx: &mut RhsCtx, action: &Action) -> Result<(), CoreError> {
    match action {
        Action::Make { class, slots } => {
            let slots = eval_slots(ctx, slots)?;
            host.make(*class, slots)?;
        }
        Action::Remove(target) => {
            let tag = scalar_target(ctx, target)?;
            host.remove(tag)?;
        }
        Action::Modify { target, slots } => {
            let tag = scalar_target(ctx, target)?;
            let updates = eval_slots(ctx, slots)?;
            host.modify(tag, updates)?;
        }
        Action::SetRemove(v) => {
            let pos = ctx
                .rule
                .set_elem_ce(*v)
                .ok_or_else(|| CoreError::Rhs(format!("<{}> is not a set element variable", v)))?;
            for tag in ctx.domain_tags(pos) {
                host.remove(tag)?;
            }
        }
        Action::SetModify { var, slots } => {
            let pos = ctx.rule.set_elem_ce(*var).ok_or_else(|| {
                CoreError::Rhs(format!("<{}> is not a set element variable", var))
            })?;
            for tag in ctx.domain_tags(pos) {
                // Per-WME evaluation: expressions may reference PVs of the
                // CE, which resolve through the current WME.
                let prev = ctx.ce_current.insert(pos, tag);
                let updates = eval_slots(ctx, slots);
                match prev {
                    Some(p) => {
                        ctx.ce_current.insert(pos, p);
                    }
                    None => {
                        ctx.ce_current.remove(&pos);
                    }
                }
                host.modify(tag, updates?)?;
            }
        }
        Action::Write(parts) => {
            let rendered: Result<Vec<String>, CoreError> = parts
                .iter()
                .map(|e| Ok(ctx.eval_expr(e)?.to_string()))
                .collect();
            host.write_line(rendered?.join(" "))?;
        }
        Action::Bind(v, e) => {
            let val = ctx.eval_expr(e)?;
            ctx.binds.insert(*v, val);
            host.note_bind()?;
        }
        Action::Halt => host.halt()?,
        Action::If { cond, then, els } => {
            let branch = if truthy(&ctx.eval_expr(cond)?) {
                then
            } else {
                els
            };
            for a in branch {
                exec_action(host, ctx, a)?;
            }
        }
        Action::ForEach { var, order, body } => exec_foreach(host, ctx, *var, *order, body)?,
    }
    Ok(())
}

fn exec_foreach(
    host: &mut dyn RhsHost,
    ctx: &mut RhsCtx,
    var: Symbol,
    order: IterOrder,
    body: &[Action],
) -> Result<(), CoreError> {
    if let Some(pos) = ctx.rule.set_elem_ce(var) {
        // §6.2: iterate distinct WMEs of the CE.
        let mut tags = ctx.domain_tags(pos);
        match order {
            IterOrder::Default => {} // recency order (active-row order)
            IterOrder::Ascending => tags.sort_unstable(),
            IterOrder::Descending => tags.sort_unstable_by(|a, b| b.cmp(a)),
        }
        let saved_active = ctx.active.clone();
        for tag in tags {
            ctx.active = saved_active
                .iter()
                .copied()
                .filter(|&r| ctx.rows[r][pos] == tag)
                .collect();
            ctx.ce_current.insert(pos, tag);
            for a in body {
                exec_action(host, ctx, a)?;
            }
        }
        ctx.ce_current.remove(&pos);
        ctx.active = saved_active;
        Ok(())
    } else if ctx.rule.is_set_var(var) {
        // §6.1: iterate distinct values of the PV's domain.
        let src = ctx.rule.var_sources[&var];
        let mut values = ctx.domain_values(src.pos_ce, src.attr);
        match order {
            IterOrder::Default => {}
            IterOrder::Ascending => values.sort_unstable(),
            IterOrder::Descending => values.sort_unstable_by(|a, b| b.cmp(a)),
        }
        let saved_active = ctx.active.clone();
        for val in values {
            ctx.active = saved_active
                .iter()
                .copied()
                .filter(|&r| ctx.value_at(r, src.pos_ce, src.attr) == val)
                .collect();
            ctx.binds.insert(var, val);
            for a in body {
                exec_action(host, ctx, a)?;
            }
        }
        ctx.binds.remove(&var);
        ctx.active = saved_active;
        Ok(())
    } else {
        Err(CoreError::Rhs(format!(
            "`foreach` over non-set variable <{}>",
            var
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_lang::{analyze_rule, parse_rule};

    /// Recording host: applies nothing, just logs calls.
    #[derive(Default)]
    struct LogHost {
        log: Vec<String>,
        next_tag: u64,
    }

    impl RhsHost for LogHost {
        fn make(
            &mut self,
            class: Symbol,
            slots: Vec<(Symbol, Value)>,
        ) -> Result<TimeTag, CoreError> {
            self.next_tag += 1;
            self.log.push(format!(
                "make {} {}",
                class,
                slots
                    .iter()
                    .map(|(a, v)| format!("^{} {}", a, v))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            Ok(TimeTag::new(1000 + self.next_tag))
        }
        fn remove(&mut self, tag: TimeTag) -> Result<bool, CoreError> {
            self.log.push(format!("remove {}", tag));
            Ok(true)
        }
        fn modify(
            &mut self,
            tag: TimeTag,
            updates: Vec<(Symbol, Value)>,
        ) -> Result<Option<TimeTag>, CoreError> {
            self.log.push(format!(
                "modify {} {}",
                tag,
                updates
                    .iter()
                    .map(|(a, v)| format!("^{} {}", a, v))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            self.next_tag += 1;
            Ok(Some(TimeTag::new(1000 + self.next_tag)))
        }
        fn write_line(&mut self, line: String) -> Result<(), CoreError> {
            self.log.push(format!("write {}", line));
            Ok(())
        }
        fn halt(&mut self) -> Result<(), CoreError> {
            self.log.push("halt".into());
            Ok(())
        }
        fn note_bind(&mut self) -> Result<(), CoreError> {
            Ok(())
        }
    }

    /// Build a ctx for the paper's Figure-4 instantiation.
    fn figure4_ctx(src: &str) -> RhsCtx {
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        let mk = |tag: u64, name: &str, team: &str| {
            Wme::new(
                TimeTag::new(tag),
                Symbol::new("player"),
                vec![
                    (Symbol::new("name"), Value::sym(name)),
                    (Symbol::new("team"), Value::sym(team)),
                ],
            )
        };
        let wmes_list = vec![
            mk(1, "Jack", "A"),
            mk(2, "Janice", "A"),
            mk(3, "Sue", "B"),
            mk(4, "Jack", "B"),
            mk(5, "Sue", "B"),
        ];
        let mut wmes = FxHashMap::default();
        // Rows in recency (conflict-set) order: tag 5 first.
        let mut rows: Vec<Box<[TimeTag]>> = Vec::new();
        for w in wmes_list.iter().rev() {
            rows.push(vec![w.tag].into());
        }
        for w in wmes_list {
            wmes.insert(w.tag, w);
        }
        RhsCtx::new(rule, rows, wmes, vec![])
    }

    #[test]
    fn figure4_nested_foreach_groups_by_team_then_name() {
        // (p GroupByTeam [player ^team <t> ^name <n>]
        //    (foreach <t> (write <t>) (foreach <n> (write <n>))))
        let ctx_src = "(p GroupByTeam [player ^team <t> ^name <n>]
            (foreach <t> (write <t>) (foreach <n> (write <n>))))";
        let mut ctx = figure4_ctx(ctx_src);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        execute(&mut host, &mut ctx, &rhs).unwrap();
        // Paper's trace: first outer iteration <t>=B (most recent), inner
        // Sue then Jack (Sue is most recent); second outer <t>=A, inner
        // Janice then Jack. Duplicate Sue printed once.
        assert_eq!(
            host.log,
            vec![
                "write B",
                "write Sue",
                "write Jack",
                "write A",
                "write Janice",
                "write Jack",
            ]
        );
    }

    #[test]
    fn foreach_ascending_descending() {
        let src = "(p r [item ^n <n>] (foreach <n> ascending (write <n>)))";
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        let mut wmes = FxHashMap::default();
        let mut rows: Vec<Box<[TimeTag]>> = Vec::new();
        for (tag, n) in [(1u64, 30i64), (2, 10), (3, 20)] {
            let w = Wme::new(
                TimeTag::new(tag),
                Symbol::new("item"),
                vec![(Symbol::new("n"), Value::Int(n))],
            );
            rows.insert(0, vec![w.tag].into());
            wmes.insert(w.tag, w);
        }
        let mut ctx = RhsCtx::new(rule, rows, wmes, vec![]);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        execute(&mut host, &mut ctx, &rhs).unwrap();
        assert_eq!(host.log, vec!["write 10", "write 20", "write 30"]);
    }

    #[test]
    fn removedups_keeps_most_recent() {
        // The paper's RemoveDups body: descending foreach over <P>, keep
        // the first (most recent tag), remove the rest.
        let src = "(p RemoveDups { [player ^name <n> ^team <t>] <P> }
            :scalar (<n> <t>) :test ((count <P>) > 1)
            (bind <First> true)
            (foreach <P> descending
              (if (<First> == true) (bind <First> false) else (remove <P>))))";
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        let mut wmes = FxHashMap::default();
        let mut rows: Vec<Box<[TimeTag]>> = Vec::new();
        for tag in [7u64, 3, 5] {
            let w = Wme::new(
                TimeTag::new(tag),
                Symbol::new("player"),
                vec![
                    (Symbol::new("name"), Value::sym("Sue")),
                    (Symbol::new("team"), Value::sym("B")),
                ],
            );
            rows.push(vec![w.tag].into());
            wmes.insert(w.tag, w);
        }
        let mut ctx = RhsCtx::new(rule, rows, wmes, vec![Value::Int(3)]);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        execute(&mut host, &mut ctx, &rhs).unwrap();
        // Descending tag order: 7 kept, 5 and 3 removed.
        assert_eq!(host.log, vec!["remove 5", "remove 3"]);
    }

    #[test]
    fn set_modify_applies_to_all_wmes_in_context() {
        let src = "(p SwitchTeams { [player ^team A] <ATeam> } { [player ^team B] <BTeam> }
            :test ((count <ATeam>) == (count <BTeam>))
            (set-modify <ATeam> ^team B) (set-modify <BTeam> ^team A))";
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        let mut wmes = FxHashMap::default();
        let mk = |tag: u64, team: &str| {
            Wme::new(
                TimeTag::new(tag),
                Symbol::new("player"),
                vec![(Symbol::new("team"), Value::sym(team))],
            )
        };
        for (t, team) in [(1u64, "A"), (2, "A"), (3, "B"), (4, "B")] {
            wmes.insert(TimeTag::new(t), mk(t, team));
        }
        // Cross product rows: (A-wme, B-wme).
        let rows: Vec<Box<[TimeTag]>> = vec![
            vec![TimeTag::new(2), TimeTag::new(4)].into(),
            vec![TimeTag::new(1), TimeTag::new(4)].into(),
            vec![TimeTag::new(2), TimeTag::new(3)].into(),
            vec![TimeTag::new(1), TimeTag::new(3)].into(),
        ];
        let mut ctx = RhsCtx::new(rule, rows, wmes, vec![Value::Int(2), Value::Int(2)]);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        execute(&mut host, &mut ctx, &rhs).unwrap();
        // Each of the 4 WMEs modified exactly once despite appearing in 2 rows.
        assert_eq!(
            host.log,
            vec![
                "modify 2 ^team B",
                "modify 1 ^team B",
                "modify 4 ^team A",
                "modify 3 ^team A"
            ]
        );
    }

    #[test]
    fn singleton_domain_reads_as_scalar() {
        // §6.1: inside `foreach <sub>`, sibling PV <q> has one value per
        // iteration and may be read directly.
        let src = "(p r [part ^child <sub> ^qty <q>]
            (foreach <sub> (write <sub> x <q>)))";
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        let mut wmes = FxHashMap::default();
        let mut rows: Vec<Box<[TimeTag]>> = Vec::new();
        for (tag, child, qty) in [(1u64, "piston", 4i64), (2, "valve", 8)] {
            let w = Wme::new(
                TimeTag::new(tag),
                Symbol::new("part"),
                vec![
                    (Symbol::new("child"), Value::sym(child)),
                    (Symbol::new("qty"), Value::Int(qty)),
                ],
            );
            rows.insert(0, vec![w.tag].into());
            wmes.insert(w.tag, w);
        }
        let mut ctx = RhsCtx::new(rule, rows, wmes, vec![]);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        execute(&mut host, &mut ctx, &rhs).unwrap();
        assert_eq!(host.log, vec!["write valve x 8", "write piston x 4"]);
    }

    #[test]
    fn scalar_use_of_set_var_errors() {
        let src = "(p r [player ^name <n>] (write <n>))";
        let mut ctx = figure4_ctx(src);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        let err = execute(&mut host, &mut ctx, &rhs).unwrap_err();
        assert!(err.to_string().contains("foreach"), "{}", err);
    }

    #[test]
    fn remove_of_set_elem_requires_foreach() {
        let src = "(p r { [player ^name <n>] <P> } (remove <P>))";
        let mut ctx = figure4_ctx(src);
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        let err = execute(&mut host, &mut ctx, &rhs).unwrap_err();
        assert!(err.to_string().contains("set-remove"), "{}", err);
    }

    #[test]
    fn aggregate_readable_in_rhs() {
        let src = "(p r { [player ^name <n>] <P> } :test ((count <P>) > 0)
            (write (count <P>)))";
        let rule = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        let w = Wme::new(
            TimeTag::new(1),
            Symbol::new("player"),
            vec![(Symbol::new("name"), Value::sym("x"))],
        );
        let mut wmes = FxHashMap::default();
        wmes.insert(w.tag, w);
        let mut ctx = RhsCtx::new(
            rule,
            vec![vec![TimeTag::new(1)].into()],
            wmes,
            vec![Value::Int(5)],
        );
        let mut host = LogHost::default();
        let rhs = ctx.rule.rhs.clone();
        execute(&mut host, &mut ctx, &rhs).unwrap();
        assert_eq!(host.log, vec!["write 5"]);
    }
}
