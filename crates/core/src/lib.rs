#![warn(missing_docs)]
//! `sorete-core` — the production-system engine with set-oriented
//! constructs, reproducing Gordin & Pasik, *Set-Oriented Constructs: From
//! Rete Rule Bases to Database Systems* (SIGMOD 1991).
//!
//! The engine stacks:
//!
//! - a [`wm::WorkingMemory`] (tuples with time tags, §3);
//! - a pluggable match algorithm ([`MatcherKind`]): Rete with S-nodes,
//!   TREAT with S-nodes, or a naive oracle;
//! - a [`conflict::ConflictSet`] with OPS5 LEX/MEA resolution, extended
//!   with the paper's `time`-token repositioning and change-re-arms-
//!   refraction rule (§5–§6);
//! - the set-oriented RHS interpreter ([`rhs`]): `foreach` (over pattern
//!   variables and element variables, nested, ordered), `set-modify`,
//!   `set-remove`, `bind`, `if/else`, and the classic OPS5 actions.
//!
//! ```
//! use sorete_core::{MatcherKind, ProductionSystem};
//! use sorete_base::Value;
//!
//! let mut ps = ProductionSystem::new(MatcherKind::Rete);
//! ps.load_program(
//!     "(literalize player name team)
//!      (p RemoveDups
//!        { [player ^name <n> ^team <t>] <P> }
//!        :scalar (<n> <t>)
//!        :test ((count <P>) > 1)
//!        (bind <First> true)
//!        (foreach <P> descending
//!          (if (<First> == true) (bind <First> false) else (remove <P>))))",
//! ).unwrap();
//! for _ in 0..3 {
//!     ps.make_str("player", &[("name", Value::sym("Sue")), ("team", Value::sym("B"))]).unwrap();
//! }
//! let outcome = ps.run(None);
//! assert_eq!(outcome.fired, 1, "one firing deduplicates the whole set");
//! assert_eq!(ps.wm().len(), 1);
//! ```

pub mod bundle;
pub mod conflict;
pub mod durable;
pub mod engine;
pub mod error;
pub mod explain;
pub mod parallel;
pub mod rhs;
pub mod stats;
pub mod supervisor;
pub mod wm;

pub use bundle::{BundleRule, CrashBundle};
pub use conflict::{ConflictSet, Strategy};
pub use durable::{Checkpoint, CycleMarker, KeySpec};
pub use engine::{
    FaultInjector, FaultPlan, GuardViolation, MatcherKind, ProductionSystem, RecoveryPolicy,
    ResumeReport, RunGuards, RunOutcome, StopReason, WalReplayReport,
};
pub use error::CoreError;
pub use parallel::{ParallelMatcher, PARTITIONS};
pub use stats::{RuleStats, RunStats};
pub use supervisor::{
    BreakerPolicy, DegradationPolicy, RetryPolicy, Supervisor, SupervisorConfig, SupervisorStats,
};
pub use wm::WorkingMemory;

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::Value;

    fn engine(kind: MatcherKind, program: &str) -> ProductionSystem {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(program).unwrap();
        ps
    }

    fn players(ps: &mut ProductionSystem, list: &[(&str, &str)]) {
        for (n, t) in list {
            ps.make_str(
                "player",
                &[("name", Value::sym(n)), ("team", Value::sym(t))],
            )
            .unwrap();
        }
    }

    const FIGURE1_WM: &[(&str, &str)] = &[
        ("Jack", "A"),
        ("Janice", "A"),
        ("Sue", "B"),
        ("Jack", "B"),
        ("Sue", "B"),
    ];

    #[test]
    fn figure1_compete_fires_six_times() {
        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
            let mut ps = engine(
                kind,
                "(literalize player name team)
                 (p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
                   (write Player-A: <n1> Player-B: <n2>))",
            );
            players(&mut ps, FIGURE1_WM);
            assert_eq!(ps.conflict_set_len(), 6, "{:?}", kind);
            let outcome = ps.run(None);
            assert_eq!(outcome.fired, 6, "{:?}", kind);
            assert_eq!(outcome.reason, StopReason::Quiescence);
            let out = ps.take_output();
            assert_eq!(out.len(), 6);
            assert!(out.contains(&"Player-A: Jack Player-B: Sue".to_string()));
        }
    }

    #[test]
    fn figure2_set_oriented_compete_fires_once() {
        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
            let mut ps = engine(
                kind,
                "(literalize player name team)
                 (p compete1 [player ^name <n1> ^team A] [player ^name <n2> ^team B]
                   (foreach <n1> (foreach <n2> (write <n1> vs <n2>))))",
            );
            players(&mut ps, FIGURE1_WM);
            assert_eq!(ps.conflict_set_len(), 1, "{:?}", kind);
            let outcome = ps.run(None);
            assert_eq!(outcome.fired, 1, "one firing covers the whole relation");
            let out = ps.take_output();
            // Distinct name pairs: {Jack, Janice} × {Sue, Jack} = 4 lines
            // (value-based: duplicate Sue collapses).
            assert_eq!(out.len(), 4, "{:?}: {:?}", kind, out);
        }
    }

    #[test]
    fn figure4_group_by_team_trace() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize player name team)
             (p GroupByTeam [player ^team <t> ^name <n>]
               (foreach <t> (write team <t>) (foreach <n> (write player <n>))))",
        );
        players(&mut ps, FIGURE1_WM);
        let outcome = ps.run(None);
        assert_eq!(outcome.fired, 1);
        assert_eq!(
            ps.take_output(),
            vec![
                "team B",
                "player Sue",
                "player Jack",
                "team A",
                "player Janice",
                "player Jack",
            ],
            "matches the paper's Figure 4 iteration order"
        );
    }

    #[test]
    fn figure5_switch_teams() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize player name team)
             (p SwitchTeams
               { [player ^team A] <ATeam> }
               { [player ^team B] <BTeam> }
               :test ((count <ATeam>) == (count <BTeam>))
               (set-modify <ATeam> ^team B)
               (set-modify <BTeam> ^team A)
               (halt))",
        );
        players(
            &mut ps,
            &[("Jack", "A"), ("Janice", "A"), ("Sue", "B"), ("Mike", "B")],
        );
        let outcome = ps.run(Some(10));
        assert_eq!(outcome.reason, StopReason::Halt);
        assert_eq!(outcome.fired, 1);
        // Teams swapped.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for w in ps.wm().dump() {
            let name = w.get(sorete_base::Symbol::new("name")).to_string();
            match w.get(sorete_base::Symbol::new("team")).to_string().as_str() {
                "A" => a.push(name),
                "B" => b.push(name),
                _ => unreachable!(),
            }
        }
        a.sort();
        b.sort();
        assert_eq!(a, vec!["Mike", "Sue"]);
        assert_eq!(b, vec!["Jack", "Janice"]);
    }

    #[test]
    fn figure5_remove_dups() {
        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
            let mut ps = engine(
                kind,
                "(literalize player name team)
                 (p RemoveDups
                   { [player ^name <n> ^team <t>] <P> }
                   :scalar (<n> <t>)
                   :test ((count <P>) > 1)
                   (bind <First> true)
                   (foreach <P> descending
                     (if (<First> == true) (bind <First> false) else (remove <P>))))",
            );
            players(&mut ps, FIGURE1_WM);
            let outcome = ps.run(Some(50));
            // One duplicate pair (Sue/B twice): one firing removes tag 3,
            // keeping the most recent (tag 5).
            assert_eq!(outcome.fired, 1, "{:?}", kind);
            assert_eq!(ps.wm().len(), 4, "{:?}", kind);
            let survivors: Vec<u64> = ps.wm().dump().iter().map(|w| w.tag.raw()).collect();
            assert_eq!(
                survivors,
                vec![1, 2, 4, 5],
                "{:?}: most recent Sue kept",
                kind
            );
        }
    }

    #[test]
    fn figure5_alternative_remove_dups() {
        // No :test — fires even without duplicates, but still terminates.
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize player name team)
             (p AlternativeRemoveDups
               { [player ^name <n> ^team <t>] <P> }
               (foreach <n> (foreach <t>
                 (bind <First> true)
                 (foreach <P> descending
                   (if (<First> == true) (bind <First> false) else (remove <P>))))))",
        );
        players(&mut ps, FIGURE1_WM);
        let outcome = ps.run(Some(50));
        assert!(outcome.fired >= 1);
        assert_eq!(ps.wm().len(), 4);
    }

    #[test]
    fn marking_scheme_equivalence() {
        // Claim C2: the tuple-oriented marking program needs one firing per
        // WME (plus control); the set-oriented one needs exactly one.
        let tuple_prog = "(literalize item status)
            (p process-one (item ^status pending)
              (modify 1 ^status done))";
        let set_prog = "(literalize item status)
            (p process-all { [item ^status pending] <P> }
              (set-modify <P> ^status done))";
        let n = 20;

        let mut tuple = engine(MatcherKind::Rete, tuple_prog);
        for _ in 0..n {
            tuple
                .make_str("item", &[("status", Value::sym("pending"))])
                .unwrap();
        }
        let t_out = tuple.run(Some(1000));
        assert_eq!(t_out.fired, n as u64, "one firing per item");

        let mut set = engine(MatcherKind::Rete, set_prog);
        for _ in 0..n {
            set.make_str("item", &[("status", Value::sym("pending"))])
                .unwrap();
        }
        let s_out = set.run(Some(1000));
        assert_eq!(s_out.fired, 1, "a single set-oriented firing");
        assert_eq!(set.stats().modifies, n as u64);
        // Both reach the same final WM state.
        assert_eq!(set.wm().len(), n);
        assert!(set
            .wm()
            .iter()
            .all(|w| w.get(sorete_base::Symbol::new("status")) == Value::sym("done")));
    }

    #[test]
    fn soi_refires_when_contents_change() {
        // §6: "if any part of the instantiation changes, the instantiation
        // is again eligible to fire".
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize item n)
             (p watch { [item ^n <n>] <P> } (write saw (count <P>)))",
        );
        ps.make_str("item", &[("n", Value::Int(1))]).unwrap();
        assert_eq!(ps.run(None).fired, 1);
        ps.make_str("item", &[("n", Value::Int(2))]).unwrap();
        assert_eq!(ps.run(None).fired, 1, "changed SOI fires again");
        assert_eq!(ps.take_output(), vec!["saw 1", "saw 2"]);
    }

    #[test]
    fn mea_strategy_prefers_first_ce() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize goal task)(literalize datum v)
             (p do-old (goal ^task old) (datum ^v <v>) (write old <v>) (remove 2))
             (p do-new (goal ^task new) (datum ^v <v>) (write new <v>) (remove 2))",
        );
        ps.set_strategy(Strategy::Mea);
        ps.make_str("goal", &[("task", Value::sym("old"))]).unwrap();
        ps.make_str("datum", &[("v", Value::Int(1))]).unwrap();
        ps.make_str("goal", &[("task", Value::sym("new"))]).unwrap();
        // MEA: the instantiation whose *first CE* matched the newer goal wins.
        let fired = ps.step().unwrap().unwrap();
        assert_eq!(fired.as_str(), "do-new");
    }

    #[test]
    fn negation_driven_control_loop() {
        // Classic counter loop: count down from 3 using negation as guard.
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize counter n)
             (p done (counter ^n 0) (write done) (remove 1))
             (p tick (counter ^n <n> ^n > 0) (write tick <n>) (modify 1 ^n (<n> - 1)))",
        );
        ps.make_str("counter", &[("n", Value::Int(3))]).unwrap();
        let outcome = ps.run(Some(100));
        assert_eq!(outcome.reason, StopReason::Quiescence);
        assert_eq!(ps.take_output(), vec!["tick 3", "tick 2", "tick 1", "done"]);
    }

    #[test]
    fn aggregates_in_rhs_output() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize emp dept sal)
             (p payroll (trigger ^on t) [emp ^sal <s>]
               (write count (count <s>) sum (sum <s>) min (min <s>) max (max <s>) avg (avg <s>))
               (remove 1))",
        );
        for s in [100i64, 200, 300] {
            ps.make_str("emp", &[("sal", Value::Int(s))]).unwrap();
        }
        ps.make_str("trigger", &[("on", Value::sym("t"))]).unwrap();
        let outcome = ps.run(None);
        assert_eq!(outcome.fired, 1);
        assert_eq!(
            ps.take_output(),
            vec!["count 3 sum 600 min 100 max 300 avg 200.0"]
        );
    }

    #[test]
    fn run_limit_and_halt() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize tick n)
             (p forever (tick ^n <n>) (modify 1 ^n (<n> + 1)))",
        );
        ps.make_str("tick", &[("n", Value::Int(0))]).unwrap();
        let outcome = ps.run(Some(7));
        assert_eq!(outcome.fired, 7);
        assert_eq!(outcome.reason, StopReason::Limit);
    }

    #[test]
    fn stats_track_actions_per_firing() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize item s)
             (p sweep { [item ^s pending] <P> } (set-modify <P> ^s done))",
        );
        for _ in 0..10 {
            ps.make_str("item", &[("s", Value::sym("pending"))])
                .unwrap();
        }
        ps.run(Some(10));
        let st = ps.stats();
        assert_eq!(st.firings, 1);
        assert_eq!(st.modifies, 10);
        assert!(
            st.actions_per_firing() >= 10.0,
            "C4: many actions per firing"
        );
    }

    #[test]
    fn tracing_names_fired_rules() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize a x)(p fire-me (a ^x 1) (remove 1))",
        );
        ps.set_tracing(true);
        ps.make_str("a", &[("x", Value::Int(1))]).unwrap();
        ps.run(None);
        let trace = ps.take_trace();
        assert_eq!(trace.len(), 1);
        assert!(trace[0].starts_with("FIRE fire-me"), "{:?}", trace);
        assert!(ps.take_trace().is_empty(), "trace drained");
    }

    #[test]
    fn rule_lookup_and_halt_state() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize a x)(p stop (a ^x 1) (halt))",
        );
        assert!(ps.rule("stop").is_some());
        assert!(ps.rule("nope").is_none());
        assert!(!ps.halted());
        ps.make_str("a", &[("x", Value::Int(1))]).unwrap();
        ps.run(None);
        assert!(ps.halted());
        // Further steps are no-ops once halted.
        assert_eq!(ps.step().unwrap(), None);
    }

    #[test]
    fn modify_wme_api_keeps_class_and_updates() {
        let mut ps = engine(
            MatcherKind::Rete,
            "(literalize a x y)(p never (a ^x 99) (halt))",
        );
        let t = ps
            .make_str("a", &[("x", Value::Int(1)), ("y", Value::Int(2))])
            .unwrap();
        let t2 = ps
            .modify_wme(t, &[(sorete_base::Symbol::new("x"), Value::Int(7))])
            .unwrap();
        assert!(t2 > t);
        let w = ps.wm().get(t2).unwrap();
        assert_eq!(w.get(sorete_base::Symbol::new("x")), Value::Int(7));
        assert_eq!(w.get(sorete_base::Symbol::new("y")), Value::Int(2));
        assert!(ps.wm().get(t).is_none());
    }

    #[test]
    fn retract_unknown_tag_errors() {
        let mut ps = engine(MatcherKind::Rete, "(literalize a x)(p r (a ^x 1) (halt))");
        let err = ps.retract_wme(sorete_base::TimeTag::new(99)).unwrap_err();
        assert!(err.to_string().contains("99"), "{}", err);
    }

    #[test]
    fn literalize_validation_flows_through_engine() {
        let mut ps = engine(MatcherKind::Rete, "(literalize a x)(p r (a ^x 1) (halt))");
        let err = ps.make_str("a", &[("wings", Value::Int(2))]).unwrap_err();
        assert!(err.to_string().contains("wings"), "{}", err);
        // Undeclared classes stay lenient even with other literalizes.
        assert!(ps.make_str("adhoc", &[("q", Value::Int(1))]).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        assert!(ps
            .load_program("(p broken (a ^x <v>) (write <nope>))")
            .is_err());
        assert!(ps.load_program("(p ok (a ^x 1 (write hi))").is_err()); // paren error
    }
}
