//! Engine error type.

use sorete_base::BaseError;
use sorete_lang::{AnalyzeError, EvalError, ParseError};
use std::fmt;

/// Anything that can go wrong loading or running a production system.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// A rule failed semantic analysis.
    Analyze(AnalyzeError),
    /// An RHS or `:test` expression failed to evaluate.
    Eval(EvalError),
    /// Working-memory level failure.
    Base(BaseError),
    /// Engine-level failure (bad RHS target, misuse of set constructs, …).
    Rhs(String),
    /// A [`crate::engine::FaultInjector`] deliberately failed this action
    /// (0-based index within the run). Only produced under test harnesses.
    FaultInjected {
        /// Index of the failed primitive action, counted from run start.
        action: u64,
    },
    /// Durability-layer failure: write-ahead log IO, corrupt checkpoint
    /// text, or an inconsistent replay.
    Durability(String),
    /// A panic unwound out of a firing and was caught by the supervisor's
    /// `catch_unwind` fence. Carries the panic payload rendered as text;
    /// the firing has been handled per the active [`crate::RecoveryPolicy`].
    Panic(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(e) => e.fmt(f),
            CoreError::Analyze(e) => e.fmt(f),
            CoreError::Eval(e) => e.fmt(f),
            CoreError::Base(e) => e.fmt(f),
            CoreError::Rhs(m) => write!(f, "RHS error: {}", m),
            CoreError::FaultInjected { action } => {
                write!(f, "injected fault at action {}", action)
            }
            CoreError::Durability(m) => write!(f, "durability error: {}", m),
            CoreError::Panic(m) => write!(f, "panic in firing: {}", m),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}
impl From<AnalyzeError> for CoreError {
    fn from(e: AnalyzeError) -> Self {
        CoreError::Analyze(e)
    }
}
impl From<EvalError> for CoreError {
    fn from(e: EvalError) -> Self {
        CoreError::Eval(e)
    }
}
impl From<BaseError> for CoreError {
    fn from(e: BaseError) -> Self {
        CoreError::Base(e)
    }
}
impl From<sorete_reldb::DbError> for CoreError {
    fn from(e: sorete_reldb::DbError) -> Self {
        CoreError::Durability(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_sources() {
        let e = CoreError::Rhs("boom".into());
        assert!(e.to_string().contains("boom"));
        let e: CoreError = BaseError::UnknownTag(3).into();
        assert!(e.to_string().contains("3"));
    }
}
