//! `explain <rule>` and `why-not <rule>`: reconstruct why a rule's
//! conflict-set instantiations exist — or why none do.
//!
//! Both commands render from an [`ExplainSource`], a matcher-independent
//! snapshot of everything the explanation needs: the rule's conflict-set
//! entries, its network path, its condition classes, the WME store, and
//! the event history. A source can be built from a **live engine**
//! (`explain` in the REPL, history from the in-memory event log enabled
//! with [`ProductionSystem::set_event_log`]) or from a **crash bundle**
//! (`sorete debug <bundle> explain <rule>`, history from the flight
//! recorder ring) — the rendering is shared, so the offline inspector's
//! output matches the live sink's byte for byte over the same state.

use crate::bundle::CrashBundle;
use crate::engine::{render_wme, ProductionSystem};
use crate::error::CoreError;
use sorete_base::{FxHashMap, TraceEvent};
use std::fmt::Write as _;

/// One conflict-set entry, reduced to what the renderers need.
#[derive(Clone, Debug)]
pub struct ExplainItem {
    /// Instantiation key repr (empty for a whole-set SOI).
    pub key: String,
    /// Supporting time tags, one row per tuple match.
    pub rows: Vec<Vec<u64>>,
    /// Rendered aggregate values, space-joined (empty = none).
    pub aggregates: String,
}

/// Everything `explain`/`why-not` render from, decoupled from where it
/// came from (live engine or crash bundle).
#[derive(Clone, Debug)]
pub struct ExplainSource {
    /// The rule under explanation.
    pub rule: String,
    /// Match algorithm name (for the network-path header).
    pub matcher: String,
    /// The rule's static network path, when the backend has a network.
    pub path: Option<Vec<String>>,
    /// The rule's conflict-set entries, sorted by key.
    pub items: Vec<ExplainItem>,
    /// Event history: the live event log, or the bundle's flight ring.
    pub events: Vec<TraceEvent>,
    /// Tag → rendered WME for every live WME the renderers may reference.
    pub wmes: FxHashMap<u64, String>,
    /// The rule's condition elements in source order: `(negated, class)`.
    pub conds: Vec<(bool, String)>,
    /// Live WME count per class (alpha-level candidates for `why-not`).
    pub class_counts: FxHashMap<String, u64>,
}

/// Render the `explain` report (see module docs; the output format is
/// stable — tests diff it between live and bundle sources).
pub fn render_explain(src: &ExplainSource) -> String {
    let mut asserted: FxHashMap<u64, u64> = FxHashMap::default();
    let mut fire_cycles: Vec<u64> = Vec::new();
    let (mut inserts, mut removes, mut retimes) = (0u64, 0u64, 0u64);
    for ev in &src.events {
        match ev {
            TraceEvent::WmeAssert { cycle, tag, .. } => {
                asserted.insert(tag.raw(), *cycle);
            }
            TraceEvent::Fire { cycle, rule, .. } if rule.as_str() == src.rule => {
                fire_cycles.push(*cycle);
            }
            TraceEvent::CsInsert { rule, .. } if rule.as_str() == src.rule => inserts += 1,
            TraceEvent::CsRemove { rule, .. } if rule.as_str() == src.rule => removes += 1,
            TraceEvent::CsRetime { rule, .. } if rule.as_str() == src.rule => retimes += 1,
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "explain {} — {} instantiation(s) in the conflict set",
        src.rule,
        src.items.len()
    );

    if let Some(path) = &src.path {
        let _ = writeln!(out, "network path ({}):", src.matcher);
        for step in path {
            let _ = writeln!(out, "  {}", step);
        }
    }

    for (i, item) in src.items.iter().enumerate() {
        let _ = writeln!(
            out,
            "[{}] key: {}",
            i + 1,
            // An SOI with no :scalar clause groups the whole match set
            // under one (empty) key.
            if item.key.is_empty() {
                "(whole set)"
            } else {
                &item.key
            }
        );
        if !item.aggregates.is_empty() {
            let _ = writeln!(out, "    aggregates: {}", item.aggregates);
        }
        for row in &item.rows {
            for &tag in row {
                let wme = match src.wmes.get(&tag) {
                    Some(w) => w.as_str(),
                    None => "(retracted)",
                };
                match asserted.get(&tag) {
                    Some(c) => {
                        let _ = writeln!(out, "    {}: {}  [asserted cycle {}]", tag, wme, c);
                    }
                    None => {
                        let _ = writeln!(out, "    {}: {}", tag, wme);
                    }
                }
            }
        }
    }

    if src.events.is_empty() {
        let _ = writeln!(
            out,
            "(event log off — enable it to see assert cycles and firing history)"
        );
    } else {
        let _ = writeln!(
            out,
            "history: {} cs insert(s), {} remove(s), {} retime(s); fired {} time(s){}",
            inserts,
            removes,
            retimes,
            fire_cycles.len(),
            if fire_cycles.is_empty() {
                String::new()
            } else {
                let cs: Vec<String> = fire_cycles.iter().map(|c| c.to_string()).collect();
                format!(" (cycle {})", cs.join(", "))
            }
        );
    }
    out
}

/// Render the `why-not` report: why a rule has no (or only stale)
/// instantiations — which condition stopped it, from the captured history.
pub fn render_why_not(src: &ExplainSource) -> String {
    let mut out = String::new();
    if !src.items.is_empty() {
        let _ = writeln!(
            out,
            "why-not {} — {} instantiation(s) ARE in the conflict set; \
             the rule can fire (see `explain {}`)",
            src.rule,
            src.items.len(),
            src.rule
        );
        return out;
    }
    let _ = writeln!(
        out,
        "why-not {} — no instantiations in the conflict set",
        src.rule
    );
    let _ = writeln!(out, "conditions:");
    for (i, (negated, class)) in src.conds.iter().enumerate() {
        let n = src.class_counts.get(class).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  [{}] {} {}: {} candidate WME(s) of this class",
            i + 1,
            if *negated { "-" } else { "+" },
            class,
            n
        );
    }

    // Rendered WMEs by tag, from assert history (covers retracted tags
    // the live WM store no longer holds).
    let mut known: FxHashMap<u64, &str> = FxHashMap::default();
    for ev in &src.events {
        if let TraceEvent::WmeAssert { tag, wme, .. } = ev {
            known.insert(tag.raw(), wme.as_str());
        }
    }

    // Position (newest) of this rule's last CsRemove, if any.
    let last_remove = src.events.iter().rposition(
        |ev| matches!(ev, TraceEvent::CsRemove { rule, .. } if rule.as_str() == src.rule),
    );

    if let Some(at) = last_remove {
        // Lost match: walk back from the remove to the retraction that
        // caused it, then map the retracted class to a condition.
        let retract = src.events[..at].iter().rev().find_map(|ev| match ev {
            TraceEvent::WmeRetract { cycle, tag } => Some((*cycle, tag.raw())),
            _ => None,
        });
        match retract {
            Some((cycle, tag)) => {
                let wme = known.get(&tag).copied().unwrap_or("(unknown)");
                let class = wme_class(wme);
                let cond = src
                    .conds
                    .iter()
                    .position(|(neg, c)| !neg && c == class)
                    .map(|i| i + 1);
                match cond {
                    Some(i) => {
                        let _ = writeln!(
                            out,
                            "verdict: lost match — the last instantiation left the conflict \
                             set after {}: {} was retracted (cycle {}); condition [{}] ({}) \
                             lost its join support",
                            tag, wme, cycle, i, class
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "verdict: lost match — the last instantiation left the conflict \
                             set after {}: {} was retracted (cycle {})",
                            tag, wme, cycle
                        );
                    }
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "verdict: lost match — the last instantiation left the conflict set, \
                     but no retraction survives in the captured history window"
                );
            }
        }
    } else {
        // Never matched (in the captured window): find the first positive
        // condition with no alpha-level candidates; if every class has
        // candidates, the join chain itself never closed.
        let missing = src.conds.iter().enumerate().find(|(_, (neg, class))| {
            !neg && src.class_counts.get(class).copied().unwrap_or(0) == 0
        });
        match missing {
            Some((i, (_, class))) => {
                let _ = writeln!(
                    out,
                    "verdict: never matched — condition [{}] ({}) has no WMEs of its \
                     class in working memory",
                    i + 1,
                    class
                );
            }
            None => {
                let last_pos = src.conds.iter().rposition(|(neg, _)| !neg);
                match last_pos {
                    Some(i) => {
                        let _ = writeln!(
                            out,
                            "verdict: never matched — every positive condition has candidate \
                             WMEs of its class, but the joins never produced a full row; the \
                             match stops at or before condition [{}] ({})",
                            i + 1,
                            src.conds[i].1
                        );
                    }
                    None => {
                        let _ = writeln!(out, "verdict: the rule has no positive conditions");
                    }
                }
            }
        }
    }

    for (i, (negated, class)) in src.conds.iter().enumerate() {
        let n = src.class_counts.get(class).copied().unwrap_or(0);
        if *negated && n > 0 {
            let _ = writeln!(
                out,
                "note: negated condition [{}] ({}) has {} live WME(s) of that class — \
                 any one satisfying its tests blocks the rule",
                i + 1,
                class,
                n
            );
        }
    }
    out
}

/// Class name of a rendered WME `(class ^attr v …)`.
fn wme_class(rendered: &str) -> &str {
    let s = rendered.strip_prefix('(').unwrap_or(rendered);
    s.split([' ', ')']).next().unwrap_or(s)
}

impl ProductionSystem {
    fn explain_source(&self, name: &str) -> Result<ExplainSource, CoreError> {
        let id = self
            .rule_id(name)
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` to explain", name)))?;
        let mut items: Vec<_> = self
            .conflict_items()
            .into_iter()
            .filter(|item| item.key.rule() == id)
            .collect();
        items.sort_by_key(|item| item.key.repr());
        let mut wmes: FxHashMap<u64, String> = FxHashMap::default();
        let items = items
            .into_iter()
            .map(|item| {
                for row in &item.rows {
                    for &t in row.iter() {
                        if let Some(w) = self.wm().get(t) {
                            wmes.entry(t.raw()).or_insert_with(|| render_wme(w));
                        }
                    }
                }
                let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
                ExplainItem {
                    key: item.key.repr(),
                    rows: item
                        .rows
                        .iter()
                        .map(|r| r.iter().map(|t| t.raw()).collect())
                        .collect(),
                    aggregates: aggs.join(" "),
                }
            })
            .collect();
        let conds = self
            .rule(name)
            .map(|ar| {
                ar.ces
                    .iter()
                    .map(|ce| (ce.negated, ce.class.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        let mut class_counts: FxHashMap<String, u64> = FxHashMap::default();
        for w in self.wm().iter() {
            *class_counts.entry(w.class.to_string()).or_insert(0) += 1;
        }
        Ok(ExplainSource {
            rule: name.to_string(),
            matcher: self.matcher_name().to_string(),
            path: self.rule_network_path(name),
            items,
            events: self.trace_events(),
            wmes,
            conds,
            class_counts,
        })
    }

    /// Explain a rule's current conflict-set entries. Errors when the rule
    /// is unknown (excised rules count as unknown: nothing left to explain).
    pub fn explain(&self, name: &str) -> Result<String, CoreError> {
        Ok(render_explain(&self.explain_source(name)?))
    }

    /// Explain why a rule has **no** conflict-set entries: which condition
    /// has no candidates, or which retraction broke the last match.
    pub fn why_not(&self, name: &str) -> Result<String, CoreError> {
        Ok(render_why_not(&self.explain_source(name)?))
    }
}

impl CrashBundle {
    fn explain_source(&self, name: &str) -> Result<ExplainSource, CoreError> {
        let rule = self
            .rule(name)
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` in this bundle", name)))?;
        let mut items: Vec<_> = self.conflict.iter().filter(|i| i.rule == name).collect();
        items.sort_by(|a, b| a.key.cmp(&b.key));
        let items = items
            .into_iter()
            .map(|i| ExplainItem {
                key: i.key.clone(),
                rows: i.rows.clone(),
                aggregates: i.aggregates.clone(),
            })
            .collect();
        let mut class_counts: FxHashMap<String, u64> = FxHashMap::default();
        for rendered in self.wm.values() {
            *class_counts
                .entry(wme_class(rendered).to_string())
                .or_insert(0) += 1;
        }
        Ok(ExplainSource {
            rule: name.to_string(),
            matcher: self.get("matcher").unwrap_or("?").to_string(),
            path: (!rule.path.is_empty()).then(|| rule.path.clone()),
            items,
            events: self.events.clone(),
            wmes: self.wm.clone(),
            conds: rule.conds.clone(),
            class_counts,
        })
    }

    /// Offline `explain` from the bundle's captured state — same renderer
    /// (and output) as [`ProductionSystem::explain`] over the live engine.
    pub fn explain(&self, name: &str) -> Result<String, CoreError> {
        Ok(render_explain(&self.explain_source(name)?))
    }

    /// Offline `why-not` from the bundle's captured state.
    pub fn why_not(&self, name: &str) -> Result<String, CoreError> {
        Ok(render_why_not(&self.explain_source(name)?))
    }
}

#[cfg(test)]
mod tests {
    use crate::{MatcherKind, ProductionSystem};
    use sorete_base::Value;

    fn engine(kind: MatcherKind) -> ProductionSystem {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(
            "(literalize player name team)
             (p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
               (write <n1> vs <n2>))",
        )
        .unwrap();
        ps
    }

    #[test]
    fn explain_lists_supporting_wmes_and_path() {
        let mut ps = engine(MatcherKind::Rete);
        ps.set_event_log(true);
        ps.make_str(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        )
        .unwrap();
        ps.make_str(
            "player",
            &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
        )
        .unwrap();
        let text = ps.explain("compete").unwrap();
        assert!(text.contains("1 instantiation(s)"), "{}", text);
        // `network path (parallel-rete):` under a SORETE_JOBS override.
        assert!(
            text.contains("network path (rete):") || text.contains("network path (parallel-rete):"),
            "{}",
            text
        );
        assert!(text.contains("production compete"), "{}", text);
        assert!(text.contains("^name Jack"), "{}", text);
        assert!(text.contains("^name Sue"), "{}", text);
        assert!(text.contains("[asserted cycle 0]"), "{}", text);
        ps.run(None);
        let text = ps.explain("compete").unwrap();
        assert!(text.contains("fired 1 time(s) (cycle 1)"), "{}", text);
    }

    #[test]
    fn explain_without_event_log_still_shows_state() {
        let mut ps = engine(MatcherKind::Treat);
        ps.make_str(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        )
        .unwrap();
        ps.make_str(
            "player",
            &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
        )
        .unwrap();
        let text = ps.explain("compete").unwrap();
        assert!(text.contains("1 instantiation(s)"), "{}", text);
        assert!(text.contains("event log off"), "{}", text);
        // TREAT has no network to describe.
        assert!(!text.contains("network path"), "{}", text);
    }

    #[test]
    fn explain_unknown_rule_errors() {
        let ps = engine(MatcherKind::Rete);
        assert!(ps.explain("nope").is_err());
        assert!(ps.why_not("nope").is_err());
    }

    #[test]
    fn why_not_reports_missing_class() {
        let ps = engine(MatcherKind::Rete);
        let text = ps.why_not("compete").unwrap();
        assert!(text.contains("no instantiations"), "{}", text);
        assert!(
            text.contains("condition [1] (player) has no WMEs"),
            "{}",
            text
        );
    }

    #[test]
    fn why_not_reports_join_stop_when_classes_have_candidates() {
        let mut ps = engine(MatcherKind::Rete);
        // Two A-team players: condition classes are populated but the
        // B-team join never closes.
        for n in ["Jack", "Janice"] {
            ps.make_str(
                "player",
                &[("name", Value::sym(n)), ("team", Value::sym("A"))],
            )
            .unwrap();
        }
        let text = ps.why_not("compete").unwrap();
        assert!(text.contains("joins never produced a full row"), "{}", text);
        assert!(text.contains("condition [2] (player)"), "{}", text);
    }

    #[test]
    fn why_not_reports_lost_match_after_retraction() {
        let mut ps = engine(MatcherKind::Rete);
        ps.set_event_log(true);
        ps.make_str(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        )
        .unwrap();
        let sue = ps
            .make_str(
                "player",
                &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
            )
            .unwrap();
        ps.retract_wme(sue).unwrap();
        let text = ps.why_not("compete").unwrap();
        assert!(text.contains("lost match"), "{}", text);
        assert!(text.contains("^name Sue"), "{}", text);
        assert!(text.contains("was retracted"), "{}", text);
    }

    #[test]
    fn why_not_when_rule_can_fire_points_at_explain() {
        let mut ps = engine(MatcherKind::Rete);
        ps.make_str(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        )
        .unwrap();
        ps.make_str(
            "player",
            &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
        )
        .unwrap();
        let text = ps.why_not("compete").unwrap();
        assert!(text.contains("ARE in the conflict set"), "{}", text);
    }
}
