//! `explain <rule>`: reconstruct why a rule's conflict-set instantiations
//! exist — which WMEs support them, which network path produced them, and
//! (when the event log is on) when those WMEs arrived and how often the
//! rule has fired.
//!
//! The static part (current instantiations, network path) works from live
//! engine state alone; the historical part reads the in-memory event
//! stream enabled with [`ProductionSystem::set_event_log`].

use crate::engine::{render_wme, ProductionSystem};
use crate::error::CoreError;
use sorete_base::{FxHashMap, TimeTag, TraceEvent};
use std::fmt::Write as _;

impl ProductionSystem {
    /// Explain a rule's current conflict-set entries. Errors when the rule
    /// is unknown (excised rules count as unknown: nothing left to explain).
    pub fn explain(&self, name: &str) -> Result<String, CoreError> {
        let id = self
            .rule_id(name)
            .ok_or_else(|| CoreError::Rhs(format!("no rule named `{}` to explain", name)))?;

        // Historical context from the event log, when enabled: for each
        // tag, the cycle it was asserted in; for the rule, its firing
        // cycles and conflict-set churn.
        let events = self.trace_events();
        let mut asserted: FxHashMap<TimeTag, u64> = FxHashMap::default();
        let mut fire_cycles: Vec<u64> = Vec::new();
        let (mut inserts, mut removes, mut retimes) = (0u64, 0u64, 0u64);
        for ev in &events {
            match ev {
                TraceEvent::WmeAssert { cycle, tag, .. } => {
                    asserted.insert(*tag, *cycle);
                }
                TraceEvent::Fire { cycle, rule, .. } if rule.as_str() == name => {
                    fire_cycles.push(*cycle);
                }
                TraceEvent::CsInsert { rule, .. } if rule.as_str() == name => inserts += 1,
                TraceEvent::CsRemove { rule, .. } if rule.as_str() == name => removes += 1,
                TraceEvent::CsRetime { rule, .. } if rule.as_str() == name => retimes += 1,
                _ => {}
            }
        }

        let mut items: Vec<_> = self
            .conflict_items()
            .into_iter()
            .filter(|item| item.key.rule() == id)
            .collect();
        items.sort_by_key(|item| item.key.repr());

        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain {} — {} instantiation(s) in the conflict set",
            name,
            items.len()
        );

        if let Some(path) = self.rule_network_path(name) {
            let _ = writeln!(out, "network path ({}):", self.matcher_name());
            for step in &path {
                let _ = writeln!(out, "  {}", step);
            }
        }

        for (i, item) in items.iter().enumerate() {
            let repr = item.key.repr();
            let _ = writeln!(
                out,
                "[{}] key: {}",
                i + 1,
                // An SOI with no :scalar clause groups the whole match set
                // under one (empty) key.
                if repr.is_empty() {
                    "(whole set)"
                } else {
                    &repr
                }
            );
            if !item.aggregates.is_empty() {
                let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(out, "    aggregates: {}", aggs.join(" "));
            }
            for row in &item.rows {
                for &tag in row.iter() {
                    let wme = match self.wm().get(tag) {
                        Some(w) => render_wme(w),
                        None => "(retracted)".to_string(),
                    };
                    match asserted.get(&tag) {
                        Some(c) => {
                            let _ = writeln!(out, "    {}: {}  [asserted cycle {}]", tag, wme, c);
                        }
                        None => {
                            let _ = writeln!(out, "    {}: {}", tag, wme);
                        }
                    }
                }
            }
        }

        if events.is_empty() {
            let _ = writeln!(
                out,
                "(event log off — enable it to see assert cycles and firing history)"
            );
        } else {
            let _ = writeln!(
                out,
                "history: {} cs insert(s), {} remove(s), {} retime(s); fired {} time(s){}",
                inserts,
                removes,
                retimes,
                fire_cycles.len(),
                if fire_cycles.is_empty() {
                    String::new()
                } else {
                    let cs: Vec<String> = fire_cycles.iter().map(|c| c.to_string()).collect();
                    format!(" (cycle {})", cs.join(", "))
                }
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{MatcherKind, ProductionSystem};
    use sorete_base::Value;

    fn engine(kind: MatcherKind) -> ProductionSystem {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(
            "(literalize player name team)
             (p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
               (write <n1> vs <n2>))",
        )
        .unwrap();
        ps
    }

    #[test]
    fn explain_lists_supporting_wmes_and_path() {
        let mut ps = engine(MatcherKind::Rete);
        ps.set_event_log(true);
        ps.make_str(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        )
        .unwrap();
        ps.make_str(
            "player",
            &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
        )
        .unwrap();
        let text = ps.explain("compete").unwrap();
        assert!(text.contains("1 instantiation(s)"), "{}", text);
        // `network path (parallel-rete):` under a SORETE_JOBS override.
        assert!(
            text.contains("network path (rete):") || text.contains("network path (parallel-rete):"),
            "{}",
            text
        );
        assert!(text.contains("production compete"), "{}", text);
        assert!(text.contains("^name Jack"), "{}", text);
        assert!(text.contains("^name Sue"), "{}", text);
        assert!(text.contains("[asserted cycle 0]"), "{}", text);
        ps.run(None);
        let text = ps.explain("compete").unwrap();
        assert!(text.contains("fired 1 time(s) (cycle 1)"), "{}", text);
    }

    #[test]
    fn explain_without_event_log_still_shows_state() {
        let mut ps = engine(MatcherKind::Treat);
        ps.make_str(
            "player",
            &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
        )
        .unwrap();
        ps.make_str(
            "player",
            &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
        )
        .unwrap();
        let text = ps.explain("compete").unwrap();
        assert!(text.contains("1 instantiation(s)"), "{}", text);
        assert!(text.contains("event log off"), "{}", text);
        // TREAT has no network to describe.
        assert!(!text.contains("network path"), "{}", text);
    }

    #[test]
    fn explain_unknown_rule_errors() {
        let ps = engine(MatcherKind::Rete);
        assert!(ps.explain("nope").is_err());
    }
}
