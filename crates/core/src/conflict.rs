//! The conflict set and OPS5 conflict-resolution strategies.
//!
//! The set is maintained from matcher deltas (`+`/`-`/`time` tokens).
//! Refraction records *which version* of an entry fired: a regular
//! instantiation fires once per appearance, while an SOI whose contents
//! change (version bump carried by a `time` token) becomes eligible to fire
//! again — "if any part of the instantiation changes, the instantiation is
//! again eligible to fire" (paper §6).

use sorete_base::{ConflictItem, CsDelta, FxHashMap, FxHashSet, InstKey, RuleId, TimeTag};
use std::cmp::Ordering;

/// OPS5 conflict-resolution strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Refraction → recency (LEX on sorted time tags) → specificity.
    #[default]
    Lex,
    /// Refraction → recency of the *first* CE's WME → LEX.
    Mea,
}

/// The conflict set.
#[derive(Default)]
pub struct ConflictSet {
    items: FxHashMap<InstKey, Entry>,
    /// Refraction memory: the version of each key that already fired.
    fired: FxHashMap<InstKey, u64>,
    /// Monotonic arrival counter for deterministic final tie-breaks.
    arrivals: u64,
    /// While a journal is open, the prior `fired` value of every key whose
    /// refraction state changes is recorded (first touch wins), so a
    /// rolled-back firing can restore refraction exactly.
    journal: Option<FxHashMap<InstKey, Option<u64>>>,
    /// Rules under supervisor quarantine: their instantiations stay derived
    /// and keep normal refraction bookkeeping, but [`Self::select`] never
    /// picks them. Re-admission just removes the rule from this set — the
    /// preserved entries become selectable again immediately.
    quarantined: FxHashSet<RuleId>,
}

struct Entry {
    item: ConflictItem,
    arrival: u64,
    /// True when a slim `time` token updated version/recency but the rows
    /// are outdated; the engine re-materializes before firing.
    stale: bool,
}

impl ConflictSet {
    /// Empty set.
    pub fn new() -> ConflictSet {
        ConflictSet::default()
    }

    /// Apply one matcher delta.
    pub fn apply(&mut self, delta: CsDelta) {
        match delta {
            CsDelta::Insert(item) => {
                self.arrivals += 1;
                let arrival = self.arrivals;
                self.items.insert(
                    item.key.clone(),
                    Entry {
                        item,
                        arrival,
                        stale: false,
                    },
                );
            }
            CsDelta::Remove(key) => {
                self.items.remove(&key);
                // Leaving the conflict set clears refraction: if the same
                // instantiation is ever re-derived it may fire again.
                self.journal_fired(&key);
                self.fired.remove(&key);
            }
            CsDelta::Retime(info) => {
                // The paper's pointer semantics: the entry is updated in
                // place; only its position/version metadata travels.
                self.arrivals += 1;
                let arrival = self.arrivals;
                if let Some(entry) = self.items.get_mut(&info.key) {
                    entry.item.version = info.version;
                    entry.item.recency = info.recency;
                    entry.arrival = arrival;
                    entry.stale = true;
                }
            }
        }
    }

    /// Number of entries (fired or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no entries at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Entries in no particular order.
    pub fn items(&self) -> impl Iterator<Item = &ConflictItem> {
        self.items.values().map(|e| &e.item)
    }

    /// Record that an entry fired (at its current version).
    pub fn mark_fired(&mut self, key: &InstKey, version: u64) {
        self.journal_fired(key);
        self.fired.insert(key.clone(), version);
    }

    /// Start recording refraction changes. Call before a firing whose
    /// effects may need to be rolled back.
    pub fn begin_journal(&mut self) {
        self.journal = Some(FxHashMap::default());
    }

    /// Close the journal, returning the recorded prior refraction values.
    /// Returns an empty map when no journal was open.
    pub fn take_journal(&mut self) -> FxHashMap<InstKey, Option<u64>> {
        self.journal.take().unwrap_or_default()
    }

    /// Discard the journal (the firing committed; nothing to undo).
    pub fn end_journal(&mut self) {
        self.journal = None;
    }

    /// Restore refraction state captured by [`Self::take_journal`]. Must be
    /// applied *after* the working-memory rollback has been replayed through
    /// the matcher, so re-derived entries regain their pre-firing refraction.
    pub fn restore_fired(&mut self, prior: FxHashMap<InstKey, Option<u64>>) {
        for (key, value) in prior {
            match value {
                Some(v) => {
                    self.fired.insert(key, v);
                }
                None => {
                    self.fired.remove(&key);
                }
            }
        }
    }

    fn journal_fired(&mut self, key: &InstKey) {
        if let Some(journal) = &mut self.journal {
            if !journal.contains_key(key) {
                journal.insert(key.clone(), self.fired.get(key).copied());
            }
        }
    }

    /// Is the entry refracted (already fired at its current version)?
    pub fn is_refracted(&self, item: &ConflictItem) -> bool {
        self.fired
            .get(&item.key)
            .is_some_and(|&v| v >= item.version)
    }

    /// Select the dominant unrefracted entry under `strategy`. The second
    /// component is `true` when the entry's rows are stale (a slim `time`
    /// token arrived) and must be re-materialized before firing.
    pub fn select(&self, strategy: Strategy) -> Option<(&ConflictItem, bool)> {
        self.items
            .values()
            .filter(|e| {
                !self.is_refracted(&e.item) && !self.quarantined.contains(&e.item.key.rule())
            })
            .max_by(|a, b| compare(strategy, a, b))
            .map(|e| (&e.item, e.stale))
    }

    /// Quarantine (or re-admit) every instantiation of `rule`. Quarantined
    /// entries remain in the set with live refraction state; they are only
    /// excluded from [`Self::select`].
    pub fn set_rule_quarantined(&mut self, rule: RuleId, quarantined: bool) {
        if quarantined {
            self.quarantined.insert(rule);
        } else {
            self.quarantined.remove(&rule);
        }
    }

    /// Is `rule` currently quarantined?
    pub fn is_rule_quarantined(&self, rule: RuleId) -> bool {
        self.quarantined.contains(&rule)
    }

    /// Rules currently quarantined, in no particular order.
    pub fn quarantined_rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.quarantined.iter().copied()
    }

    /// Count of unrefracted entries belonging to quarantined rules — work
    /// the engine *would* do if the rules were re-admitted. A quiescent run
    /// with this non-zero stopped because of quarantine, not true
    /// quiescence.
    pub fn quarantined_fireable(&self) -> usize {
        self.items
            .values()
            .filter(|e| {
                !self.is_refracted(&e.item) && self.quarantined.contains(&e.item.key.rule())
            })
            .count()
    }

    /// Refresh a stale entry with re-materialized contents.
    pub fn refresh(&mut self, item: ConflictItem) {
        if let Some(entry) = self.items.get_mut(&item.key) {
            entry.item = item;
            entry.stale = false;
        }
    }

    /// Keys of entries that are currently refracted (fired at or above
    /// their current version). This is exactly the refraction state a
    /// checkpoint must carry: keys absent from the set need no memory,
    /// and dead `fired` entries for keys no longer in the set are
    /// irrelevant by construction.
    pub fn refracted_keys(&self) -> Vec<&InstKey> {
        self.items
            .values()
            .filter(|e| self.is_refracted(&e.item))
            .map(|e| &e.item.key)
            .collect()
    }

    /// Current content version of the entry under `key`, if present.
    pub fn version_of(&self, key: &InstKey) -> Option<u64> {
        self.items.get(key).map(|e| e.item.version)
    }

    /// Count of unrefracted (fireable) entries.
    pub fn fireable(&self) -> usize {
        self.items
            .values()
            .filter(|e| !self.is_refracted(&e.item))
            .count()
    }
}

fn compare(strategy: Strategy, a: &Entry, b: &Entry) -> Ordering {
    let ord = match strategy {
        Strategy::Lex => lex(&a.item, &b.item),
        Strategy::Mea => {
            let fa = first_ce_tag(&a.item);
            let fb = first_ce_tag(&b.item);
            fa.cmp(&fb).then_with(|| lex(&a.item, &b.item))
        }
    };
    // Deterministic final tie-break: later arrival dominates.
    ord.then_with(|| a.arrival.cmp(&b.arrival))
}

fn first_ce_tag(item: &ConflictItem) -> TimeTag {
    item.rows
        .first()
        .and_then(|r| r.first().copied())
        .unwrap_or_default()
}

/// OPS5 LEX: compare descending-sorted tag lists lexicographically (the
/// matcher precomputed `recency`), then specificity.
fn lex(a: &ConflictItem, b: &ConflictItem) -> Ordering {
    a.recency
        .iter()
        .zip(b.recency.iter())
        .map(|(x, y)| x.cmp(y))
        .find(|o| *o != Ordering::Equal)
        .unwrap_or_else(|| a.recency.len().cmp(&b.recency.len()))
        .then_with(|| a.specificity.cmp(&b.specificity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::{RuleId, Value};

    fn item(rule: u32, tags: &[u64], specificity: u32, version: u64) -> ConflictItem {
        let t: Vec<TimeTag> = tags.iter().map(|&x| TimeTag::new(x)).collect();
        let mut rec = t.clone();
        rec.sort_unstable_by(|a, b| b.cmp(a));
        ConflictItem {
            key: InstKey::Tuple {
                rule: RuleId::new(rule as usize),
                tags: t.clone().into(),
            },
            rows: vec![t.into()],
            aggregates: vec![Value::Int(0)],
            version,
            recency: rec.into(),
            specificity,
        }
    }

    #[test]
    fn lex_prefers_recency() {
        let mut cs = ConflictSet::new();
        cs.apply(CsDelta::Insert(item(0, &[1, 2], 2, 0)));
        cs.apply(CsDelta::Insert(item(1, &[1, 3], 2, 0)));
        let (sel, _) = cs.select(Strategy::Lex).unwrap();
        assert_eq!(sel.key.rule(), RuleId::new(1));
    }

    #[test]
    fn lex_specificity_breaks_ties() {
        let mut cs = ConflictSet::new();
        cs.apply(CsDelta::Insert(item(0, &[5], 1, 0)));
        cs.apply(CsDelta::Insert(item(1, &[5], 9, 0)));
        let (sel, _) = cs.select(Strategy::Lex).unwrap();
        assert_eq!(sel.key.rule(), RuleId::new(1));
    }

    #[test]
    fn longer_recency_dominates_equal_prefix() {
        let mut cs = ConflictSet::new();
        cs.apply(CsDelta::Insert(item(0, &[5], 1, 0)));
        cs.apply(CsDelta::Insert(item(1, &[5, 2], 1, 0)));
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(1)
        );
    }

    #[test]
    fn mea_prefers_first_ce_recency() {
        let mut cs = ConflictSet::new();
        // LEX would pick rule 0 (tag 9); MEA looks at the first CE only.
        cs.apply(CsDelta::Insert(item(0, &[1, 9], 1, 0)));
        cs.apply(CsDelta::Insert(item(1, &[2, 3], 1, 0)));
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(0)
        );
        assert_eq!(
            cs.select(Strategy::Mea).unwrap().0.key.rule(),
            RuleId::new(1)
        );
    }

    #[test]
    fn refraction_blocks_refire_until_version_changes() {
        let mut cs = ConflictSet::new();
        let it = item(0, &[4], 1, 1);
        cs.apply(CsDelta::Insert(it.clone()));
        assert_eq!(cs.fireable(), 1);
        cs.mark_fired(&it.key, it.version);
        assert_eq!(cs.fireable(), 0);
        assert!(cs.select(Strategy::Lex).is_none());
        // The SOI changes → version bumps → eligible again (§6).
        let updated = item(0, &[4], 1, 2);
        cs.apply(CsDelta::Retime(sorete_base::RetimeInfo {
            key: updated.key.clone(),
            version: updated.version,
            recency: updated.recency.clone(),
        }));
        assert_eq!(cs.fireable(), 1);
        let (_, stale) = cs.select(Strategy::Lex).unwrap();
        assert!(stale, "rows must be re-materialized before firing");
        cs.refresh(updated);
        let (_, stale) = cs.select(Strategy::Lex).unwrap();
        assert!(!stale);
    }

    #[test]
    fn full_ties_break_by_arrival() {
        let mut cs = ConflictSet::new();
        // Same recency, same specificity, different rules: the later
        // arrival wins deterministically.
        cs.apply(CsDelta::Insert(item(0, &[7], 3, 0)));
        cs.apply(CsDelta::Insert(item(1, &[7], 3, 0)));
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(1)
        );
    }

    #[test]
    fn retime_of_absent_key_is_ignored() {
        let mut cs = ConflictSet::new();
        let ghost = item(0, &[1], 1, 5);
        cs.apply(CsDelta::Retime(sorete_base::RetimeInfo {
            key: ghost.key.clone(),
            version: ghost.version,
            recency: ghost.recency.clone(),
        }));
        assert!(cs.is_empty());
    }

    #[test]
    fn journal_restores_refraction_after_rollback() {
        let mut cs = ConflictSet::new();
        let a = item(0, &[1], 1, 0);
        let b = item(1, &[2], 1, 0);
        cs.apply(CsDelta::Insert(a.clone()));
        cs.apply(CsDelta::Insert(b.clone()));
        // b fired long ago; a is about to fire under a journal.
        cs.mark_fired(&b.key, 0);
        assert_eq!(cs.fireable(), 1);
        cs.begin_journal();
        cs.mark_fired(&a.key, 0);
        // The aborted firing removed b's WME: refraction for b is cleared.
        cs.apply(CsDelta::Remove(b.key.clone()));
        let journal = cs.take_journal();
        // Rollback replay re-derives b...
        cs.apply(CsDelta::Insert(b.clone()));
        assert_eq!(cs.fireable(), 1, "b forgot it fired");
        // ...and the journal restores both: a unfired, b refracted.
        cs.restore_fired(journal);
        assert_eq!(cs.fireable(), 1);
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(0)
        );
        // First-touch-wins: mark_fired then Remove of the same key keeps
        // the pre-journal value, not the intermediate one.
        assert!(!cs.is_refracted(&a));
    }

    #[test]
    fn no_journal_means_no_overhead_and_empty_take() {
        let mut cs = ConflictSet::new();
        let a = item(0, &[1], 1, 0);
        cs.apply(CsDelta::Insert(a.clone()));
        cs.mark_fired(&a.key, 0);
        assert!(cs.take_journal().is_empty());
    }

    #[test]
    fn quarantine_excludes_from_select_but_keeps_state() {
        let mut cs = ConflictSet::new();
        let hot = item(0, &[9], 1, 0);
        let cold = item(1, &[1], 1, 0);
        cs.apply(CsDelta::Insert(hot.clone()));
        cs.apply(CsDelta::Insert(cold.clone()));
        // Rule 0 dominates on recency...
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(0)
        );
        // ...until quarantined, when selection falls to rule 1.
        cs.set_rule_quarantined(RuleId::new(0), true);
        assert!(cs.is_rule_quarantined(RuleId::new(0)));
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(1)
        );
        assert_eq!(cs.quarantined_fireable(), 1);
        // With rule 1 exhausted only quarantined work remains: select sees
        // quiescence, quarantined_fireable reports the suppressed entry.
        cs.mark_fired(&cold.key, cold.version);
        assert!(cs.select(Strategy::Lex).is_none());
        assert_eq!(cs.fireable(), 1, "fireable counts ignore quarantine");
        assert_eq!(cs.quarantined_fireable(), 1);
        // Re-admission restores the preserved entry verbatim.
        cs.set_rule_quarantined(RuleId::new(0), false);
        assert_eq!(
            cs.select(Strategy::Lex).unwrap().0.key.rule(),
            RuleId::new(0)
        );
        assert_eq!(cs.quarantined_fireable(), 0);
    }

    #[test]
    fn leaving_clears_refraction() {
        let mut cs = ConflictSet::new();
        let it = item(0, &[4], 1, 0);
        cs.apply(CsDelta::Insert(it.clone()));
        cs.mark_fired(&it.key, 0);
        cs.apply(CsDelta::Remove(it.key.clone()));
        cs.apply(CsDelta::Insert(it.clone()));
        assert_eq!(cs.fireable(), 1, "re-derived instantiation may fire again");
    }
}
