//! Crash-dump bundles: the flight recorder's black box, persisted.
//!
//! When a run ends abnormally (panic, error, quarantine stall, tripped
//! resource guard) — or on demand via the REPL's `dump bundle` — the
//! engine drains its [`sorete_base::flight::Flight`] rings plus a snapshot
//! of live state into a directory `sorete-crash-<gen>-<cycle>/`. Every
//! file is written with `reldb`'s `atomic_write`, so a bundle never
//! contains torn files even if the process dies mid-dump.
//!
//! Bundle format, version 1 (see DESIGN.md §5.9):
//!
//! | file            | contents                                          |
//! |-----------------|---------------------------------------------------|
//! | `MANIFEST`      | magic + version line, then `key=value` pairs      |
//! | `events.bin`    | flight event ring, framed binary (authoritative)  |
//! | `spans.bin`     | flight span ring, framed binary                   |
//! | `cycles.bin`    | flight cycle-record ring, framed binary           |
//! | `events.jsonl`  | the event ring decoded to JSONL (for humans/jq)   |
//! | `cycles.jsonl`  | the cycle ring decoded to JSONL                   |
//! | `span_stats.txt`| per-category span aggregates                      |
//! | `metrics.prom`  | final metrics snapshot, Prometheus exposition     |
//! | `conflict.tsv`  | the conflict set at dump time                     |
//! | `wm.tsv`        | working memory at dump time                       |
//! | `rules.txt`     | loaded rules: network path + condition classes    |
//! | `stats.txt`     | cumulative [`crate::RunStats`]                    |
//!
//! The `.bin` streams are the source of truth for the offline inspector
//! (`sorete debug`); the JSONL/text twins exist so a bundle is readable
//! without any tooling.

use crate::engine::{ProductionSystem, RunOutcome};
use crate::error::CoreError;
use sorete_base::flight::{decode_cycles, decode_events, decode_spans, CycleRecord};
use sorete_base::span::{render_perfetto, render_span_table};
use sorete_base::{FxHashMap, Span, TraceEvent};
use sorete_reldb::persist::atomic_write;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Bundle format magic + version, the first line of every `MANIFEST`.
pub const MAGIC: &str = "sorete-crash-bundle 1";

fn put(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), String> {
    atomic_write(&dir.join(name), bytes).map_err(|e| format!("{}: {}", name, e))
}

/// Pick a fresh `sorete-crash-<gen>-<cycle>` directory under `base`,
/// suffixing `.2`, `.3`, … on collision so repeated crashes at the same
/// cycle never overwrite an earlier post-mortem.
fn fresh_dir(base: &Path, generation: u64, cycle: u64) -> PathBuf {
    let stem = format!("sorete-crash-{}-{}", generation, cycle);
    let first = base.join(&stem);
    if !first.exists() {
        return first;
    }
    for n in 2.. {
        let p = base.join(format!("{}.{}", stem, n));
        if !p.exists() {
            return p;
        }
    }
    unreachable!()
}

/// Drain the engine's flight recorder and live state into a new crash
/// bundle under `dir`, returning the bundle directory's path. `stop` is
/// the [`crate::StopReason::label`] (or `"manual"` for REPL dumps).
pub fn write(
    ps: &ProductionSystem,
    stop: &str,
    outcome: Option<&RunOutcome>,
    dir: &Path,
) -> Result<PathBuf, String> {
    let flight = ps.flight();
    let generation = ps.checkpoint_generation();
    let cycle = ps.current_cycle();
    let bundle = fresh_dir(dir, generation, cycle);
    std::fs::create_dir_all(&bundle).map_err(|e| format!("mkdir {}: {}", bundle.display(), e))?;

    // Freeze the rings once so every file describes the same instant.
    let events = flight.events();
    let spans = flight.spans();
    let cycles = flight.cycles();
    let counts = flight.counts();

    let mut manifest = String::new();
    let _ = writeln!(manifest, "{}", MAGIC);
    let _ = writeln!(manifest, "stop={}", stop);
    if let Some(o) = outcome {
        let _ = writeln!(manifest, "fired={}", o.fired);
        let _ = writeln!(manifest, "reason={:?}", o.reason);
    }
    let _ = writeln!(manifest, "cycle={}", cycle);
    let _ = writeln!(manifest, "generation={}", generation);
    let _ = writeln!(manifest, "matcher={}", ps.matcher_name());
    let _ = writeln!(manifest, "jobs={}", ps.jobs());
    let _ = writeln!(manifest, "shards={}", ps.shards());
    let _ = writeln!(manifest, "halted={}", ps.halted());
    if let Some(p) = ps.wal_path() {
        let _ = writeln!(manifest, "wal={}", p.display());
    }
    if let Some(g) = ps.wal_generation() {
        let _ = writeln!(manifest, "wal_generation={}", g);
    }
    if let Some(ws) = ps.wal_stats() {
        let _ = writeln!(manifest, "wal_records={}", ws.records);
        let _ = writeln!(manifest, "wal_bytes={}", ws.bytes);
        let _ = writeln!(manifest, "wal_commits={}", ws.commits);
    }
    let _ = writeln!(manifest, "flight_capacity={}", flight.capacity());
    let _ = writeln!(manifest, "events={}", counts.events);
    let _ = writeln!(manifest, "spans={}", counts.spans);
    let _ = writeln!(manifest, "cycles={}", counts.cycles);
    let _ = writeln!(manifest, "evicted={}", counts.evicted);
    if !ps.invocation().is_empty() {
        let _ = writeln!(manifest, "argv={}", ps.invocation().join(" "));
    }

    let mut events_jsonl = String::new();
    for ev in &events {
        let _ = writeln!(events_jsonl, "{}", ev.to_json());
    }
    let mut cycles_jsonl = String::new();
    for c in &cycles {
        let _ = writeln!(cycles_jsonl, "{}", c.to_json());
    }

    // Final metrics snapshot: sample at this instant, then render.
    ps.record_metrics_snapshot();
    let prom = ps
        .metrics_prometheus()
        .unwrap_or_else(|| "# metrics disabled\n".to_string());

    let mut conflict = String::from("rule\tkey\tversion\tspecificity\trows\taggregates\n");
    for item in ps.conflict_items() {
        let rule = ps.rule_name(item.key.rule());
        let rows: Vec<String> = item
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|t| t.raw().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(
            conflict,
            "{}\t{}\t{}\t{}\t{}\t{}",
            rule,
            item.key.repr(),
            item.version,
            item.specificity,
            rows.join(";"),
            aggs.join(" ")
        );
    }

    let mut wm = String::from("tag\twme\n");
    let mut wmes: Vec<_> = ps.wm().iter().collect();
    wmes.sort_by_key(|w| w.tag);
    for w in wmes {
        let _ = writeln!(wm, "{}\t{}", w.tag, crate::engine::render_wme(w));
    }

    let mut rules = String::new();
    for ar in ps.loaded_rules() {
        let _ = writeln!(rules, "rule {}", ar.name);
        if let Some(path) = ps.rule_network_path(ar.name.as_str()) {
            for step in path {
                let _ = writeln!(rules, "path {}", step);
            }
        }
        for ce in &ar.ces {
            let _ = writeln!(
                rules,
                "cond {} {}",
                if ce.negated { '-' } else { '+' },
                ce.class
            );
        }
        let _ = writeln!(rules, "end");
    }

    let st = ps.stats();
    let mut stats = String::new();
    let _ = writeln!(stats, "firings={}", st.firings);
    let _ = writeln!(stats, "actions={}", st.actions);
    let _ = writeln!(stats, "makes={}", st.makes);
    let _ = writeln!(stats, "removes={}", st.removes);
    let _ = writeln!(stats, "modifies={}", st.modifies);
    let _ = writeln!(stats, "writes={}", st.writes);
    let _ = writeln!(stats, "skipped_actions={}", st.skipped_actions);
    let _ = writeln!(stats, "rolled_back={}", st.rolled_back);
    for (name, rs) in st.per_rule_sorted() {
        let _ = writeln!(
            stats,
            "rule {} firings={} actions={}",
            name, rs.firings, rs.actions
        );
    }

    put(&bundle, "MANIFEST", manifest.as_bytes())?;
    put(&bundle, "events.bin", &flight.events_bytes())?;
    put(&bundle, "spans.bin", &flight.spans_bytes())?;
    put(&bundle, "cycles.bin", &flight.cycles_bytes())?;
    put(&bundle, "events.jsonl", events_jsonl.as_bytes())?;
    put(&bundle, "cycles.jsonl", cycles_jsonl.as_bytes())?;
    put(
        &bundle,
        "span_stats.txt",
        render_span_table(&spans).as_bytes(),
    )?;
    put(&bundle, "metrics.prom", prom.as_bytes())?;
    put(&bundle, "conflict.tsv", conflict.as_bytes())?;
    put(&bundle, "wm.tsv", wm.as_bytes())?;
    put(&bundle, "rules.txt", rules.as_bytes())?;
    put(&bundle, "stats.txt", stats.as_bytes())?;
    Ok(bundle)
}

/// Default bundle-retention cap: the newest 8 bundles survive pruning.
pub const DEFAULT_CRASH_KEEP: usize = 8;

/// Cap the number of `sorete-crash-*` bundle directories under `dir`:
/// keep the newest `keep`, remove the rest oldest-first, and return the
/// removed paths. Age is the directory's mtime with the name as a
/// deterministic tie-break (collision suffixes sort after their stem, so
/// same-instant bundles still prune in creation order). `keep == 0`
/// disables pruning — retention is a cap, never "delete everything".
/// Non-bundle directories that merely share the name prefix are left
/// alone, as are I/O errors: pruning is best-effort and must never fail
/// a crash dump.
pub fn prune(dir: &Path, keep: usize) -> Vec<PathBuf> {
    if keep == 0 {
        return Vec::new();
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut bundles: Vec<(std::time::SystemTime, String, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        if !name.starts_with("sorete-crash-") || !is_bundle_dir(&path) {
            continue;
        }
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        bundles.push((mtime, name, path));
    }
    if bundles.len() <= keep {
        return Vec::new();
    }
    // Oldest first; the tail `keep` survive.
    bundles.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let doomed = bundles.len() - keep;
    let mut removed = Vec::new();
    for (_, _, path) in bundles.into_iter().take(doomed) {
        if std::fs::remove_dir_all(&path).is_ok() {
            removed.push(path);
        }
    }
    removed
}

/// One conflict-set entry as recorded in `conflict.tsv`.
#[derive(Clone, Debug)]
pub struct BundleConflictItem {
    /// Owning rule's name.
    pub rule: String,
    /// Instantiation key repr (empty for a whole-set SOI).
    pub key: String,
    /// SOI change version.
    pub version: u64,
    /// OPS5 specificity.
    pub specificity: u64,
    /// Supporting time tags, one row per tuple match.
    pub rows: Vec<Vec<u64>>,
    /// LHS aggregate values, pre-rendered and space-joined.
    pub aggregates: String,
}

/// One rule's static context as recorded in `rules.txt`.
#[derive(Clone, Debug)]
pub struct BundleRule {
    /// Rule name.
    pub name: String,
    /// Match-network path (empty when the backend has no network).
    pub path: Vec<String>,
    /// Condition elements in source order: `(negated, class)`.
    pub conds: Vec<(bool, String)>,
}

/// A loaded crash bundle: everything `sorete debug` works from.
#[derive(Clone, Debug)]
pub struct CrashBundle {
    /// The bundle directory.
    pub dir: PathBuf,
    /// `MANIFEST` key=value pairs (magic line excluded), in file order.
    pub manifest: Vec<(String, String)>,
    /// Decoded flight event ring, oldest first.
    pub events: Vec<TraceEvent>,
    /// Decoded flight span ring.
    pub spans: Vec<Span>,
    /// Decoded per-cycle records, oldest first.
    pub cycles: Vec<CycleRecord>,
    /// The conflict set at dump time.
    pub conflict: Vec<BundleConflictItem>,
    /// Working memory at dump time: tag → rendered WME.
    pub wm: FxHashMap<u64, String>,
    /// Loaded rules with network paths and condition classes.
    pub rules: Vec<BundleRule>,
}

fn read(dir: &Path, name: &str) -> Result<Vec<u8>, String> {
    std::fs::read(dir.join(name)).map_err(|e| format!("{}: {}", name, e))
}

fn read_text(dir: &Path, name: &str) -> Result<String, String> {
    String::from_utf8(read(dir, name)?).map_err(|e| format!("{}: not UTF-8: {}", name, e))
}

impl CrashBundle {
    /// Load and fully decode a bundle directory. Errors name the first
    /// malformed file, so this doubles as `sorete fsck`'s validator.
    pub fn load(dir: &Path) -> Result<CrashBundle, String> {
        let manifest_text = read_text(dir, "MANIFEST")?;
        let mut lines = manifest_text.lines();
        match lines.next() {
            Some(l) if l == MAGIC => {}
            Some(l) => {
                return Err(format!(
                    "MANIFEST: unsupported format `{}` (expected `{}`)",
                    l, MAGIC
                ))
            }
            None => return Err("MANIFEST: empty".to_string()),
        }
        let mut manifest = Vec::new();
        for l in lines {
            if l.trim().is_empty() {
                continue;
            }
            let (k, v) = l
                .split_once('=')
                .ok_or_else(|| format!("MANIFEST: malformed line `{}`", l))?;
            manifest.push((k.to_string(), v.to_string()));
        }
        for key in ["stop", "cycle", "generation", "matcher"] {
            if !manifest.iter().any(|(k, _)| k == key) {
                return Err(format!("MANIFEST: missing `{}` key", key));
            }
        }

        let events =
            decode_events(&read(dir, "events.bin")?).map_err(|e| format!("events.bin: {}", e))?;
        let spans =
            decode_spans(&read(dir, "spans.bin")?).map_err(|e| format!("spans.bin: {}", e))?;
        let cycles =
            decode_cycles(&read(dir, "cycles.bin")?).map_err(|e| format!("cycles.bin: {}", e))?;

        let mut conflict = Vec::new();
        for (i, l) in read_text(dir, "conflict.tsv")?.lines().enumerate().skip(1) {
            let f: Vec<&str> = l.splitn(6, '\t').collect();
            if f.len() != 6 {
                return Err(format!("conflict.tsv:{}: expected 6 fields", i + 1));
            }
            let parse = |s: &str, what: &str| -> Result<u64, String> {
                s.parse()
                    .map_err(|_| format!("conflict.tsv:{}: bad {} `{}`", i + 1, what, s))
            };
            let mut rows = Vec::new();
            for row in f[4].split(';').filter(|r| !r.is_empty()) {
                let mut tags = Vec::new();
                for t in row.split(',').filter(|t| !t.is_empty()) {
                    tags.push(parse(t, "tag")?);
                }
                rows.push(tags);
            }
            conflict.push(BundleConflictItem {
                rule: f[0].to_string(),
                key: f[1].to_string(),
                version: parse(f[2], "version")?,
                specificity: parse(f[3], "specificity")?,
                rows,
                aggregates: f[5].to_string(),
            });
        }

        let mut wm = FxHashMap::default();
        for (i, l) in read_text(dir, "wm.tsv")?.lines().enumerate().skip(1) {
            let (tag, rendered) = l
                .split_once('\t')
                .ok_or_else(|| format!("wm.tsv:{}: expected 2 fields", i + 1))?;
            let tag: u64 = tag
                .parse()
                .map_err(|_| format!("wm.tsv:{}: bad tag `{}`", i + 1, tag))?;
            wm.insert(tag, rendered.to_string());
        }

        let mut rules = Vec::new();
        let mut current: Option<BundleRule> = None;
        for (i, l) in read_text(dir, "rules.txt")?.lines().enumerate() {
            let err = |msg: &str| format!("rules.txt:{}: {}", i + 1, msg);
            if let Some(name) = l.strip_prefix("rule ") {
                if current.is_some() {
                    return Err(err("nested rule block"));
                }
                current = Some(BundleRule {
                    name: name.to_string(),
                    path: Vec::new(),
                    conds: Vec::new(),
                });
            } else if let Some(step) = l.strip_prefix("path ") {
                current
                    .as_mut()
                    .ok_or_else(|| err("path outside rule block"))?
                    .path
                    .push(step.to_string());
            } else if let Some(c) = l.strip_prefix("cond ") {
                let (sign, class) = c
                    .split_once(' ')
                    .ok_or_else(|| err("malformed cond line"))?;
                let negated = match sign {
                    "+" => false,
                    "-" => true,
                    _ => return Err(err("cond sign must be + or -")),
                };
                current
                    .as_mut()
                    .ok_or_else(|| err("cond outside rule block"))?
                    .conds
                    .push((negated, class.to_string()));
            } else if l == "end" {
                rules.push(
                    current
                        .take()
                        .ok_or_else(|| err("end outside rule block"))?,
                );
            } else if !l.trim().is_empty() {
                return Err(err("unrecognised line"));
            }
        }
        if current.is_some() {
            return Err("rules.txt: unterminated rule block".to_string());
        }

        Ok(CrashBundle {
            dir: dir.to_path_buf(),
            manifest,
            events,
            spans,
            cycles,
            conflict,
            wm,
            rules,
        })
    }

    /// A manifest value by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.manifest
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// One-line validation summary for `sorete fsck` (the act of loading
    /// already proved every file decodes).
    pub fn validate_summary(&self) -> String {
        format!(
            "crash bundle OK: stop={} cycle={} gen={} matcher={}; \
             {} event(s) ({} evicted), {} span(s), {} cycle record(s), \
             {} conflict entr(ies), {} WME(s), {} rule(s)",
            self.get("stop").unwrap_or("?"),
            self.get("cycle").unwrap_or("?"),
            self.get("generation").unwrap_or("?"),
            self.get("matcher").unwrap_or("?"),
            self.events.len(),
            self.get("evicted").unwrap_or("0"),
            self.spans.len(),
            self.cycles.len(),
            self.conflict.len(),
            self.wm.len(),
            self.rules.len(),
        )
    }

    /// The recorded rule context by name.
    pub fn rule(&self, name: &str) -> Option<&BundleRule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// `sorete debug <bundle> timeline`: header, then one line per
    /// recorded recognise–act cycle, oldest first.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bundle {} — stop={} matcher={} jobs={} shards={} cycle={}",
            self.dir.display(),
            self.get("stop").unwrap_or("?"),
            self.get("matcher").unwrap_or("?"),
            self.get("jobs").unwrap_or("?"),
            self.get("shards").unwrap_or("?"),
            self.get("cycle").unwrap_or("?"),
        );
        if self.cycles.is_empty() {
            let _ = writeln!(out, "(no cycle records — the run never fired)");
            return out;
        }
        let evicted: u64 = self
            .get("evicted")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if evicted > 0 {
            let _ = writeln!(out, "(ring overwrote {} older record(s))", evicted);
        }
        let _ = writeln!(
            out,
            "{:>8}  {:<24} {:>3}  {:>8}  {:>8}  {:>8}  {:>12}",
            "cycle", "rule", "ok", "firings", "wm", "cs", "nanos"
        );
        for c in &self.cycles {
            let _ = writeln!(
                out,
                "{:>8}  {:<24} {:>3}  {:>8}  {:>8}  {:>8}  {:>12}",
                c.cycle,
                c.rule.as_str(),
                if c.ok { "ok" } else { "ERR" },
                c.firings,
                c.wm_len,
                c.cs_len,
                c.nanos
            );
        }
        out
    }

    /// `sorete debug <bundle> rules`: per-rule aggregates over the
    /// captured history — firings, failures, cycle time, CS churn.
    pub fn render_rules(&self) -> String {
        #[derive(Default)]
        struct Agg {
            cycles: u64,
            failed: u64,
            nanos: u64,
            inserts: u64,
            removes: u64,
            retimes: u64,
        }
        fn slot<'a>(by_rule: &'a mut Vec<(String, Agg)>, name: &str) -> &'a mut Agg {
            let i = match by_rule.iter().position(|(n, _)| n == name) {
                Some(i) => i,
                None => {
                    by_rule.push((name.to_string(), Agg::default()));
                    by_rule.len() - 1
                }
            };
            &mut by_rule[i].1
        }
        let mut by_rule: Vec<(String, Agg)> = Vec::new();
        for c in &self.cycles {
            let a = slot(&mut by_rule, c.rule.as_str());
            a.cycles += 1;
            if !c.ok {
                a.failed += 1;
            }
            a.nanos += c.nanos;
        }
        for ev in &self.events {
            match ev {
                TraceEvent::CsInsert { rule, .. } => slot(&mut by_rule, rule.as_str()).inserts += 1,
                TraceEvent::CsRemove { rule, .. } => slot(&mut by_rule, rule.as_str()).removes += 1,
                TraceEvent::CsRetime { rule, .. } => slot(&mut by_rule, rule.as_str()).retimes += 1,
                _ => {}
            }
        }
        by_rule.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>7} {:>12} {:>8} {:>8} {:>8}",
            "rule", "cycles", "failed", "nanos", "cs+", "cs-", "retime"
        );
        for (name, a) in &by_rule {
            let _ = writeln!(
                out,
                "{:<24} {:>7} {:>7} {:>12} {:>8} {:>8} {:>8}",
                name, a.cycles, a.failed, a.nanos, a.inserts, a.removes, a.retimes
            );
        }
        if by_rule.is_empty() {
            let _ = writeln!(out, "(no per-rule history in the ring)");
        }
        out
    }

    /// `sorete debug <bundle> perfetto`: re-emit the captured spans as a
    /// Perfetto/Chrome trace-event JSON document.
    pub fn render_perfetto(&self) -> String {
        render_perfetto(&self.spans)
    }
}

/// True when `dir` looks like a crash bundle (for `sorete fsck` dispatch).
pub fn is_bundle_dir(dir: &Path) -> bool {
    dir.is_dir() && dir.join("MANIFEST").exists()
}

impl ProductionSystem {
    /// Validate `dir` as a crash bundle and return a one-line summary
    /// (`sorete fsck` on a bundle directory).
    pub fn fsck_bundle(dir: &Path) -> Result<String, CoreError> {
        let b = CrashBundle::load(dir).map_err(CoreError::Durability)?;
        Ok(b.validate_summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sorete-bundle-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A directory that `is_bundle_dir` accepts, with a controllable age.
    fn fake_bundle(base: &Path, name: &str, age_secs: u64) -> PathBuf {
        let dir = base.join(name);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST"), MAGIC).unwrap();
        // Backdate via the only std-level knob: re-create with an mtime
        // ordered by creation. Creation order alone is not reliable at
        // filesystem timestamp granularity, so spread the ages with an
        // explicit File::set_times when available; fall back to sleeping
        // one timestamp tick.
        let f = std::fs::File::open(&dir).unwrap();
        let t = std::time::SystemTime::now() - std::time::Duration::from_secs(age_secs);
        let _ = f.set_times(std::fs::FileTimes::new().set_modified(t));
        dir
    }

    #[test]
    fn prune_removes_oldest_first() {
        let base = temp_dir("prune");
        let oldest = fake_bundle(&base, "sorete-crash-0-1", 300);
        let middle = fake_bundle(&base, "sorete-crash-0-2", 200);
        let newest = fake_bundle(&base, "sorete-crash-0-3", 100);
        // A same-prefix directory that is NOT a bundle must be spared.
        let decoy = base.join("sorete-crash-notes");
        std::fs::create_dir_all(&decoy).unwrap();

        let removed = prune(&base, 2);
        assert_eq!(removed, vec![oldest.clone()], "oldest goes first");
        assert!(!oldest.exists());
        assert!(middle.exists() && newest.exists() && decoy.exists());

        let removed = prune(&base, 1);
        assert_eq!(removed, vec![middle]);
        assert!(newest.exists());

        // At or under the cap: nothing to do.
        assert!(prune(&base, 1).is_empty());
        assert!(newest.exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn prune_zero_keeps_everything() {
        let base = temp_dir("prune-zero");
        let b = fake_bundle(&base, "sorete-crash-0-1", 100);
        assert!(prune(&base, 0).is_empty());
        assert!(b.exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn prune_ties_break_by_name() {
        let base = temp_dir("prune-ties");
        // Identical mtimes: the collision suffixes decide, `.2` after the
        // stem, so the stem (the earlier crash) is pruned first.
        let stem = fake_bundle(&base, "sorete-crash-0-7", 100);
        let later = fake_bundle(&base, "sorete-crash-0-7.2", 100);
        let f = std::fs::File::open(&stem).unwrap();
        let meta = std::fs::metadata(&later).unwrap();
        let _ = f.set_times(std::fs::FileTimes::new().set_modified(meta.modified().unwrap()));
        let removed = prune(&base, 1);
        assert_eq!(removed, vec![stem]);
        assert!(later.exists());
        let _ = std::fs::remove_dir_all(&base);
    }
}
