//! Working memory: the engine-owned store of WMEs and class declarations.

use sorete_base::{BaseError, FxHashMap, Result, Symbol, TimeTag, Value, Wme};

/// Working memory: WMEs by time tag, plus `literalize` declarations.
///
/// Time tags are allocated monotonically; every `make` (including the
/// re-assertion half of `modify`) gets a fresh tag, exactly as in OPS5.
#[derive(Default)]
pub struct WorkingMemory {
    wmes: FxHashMap<TimeTag, Wme>,
    next_tag: u64,
    classes: FxHashMap<Symbol, Vec<Symbol>>,
}

impl WorkingMemory {
    /// Empty working memory.
    pub fn new() -> WorkingMemory {
        WorkingMemory { wmes: FxHashMap::default(), next_tag: 0, classes: FxHashMap::default() }
    }

    /// Declare a class (`literalize`). Re-declaring replaces the attribute
    /// list.
    pub fn declare_class(&mut self, class: Symbol, attrs: Vec<Symbol>) {
        self.classes.insert(class, attrs);
    }

    /// Is the class declared?
    pub fn class_declared(&self, class: Symbol) -> bool {
        self.classes.contains_key(&class)
    }

    /// Build and store a WME. If the class was `literalize`d, every slot
    /// attribute must be declared; undeclared classes are accepted as-is
    /// (convenient for tests and embedded use).
    pub fn make(&mut self, class: Symbol, slots: Vec<(Symbol, Value)>) -> Result<Wme> {
        if let Some(attrs) = self.classes.get(&class) {
            for (a, _) in &slots {
                if !attrs.contains(a) {
                    return Err(BaseError::UnknownAttribute {
                        class: class.as_str().to_owned(),
                        attr: a.as_str().to_owned(),
                    });
                }
            }
        }
        self.next_tag += 1;
        let wme = Wme::new(TimeTag::new(self.next_tag), class, slots);
        self.wmes.insert(wme.tag, wme.clone());
        Ok(wme)
    }

    /// Remove a WME, returning it.
    pub fn remove(&mut self, tag: TimeTag) -> Result<Wme> {
        self.wmes.remove(&tag).ok_or(BaseError::UnknownTag(tag.raw()))
    }

    /// Read a WME.
    pub fn get(&self, tag: TimeTag) -> Option<&Wme> {
        self.wmes.get(&tag)
    }

    /// Number of WMEs.
    pub fn len(&self) -> usize {
        self.wmes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.wmes.is_empty()
    }

    /// Iterate all WMEs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Wme> {
        self.wmes.values()
    }

    /// All WMEs sorted by time tag (for reproducible dumps).
    pub fn dump(&self) -> Vec<&Wme> {
        let mut v: Vec<&Wme> = self.wmes.values().collect();
        v.sort_by_key(|w| w.tag);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_monotonic() {
        let mut wm = WorkingMemory::new();
        let a = wm.make(Symbol::new("c"), vec![]).unwrap();
        let b = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert!(b.tag > a.tag);
        assert_eq!(wm.len(), 2);
    }

    #[test]
    fn literalize_validates_attributes() {
        let mut wm = WorkingMemory::new();
        wm.declare_class(Symbol::new("player"), vec![Symbol::new("name"), Symbol::new("team")]);
        assert!(wm.make(Symbol::new("player"), vec![(Symbol::new("name"), Value::sym("x"))]).is_ok());
        let err = wm
            .make(Symbol::new("player"), vec![(Symbol::new("wings"), Value::Int(2))])
            .unwrap_err();
        assert!(err.to_string().contains("wings"));
        // Undeclared classes are lenient.
        assert!(wm.make(Symbol::new("adhoc"), vec![(Symbol::new("x"), Value::Int(1))]).is_ok());
    }

    #[test]
    fn remove_unknown_tag_errors() {
        let mut wm = WorkingMemory::new();
        assert!(wm.remove(TimeTag::new(99)).is_err());
        let w = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert!(wm.remove(w.tag).is_ok());
        assert!(wm.remove(w.tag).is_err(), "double remove");
    }

    #[test]
    fn dump_is_tag_ordered() {
        let mut wm = WorkingMemory::new();
        for _ in 0..5 {
            wm.make(Symbol::new("c"), vec![]).unwrap();
        }
        let tags: Vec<u64> = wm.dump().iter().map(|w| w.tag.raw()).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5]);
    }
}
