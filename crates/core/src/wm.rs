//! Working memory: the engine-owned store of WMEs and class declarations.

use sorete_base::{BaseError, FxHashMap, Result, Symbol, TimeTag, Value, Wme};

/// Working memory: WMEs by time tag, plus `literalize` declarations.
///
/// Time tags are allocated monotonically; every `make` (including the
/// re-assertion half of `modify`) gets a fresh tag, exactly as in OPS5.
#[derive(Default)]
pub struct WorkingMemory {
    wmes: FxHashMap<TimeTag, Wme>,
    next_tag: u64,
    classes: FxHashMap<Symbol, Vec<Symbol>>,
    /// Bumped on every content change (make / remove / restore). Lets the
    /// engine detect stagnation: firings that leave WM untouched.
    revision: u64,
}

impl WorkingMemory {
    /// Empty working memory.
    pub fn new() -> WorkingMemory {
        WorkingMemory::default()
    }

    /// Declare a class (`literalize`). Re-declaring replaces the attribute
    /// list.
    pub fn declare_class(&mut self, class: Symbol, attrs: Vec<Symbol>) {
        self.classes.insert(class, attrs);
    }

    /// Is the class declared?
    pub fn class_declared(&self, class: Symbol) -> bool {
        self.classes.contains_key(&class)
    }

    /// Build and store a WME. If the class was `literalize`d, every slot
    /// attribute must be declared; undeclared classes are accepted as-is
    /// (convenient for tests and embedded use).
    pub fn make(&mut self, class: Symbol, slots: Vec<(Symbol, Value)>) -> Result<Wme> {
        if let Some(attrs) = self.classes.get(&class) {
            for (a, _) in &slots {
                if !attrs.contains(a) {
                    return Err(BaseError::UnknownAttribute {
                        class: class.as_str().to_owned(),
                        attr: a.as_str().to_owned(),
                    });
                }
            }
        }
        self.next_tag += 1;
        self.revision += 1;
        let wme = Wme::new(TimeTag::new(self.next_tag), class, slots);
        self.wmes.insert(wme.tag, wme.clone());
        Ok(wme)
    }

    /// Remove a WME, returning it.
    pub fn remove(&mut self, tag: TimeTag) -> Result<Wme> {
        let wme = self
            .wmes
            .remove(&tag)
            .ok_or(BaseError::UnknownTag(tag.raw()))?;
        self.revision += 1;
        Ok(wme)
    }

    /// Re-insert a previously removed WME under its **original** time tag.
    ///
    /// This is the rollback primitive: it does not allocate a tag, so a
    /// remove-then-restore round trip leaves `next_tag` untouched and the
    /// WME indistinguishable from one that never left. The tag must be
    /// dead and must not exceed the allocator's high-water mark.
    pub fn restore(&mut self, wme: Wme) {
        debug_assert!(!self.wmes.contains_key(&wme.tag), "restore over a live tag");
        debug_assert!(
            wme.tag.raw() <= self.next_tag,
            "restore of a never-allocated tag"
        );
        self.revision += 1;
        self.wmes.insert(wme.tag, wme);
    }

    /// Re-insert a WME under an **explicit** time tag, raising the tag
    /// allocator past it. This is the durability primitive: WAL recovery
    /// and checkpoint resume replay historic asserts whose tags were
    /// assigned by the original run, and later `make`s must continue
    /// after the highest replayed tag.
    pub fn replay(&mut self, wme: Wme) -> Result<()> {
        if self.wmes.contains_key(&wme.tag) {
            return Err(BaseError::Message(format!(
                "replayed assert collides with live time tag {}",
                wme.tag.raw()
            )));
        }
        self.next_tag = self.next_tag.max(wme.tag.raw());
        self.revision += 1;
        self.wmes.insert(wme.tag, wme);
        Ok(())
    }

    /// Raise the tag allocator to at least `mark` (checkpoint resume:
    /// tags of WMEs that died before the checkpoint must not be reused).
    pub fn raise_tag_mark(&mut self, mark: u64) {
        self.next_tag = self.next_tag.max(mark);
    }

    /// Content revision counter: changes iff WM contents changed.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Current high-water mark of the tag allocator.
    pub fn tag_mark(&self) -> u64 {
        self.next_tag
    }

    /// Roll the tag allocator back to an earlier [`Self::tag_mark`]. Only
    /// legal when every tag above the mark is dead (i.e. after a rollback
    /// retracted everything the aborted firing asserted), so a rolled-back
    /// firing leaves no gap in the tag sequence.
    pub fn reset_tag_mark(&mut self, mark: u64) {
        debug_assert!(mark <= self.next_tag);
        debug_assert!(
            self.wmes.keys().all(|t| t.raw() <= mark),
            "live tag above the rollback mark"
        );
        self.next_tag = mark;
    }

    /// Read a WME.
    pub fn get(&self, tag: TimeTag) -> Option<&Wme> {
        self.wmes.get(&tag)
    }

    /// Number of WMEs.
    pub fn len(&self) -> usize {
        self.wmes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.wmes.is_empty()
    }

    /// Iterate all WMEs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Wme> {
        self.wmes.values()
    }

    /// All WMEs sorted by time tag (for reproducible dumps).
    pub fn dump(&self) -> Vec<&Wme> {
        let mut v: Vec<&Wme> = self.wmes.values().collect();
        v.sort_by_key(|w| w.tag);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_monotonic() {
        let mut wm = WorkingMemory::new();
        let a = wm.make(Symbol::new("c"), vec![]).unwrap();
        let b = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert!(b.tag > a.tag);
        assert_eq!(wm.len(), 2);
    }

    #[test]
    fn literalize_validates_attributes() {
        let mut wm = WorkingMemory::new();
        wm.declare_class(
            Symbol::new("player"),
            vec![Symbol::new("name"), Symbol::new("team")],
        );
        assert!(wm
            .make(
                Symbol::new("player"),
                vec![(Symbol::new("name"), Value::sym("x"))]
            )
            .is_ok());
        let err = wm
            .make(
                Symbol::new("player"),
                vec![(Symbol::new("wings"), Value::Int(2))],
            )
            .unwrap_err();
        assert!(err.to_string().contains("wings"));
        // Undeclared classes are lenient.
        assert!(wm
            .make(
                Symbol::new("adhoc"),
                vec![(Symbol::new("x"), Value::Int(1))]
            )
            .is_ok());
    }

    #[test]
    fn remove_unknown_tag_errors() {
        let mut wm = WorkingMemory::new();
        assert!(wm.remove(TimeTag::new(99)).is_err());
        let w = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert!(wm.remove(w.tag).is_ok());
        assert!(wm.remove(w.tag).is_err(), "double remove");
    }

    #[test]
    fn restore_reuses_original_tag() {
        let mut wm = WorkingMemory::new();
        let a = wm
            .make(Symbol::new("c"), vec![(Symbol::new("x"), Value::Int(1))])
            .unwrap();
        let b = wm.make(Symbol::new("c"), vec![]).unwrap();
        let gone = wm.remove(a.tag).unwrap();
        wm.restore(gone);
        assert_eq!(wm.get(a.tag).unwrap().get(Symbol::new("x")), Value::Int(1));
        // The allocator was not consulted: the next make continues after b.
        let c = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert_eq!(c.tag.raw(), b.tag.raw() + 1);
    }

    #[test]
    fn revision_tracks_every_content_change() {
        let mut wm = WorkingMemory::new();
        let r0 = wm.revision();
        let a = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert!(wm.revision() > r0);
        let r1 = wm.revision();
        let gone = wm.remove(a.tag).unwrap();
        assert!(wm.revision() > r1);
        let r2 = wm.revision();
        wm.restore(gone);
        assert!(wm.revision() > r2);
    }

    #[test]
    fn tag_mark_round_trip() {
        let mut wm = WorkingMemory::new();
        wm.make(Symbol::new("c"), vec![]).unwrap();
        let mark = wm.tag_mark();
        let b = wm.make(Symbol::new("c"), vec![]).unwrap();
        wm.remove(b.tag).unwrap();
        wm.reset_tag_mark(mark);
        // The re-allocated tag repeats the rolled-back one.
        let c = wm.make(Symbol::new("c"), vec![]).unwrap();
        assert_eq!(c.tag, b.tag);
    }

    #[test]
    fn dump_is_tag_ordered() {
        let mut wm = WorkingMemory::new();
        for _ in 0..5 {
            wm.make(Symbol::new("c"), vec![]).unwrap();
        }
        let tags: Vec<u64> = wm.dump().iter().map(|w| w.tag.raw()).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5]);
    }
}
