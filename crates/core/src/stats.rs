//! Run statistics: the measurements behind the paper's efficiency claims
//! (rule firings, actions per firing, working-memory churn).

use sorete_base::FxHashMap;
use sorete_base::Symbol;

/// Counters for one rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Times the rule fired.
    pub firings: u64,
    /// Primitive actions its firings performed.
    pub actions: u64,
}

/// Counters for a whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Rule firings (recognise–act cycles that executed a RHS).
    pub firings: u64,
    /// `make` actions (including the re-assert half of `modify`).
    pub makes: u64,
    /// `remove` actions (including the retract half of `modify`).
    pub removes: u64,
    /// `modify` / `set-modify` element updates.
    pub modifies: u64,
    /// `write` lines emitted.
    pub writes: u64,
    /// All primitive actions (makes + removes + modifies counted once +
    /// writes + binds).
    pub actions: u64,
    /// `remove`/`modify` actions that targeted an already-dead time tag and
    /// were skipped (overlapping set operations make this legal).
    pub skipped_actions: u64,
    /// Firings undone by [`RecoveryPolicy::Rollback`]
    /// (`crate::engine::RecoveryPolicy`) after an RHS error.
    pub rolled_back: u64,
    /// Per-rule breakdown.
    pub per_rule: FxHashMap<Symbol, RuleStats>,
}

impl RunStats {
    /// Average primitive actions per firing — the paper's parallelism
    /// proxy (§1: per-firing work bounds the achievable speed-up).
    pub fn actions_per_firing(&self) -> f64 {
        if self.firings == 0 {
            0.0
        } else {
            self.actions as f64 / self.firings as f64
        }
    }

    /// Firing count for one rule.
    pub fn rule_firings(&self, rule: Symbol) -> u64 {
        self.per_rule.get(&rule).map(|r| r.firings).unwrap_or(0)
    }

    /// The per-rule breakdown sorted by rule name — the *only* order any
    /// display or serialization of [`RunStats::per_rule`] should use, so
    /// output is deterministic across runs and hash seeds.
    pub fn per_rule_sorted(&self) -> Vec<(Symbol, RuleStats)> {
        let mut rows: Vec<(Symbol, RuleStats)> =
            self.per_rule.iter().map(|(s, r)| (*s, *r)).collect();
        rows.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_rule_sorted_orders_by_name() {
        let mut s = RunStats::default();
        for name in ["zeta", "alpha", "mid"] {
            s.per_rule.insert(
                Symbol::new(name),
                RuleStats {
                    firings: 1,
                    actions: 2,
                },
            );
        }
        let names: Vec<&str> = s
            .per_rule_sorted()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn actions_per_firing_handles_zero() {
        let s = RunStats::default();
        assert_eq!(s.actions_per_firing(), 0.0);
        let s = RunStats {
            firings: 2,
            actions: 7,
            ..Default::default()
        };
        assert_eq!(s.actions_per_firing(), 3.5);
    }
}
