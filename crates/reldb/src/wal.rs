//! Write-ahead log: append-only, CRC-checksummed, length-prefixed records.
//!
//! DIPS is a *disk-based* production system (paper §8); a crash must not
//! lose committed recognise–act cycles. This module supplies the generic
//! log mechanics — framing, checksums, group-commit fsync batching,
//! redo-only recovery with torn-tail truncation, rotation at checkpoints,
//! and injectable storage faults — while the *payloads* stay client-defined:
//! [`crate::durable::DurableDb`] logs relational row ops, the core engine
//! logs working-memory ops (see [`WmeOp`]), and DIPS logs its parallel
//! cycle effects.
//!
//! ## On-disk format
//!
//! ```text
//! SORETWAL2\n                          (10-byte file magic)
//! [u64 generation]                     (little-endian rotation count)
//! [u32 len][u32 crc][kind byte + payload]   repeated
//! ```
//!
//! `len` counts the kind byte plus the payload, little-endian; `crc` is
//! CRC-32 (IEEE) over those same bytes. Record kinds: `1` = client op,
//! `2` = transaction commit marker, `3` = cycle-boundary marker (carries a
//! client payload, e.g. run statistics). Commit and cycle markers are both
//! *commit points*: recovery replays ops only up to the last intact marker
//! and truncates everything after it, so a torn or short tail can never
//! resurrect half a transaction (redo-only, no undo needed).
//!
//! The *generation* pairs a log with the checkpoint it extends. Every
//! [`Wal::rotate`] stamps the caller-supplied generation (rotation is
//! truncate-then-stamp, so a crash mid-rotation leaves the old, smaller
//! generation behind and is detectable). At open, clients compare the
//! log's generation against their checkpoint's: equal means replay;
//! checkpoint one ahead means the crash hit between checkpoint rename and
//! log rotation, so the log's records are *stale* — already folded into
//! the checkpoint — and must be discarded, never replayed on top of it.
//!
//! ## Failure hygiene
//!
//! A failed append must not leave half a transaction lying in the file
//! where a *later* commit marker would adopt it into the committed
//! prefix. On a clean injected failure the log truncates back to the
//! last commit point (dropping the whole half-appended batch); on a real
//! I/O error — where the bytes on disk are unknowable — it truncates
//! *and* poisons itself so every later call errors until reopen, which
//! re-runs recovery. Real fsync failures also poison: after `EIO` from
//! `fsync` the kernel may have dropped the dirty pages, so the only safe
//! continuation is recovery from the file itself.
//!
//! ## Durability knob
//!
//! [`WalOptions::group_commit`] batches fsyncs: `1` syncs at every commit
//! point (no committed work is ever lost); `n > 1` syncs every `n` commit
//! points, trading a bounded window of recent commits for fewer fsyncs —
//! the classic group-commit throughput lever measured by the
//! `wal_overhead` bench.
//!
//! Appends are buffered in memory and hit the file as **one**
//! `write(2)` when the group-commit window closes (or at an explicit
//! [`Wal::sync`], rotation, or drop), so a window of `n` commits costs
//! one write syscall plus one fsync instead of one write per record.
//! The buffer never widens the loss window: everything the group-commit
//! policy promised durable has been both written *and* fsynced.

use crate::error::DbError;
use sorete_base::{Symbol, TimeTag, Value, Wme};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic for WAL files.
pub const WAL_MAGIC: &[u8] = b"SORETWAL2\n";
/// Header length: magic plus the little-endian u64 generation stamp.
const HEADER_LEN: usize = WAL_MAGIC.len() + 8;
/// Largest accepted record body (kind + payload); anything bigger is
/// treated as a corrupt length prefix during recovery.
const MAX_RECORD: u32 = 1 << 30;

const KIND_OP: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CYCLE: u8 = 3;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Options, stats, fault injection.

/// Tuning knobs for a [`Wal`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Fsync every `group_commit` commit points (1 = every commit).
    pub group_commit: u32,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions { group_commit: 1 }
    }
}

/// Counters for one WAL session (see the metrics registry's
/// `sorete_wal_*` families).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended this session.
    pub records: u64,
    /// Bytes appended this session (frames, not counting the file magic).
    pub bytes: u64,
    /// Commit points appended (commit + cycle markers).
    pub commits: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
    /// `write(2)` calls issued (buffered frames flush as one write per
    /// group-commit window, so this is far below `records`).
    pub writes: u64,
    /// Committed records replayed by recovery at open.
    pub recovered_records: u64,
    /// Intact-but-uncommitted tail records discarded by recovery.
    pub discarded_records: u64,
    /// Tail bytes truncated by recovery (torn/short/uncommitted frames).
    pub truncated_bytes: u64,
    /// Transient (retryable) append failures surfaced this session.
    pub transient_errors: u64,
    /// Generation stamp found in (or written to) the header: the number
    /// of checkpoint rotations this log lineage has been through.
    pub generation: u64,
}

/// What an injected storage fault does (mirrors the RHS-level
/// `FaultPlan` from the engine, one layer down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The append fails cleanly: nothing from the frame reaches the file,
    /// and the log truncates back to the last commit point (dropping any
    /// earlier records of the same uncommitted batch).
    Fail,
    /// Half the frame reaches the file, then the "machine dies"
    /// (the WAL poisons itself; every later call errors).
    ShortWrite,
    /// The whole frame reaches the file but with a flipped payload byte
    /// (a torn sector), then the "machine dies".
    TornWrite,
    /// The append succeeds but the next fsync fails and the WAL poisons
    /// itself (a dying disk acknowledging writes it cannot persist).
    FsyncError,
    /// A *transient* clean failure: the first `fail_n` appends at or after
    /// [`IoFaultPlan::at`] fail exactly like [`IoFaultKind::Fail`] (batch
    /// dropped, log **not** poisoned), then the storage "heals" and appends
    /// succeed again. This is the sweep-testable model for the retryable
    /// errors (ENOSPC races, NFS hiccups) the supervisor's backoff loop
    /// exists for.
    Transient {
        /// How many consecutive append attempts fail before healing.
        fail_n: u32,
    },
}

/// Inject `kind` on the `at`-th record append (0-based, counted across
/// the whole WAL session).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// What goes wrong.
    pub kind: IoFaultKind,
    /// Which record append triggers it.
    pub at: u64,
}

impl IoFaultPlan {
    /// Fault of `kind` on the `n`-th appended record.
    pub fn nth(kind: IoFaultKind, n: u64) -> IoFaultPlan {
        IoFaultPlan { kind, at: n }
    }
}

/// One problem found by the read-only [`Wal::scan`] pass. The first four
/// are exactly the conditions the recovery scanner repairs by truncation;
/// fsck reports them without touching the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalDefect {
    /// The generation stamp never fully landed (crash while creating a
    /// brand-new log).
    TornHeader {
        /// Stray bytes after the magic.
        bytes: u64,
    },
    /// A length prefix that cannot be a real frame (zero or absurd).
    CorruptLength {
        /// File offset of the frame header.
        offset: u64,
    },
    /// A frame whose body runs past end-of-file (torn final write).
    TornTail {
        /// File offset of the frame header.
        offset: u64,
        /// Bytes missing from the declared frame.
        missing: u64,
    },
    /// A length-intact frame failing its checksum (torn sector, bit rot).
    BadCrc {
        /// File offset of the frame header.
        offset: u64,
    },
    /// A record kind byte this version does not know.
    UnknownKind {
        /// File offset of the frame header.
        offset: u64,
        /// The unknown kind byte.
        kind: u8,
    },
    /// Intact op records after the last commit point — the normal shape of
    /// a crash mid-batch; recovery discards them rather than replaying.
    UncommittedTail {
        /// How many intact records sit past the last commit point.
        records: u64,
        /// Their total framed size.
        bytes: u64,
    },
}

impl fmt::Display for WalDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalDefect::TornHeader { bytes } => {
                write!(f, "torn header: {} stray bytes after magic", bytes)
            }
            WalDefect::CorruptLength { offset } => {
                write!(f, "corrupt length prefix at offset {}", offset)
            }
            WalDefect::TornTail { offset, missing } => {
                write!(
                    f,
                    "torn tail at offset {} ({} bytes missing)",
                    offset, missing
                )
            }
            WalDefect::BadCrc { offset } => write!(f, "checksum mismatch at offset {}", offset),
            WalDefect::UnknownKind { offset, kind } => {
                write!(f, "unknown record kind {} at offset {}", kind, offset)
            }
            WalDefect::UncommittedTail { records, bytes } => {
                write!(
                    f,
                    "uncommitted tail: {} record(s), {} bytes past last commit point",
                    records, bytes
                )
            }
        }
    }
}

/// What a read-only [`Wal::scan`] saw. `recoverable` distinguishes the
/// defects the recovery scanner repairs by design (torn/uncommitted tails)
/// from nothing-wrong; a bad magic is an error, not a scan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalScan {
    /// Header generation stamp.
    pub generation: u64,
    /// Records inside the committed prefix.
    pub committed_records: u64,
    /// Commit points (commit + cycle markers) inside the committed prefix.
    pub commit_points: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// End of the committed prefix (what recovery would truncate to).
    pub committed_bytes: u64,
    /// Everything wrong with the tail, in file order.
    pub defects: Vec<WalDefect>,
}

/// A record recovered from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A client operation payload.
    Op(Vec<u8>),
    /// A transaction commit marker.
    Commit,
    /// A cycle-boundary marker with its client payload.
    Cycle(Vec<u8>),
}

// ---------------------------------------------------------------------------
// The log.

/// An append-only write-ahead log over one file.
pub struct Wal {
    file: File,
    path: PathBuf,
    opts: WalOptions,
    stats: WalStats,
    /// Record appends this session, for [`IoFaultPlan::at`] matching.
    appended: u64,
    /// Commit points since the last fsync (group commit).
    unsynced_commits: u32,
    /// Header generation stamp (see the module docs).
    generation: u64,
    /// *Logical* offset of the append cursor: file bytes plus buffered
    /// bytes (`end == flushed + buf.len()`).
    end: u64,
    /// Logical offset just past the last commit-point frame (or the
    /// header): the truncation target when a half-appended batch must be
    /// dropped. May point into the buffer.
    tail_base: u64,
    /// Physical file length: everything at or below this offset has been
    /// handed to the OS (though not necessarily fsynced).
    flushed: u64,
    /// Frames appended but not yet written to the file. Flushed as one
    /// `write(2)` when the group-commit window closes (see module docs).
    buf: Vec<u8>,
    fault: Option<IoFaultPlan>,
    /// Transient failures already delivered (see [`IoFaultKind::Transient`]).
    transient_spent: u32,
    /// After a crash (simulated or real) every call errors until reopen.
    poisoned: bool,
    /// Armed by an [`IoFaultKind::FsyncError`] append; fires at next sync.
    fsync_fault_armed: bool,
    /// Span recorder for `wal_append` / `wal_flush` / `wal_fsync`
    /// intervals; disabled (free) unless the client installs one.
    spans: sorete_base::Spans,
}

impl Wal {
    /// Read-only diagnostic scan for `sorete fsck`: walk the framing
    /// exactly like [`Wal::recover`] but report every defect instead of
    /// truncating. Never modifies the file. Errors only when the file is
    /// missing, unreadable, or not a WAL at all (bad magic).
    pub fn scan(path: &Path) -> Result<WalScan, DbError> {
        let buf =
            std::fs::read(path).map_err(|e| DbError::Io(format!("read wal {:?}: {}", path, e)))?;
        let mut scan = WalScan {
            file_bytes: buf.len() as u64,
            ..WalScan::default()
        };
        if buf.is_empty() {
            return Ok(scan);
        }
        if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(DbError::Corrupt(format!(
                "{:?} is not a WAL (bad magic)",
                path
            )));
        }
        if buf.len() < HEADER_LEN {
            scan.defects.push(WalDefect::TornHeader {
                bytes: (buf.len() - WAL_MAGIC.len()) as u64,
            });
            scan.committed_bytes = WAL_MAGIC.len() as u64;
            return Ok(scan);
        }
        scan.generation = u64::from_le_bytes(buf[WAL_MAGIC.len()..HEADER_LEN].try_into().unwrap());
        let mut pos = HEADER_LEN;
        let mut last_commit_end = pos;
        let mut committed = 0u64;
        let mut pending = 0u64;
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD {
                scan.defects
                    .push(WalDefect::CorruptLength { offset: pos as u64 });
                break;
            }
            let end = pos + 8 + len as usize;
            if end > buf.len() {
                scan.defects.push(WalDefect::TornTail {
                    offset: pos as u64,
                    missing: (end - buf.len()) as u64,
                });
                break;
            }
            let body = &buf[pos + 8..end];
            if crc32(body) != crc {
                scan.defects.push(WalDefect::BadCrc { offset: pos as u64 });
                break;
            }
            match body[0] {
                KIND_OP => pending += 1,
                KIND_COMMIT | KIND_CYCLE => {
                    pending += 1;
                    committed += pending;
                    pending = 0;
                    last_commit_end = end;
                    scan.commit_points += 1;
                }
                kind => {
                    scan.defects.push(WalDefect::UnknownKind {
                        offset: pos as u64,
                        kind,
                    });
                    break;
                }
            }
            pos = end;
        }
        if pos + 8 > buf.len() && pos < buf.len() {
            // A partial frame header (fewer than 8 bytes) is a torn tail
            // the loop above never entered.
            scan.defects.push(WalDefect::TornTail {
                offset: pos as u64,
                missing: (pos + 8 - buf.len()) as u64,
            });
        }
        if pending > 0 {
            scan.defects.push(WalDefect::UncommittedTail {
                records: pending,
                bytes: (pos - last_commit_end) as u64,
            });
        }
        scan.committed_records = committed;
        scan.committed_bytes = last_commit_end as u64;
        Ok(scan)
    }

    /// Scan `path` without opening it for writing: return the committed
    /// record prefix and recovery counters, and truncate any torn, short,
    /// corrupt, or uncommitted tail in place. A missing file recovers to
    /// an empty log.
    pub fn recover(path: &Path) -> Result<(Vec<WalRecord>, WalStats), DbError> {
        let mut stats = WalStats::default();
        let buf = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), stats)),
            Err(e) => return Err(DbError::Io(format!("read wal {:?}: {}", path, e))),
        };
        if buf.is_empty() {
            return Ok((Vec::new(), stats));
        }
        if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(DbError::Corrupt(format!(
                "{:?} is not a WAL (bad magic)",
                path
            )));
        }
        if buf.len() < HEADER_LEN {
            // Torn initial header: the generation stamp never fully landed,
            // which can only happen while creating a brand-new (gen 0) log.
            stats.truncated_bytes = (buf.len() - WAL_MAGIC.len()) as u64;
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| DbError::Io(format!("open wal {:?} for truncation: {}", path, e)))?;
            f.set_len(WAL_MAGIC.len() as u64)
                .map_err(|e| DbError::Io(format!("truncate wal {:?}: {}", path, e)))?;
            return Ok((Vec::new(), stats));
        }
        stats.generation = u64::from_le_bytes(buf[WAL_MAGIC.len()..HEADER_LEN].try_into().unwrap());
        let mut pos = HEADER_LEN;
        let mut last_commit_end = pos;
        let mut committed: Vec<WalRecord> = Vec::new();
        let mut pending: Vec<WalRecord> = Vec::new();
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD {
                break; // corrupt length prefix
            }
            let end = pos + 8 + len as usize;
            if end > buf.len() {
                break; // short (torn) tail
            }
            let body = &buf[pos + 8..end];
            if crc32(body) != crc {
                break; // torn sector / bit rot
            }
            match body[0] {
                KIND_OP => pending.push(WalRecord::Op(body[1..].to_vec())),
                KIND_COMMIT => {
                    pending.push(WalRecord::Commit);
                    committed.append(&mut pending);
                    last_commit_end = end;
                }
                KIND_CYCLE => {
                    pending.push(WalRecord::Cycle(body[1..].to_vec()));
                    committed.append(&mut pending);
                    last_commit_end = end;
                }
                _ => break, // unknown kind: treat as corruption
            }
            pos = end;
        }
        stats.recovered_records = committed.len() as u64;
        stats.discarded_records = pending.len() as u64;
        stats.truncated_bytes = (buf.len() - last_commit_end) as u64;
        if stats.truncated_bytes > 0 {
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| DbError::Io(format!("open wal {:?} for truncation: {}", path, e)))?;
            f.set_len(last_commit_end as u64)
                .map_err(|e| DbError::Io(format!("truncate wal {:?}: {}", path, e)))?;
        }
        Ok((committed, stats))
    }

    /// Open `path` for appending, running [`Wal::recover`] first. Returns
    /// the log handle and the committed records to replay (empty for a new
    /// file).
    pub fn open(path: &Path, opts: WalOptions) -> Result<(Wal, Vec<WalRecord>), DbError> {
        let (records, rec_stats) = Wal::recover(path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| DbError::Io(format!("open wal {:?}: {}", path, e)))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| DbError::Io(format!("seek wal {:?}: {}", path, e)))?;
        let end = if len < HEADER_LEN as u64 {
            // New file, or a torn initial header truncated back to the
            // magic by recovery: (re)write the full header, generation 0.
            file.set_len(0)
                .and_then(|_| file.seek(SeekFrom::Start(0)))
                .and_then(|_| file.write_all(WAL_MAGIC))
                .and_then(|_| file.write_all(&0u64.to_le_bytes()))
                .and_then(|_| file.sync_data())
                .map_err(|e| DbError::Io(format!("init wal {:?}: {}", path, e)))?;
            HEADER_LEN as u64
        } else {
            // Sanity: recover() validated the magic unless the file was
            // empty, but re-check in case of a race with another writer.
            let mut magic = [0u8; 10];
            file.seek(SeekFrom::Start(0))
                .and_then(|_| file.read_exact(&mut magic))
                .map_err(|e| DbError::Io(format!("read wal magic {:?}: {}", path, e)))?;
            if magic != WAL_MAGIC {
                return Err(DbError::Corrupt(format!(
                    "{:?} is not a WAL (bad magic)",
                    path
                )));
            }
            file.seek(SeekFrom::End(0))
                .map_err(|e| DbError::Io(format!("seek wal {:?}: {}", path, e)))?
        };
        let stats = WalStats {
            recovered_records: rec_stats.recovered_records,
            discarded_records: rec_stats.discarded_records,
            truncated_bytes: rec_stats.truncated_bytes,
            generation: rec_stats.generation,
            ..WalStats::default()
        };
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                opts,
                stats,
                appended: 0,
                unsynced_commits: 0,
                generation: rec_stats.generation,
                end,
                tail_base: end,
                flushed: end,
                buf: Vec::new(),
                fault: None,
                transient_spent: 0,
                poisoned: false,
                fsync_fault_armed: false,
                spans: sorete_base::Spans::null(),
            },
            records,
        ))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Session counters.
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// The header's generation stamp (checkpoint-rotation count).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Install a span recorder: append, group-commit flush, and fsync
    /// intervals are recorded as `wal_append`/`wal_flush`/`wal_fsync`
    /// spans on the caller's lane (0).
    pub fn set_spans(&mut self, spans: sorete_base::Spans) {
        self.spans = spans;
    }

    /// Arm a storage fault (see [`IoFaultPlan`]).
    pub fn inject_fault(&mut self, plan: IoFaultPlan) {
        self.fault = Some(plan);
        self.transient_spent = 0;
    }

    /// Whether a crash (simulated or real) has retired this handle. A
    /// poisoned log is *not* retryable: the bytes on disk are unknowable
    /// and only reopen (which re-runs recovery) re-establishes the truth.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append a client op record (not yet committed).
    pub fn append_op(&mut self, payload: &[u8]) -> Result<(), DbError> {
        self.append_record(KIND_OP, payload)
    }

    /// Append a transaction commit marker — a commit point: everything
    /// since the previous marker becomes durable per the group-commit
    /// policy.
    pub fn append_commit(&mut self) -> Result<(), DbError> {
        self.append_record(KIND_COMMIT, &[])?;
        self.commit_point()
    }

    /// Append a cycle-boundary marker carrying `payload` (e.g. run
    /// statistics). Also a commit point.
    pub fn append_cycle(&mut self, payload: &[u8]) -> Result<(), DbError> {
        self.append_record(KIND_CYCLE, payload)?;
        self.commit_point()
    }

    fn commit_point(&mut self) -> Result<(), DbError> {
        self.stats.commits += 1;
        self.unsynced_commits += 1;
        if self.unsynced_commits >= self.opts.group_commit.max(1) {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush and fsync now, regardless of the group-commit window.
    ///
    /// A *real* fsync failure poisons the log: after `EIO` the kernel may
    /// have dropped the dirty pages, so the in-memory picture of what is
    /// durable can no longer be trusted — only reopening (which re-runs
    /// recovery against the file itself) re-establishes it.
    pub fn sync(&mut self) -> Result<(), DbError> {
        let sp = self.spans.begin();
        let r = self.sync_inner();
        let spans = self.spans.clone();
        spans.end(sp, sorete_base::span::category::WAL_FSYNC, 0, Vec::new);
        r
    }

    fn sync_inner(&mut self) -> Result<(), DbError> {
        if self.poisoned {
            return Err(DbError::Io("wal poisoned by crash".into()));
        }
        self.flush()?;
        if self.fsync_fault_armed {
            self.fsync_fault_armed = false;
            self.poisoned = true;
            return Err(DbError::Io("injected fsync failure".into()));
        }
        if let Err(e) = self.file.sync_data() {
            self.poisoned = true;
            return Err(DbError::Io(format!("fsync wal {:?}: {}", self.path, e)));
        }
        self.stats.fsyncs += 1;
        self.unsynced_commits = 0;
        Ok(())
    }

    /// Hand the buffered frames to the OS as a single `write(2)`. On a
    /// real I/O error an unknown prefix of the buffer may be on disk:
    /// truncate the file back to the last known-good length and retire
    /// the handle (the failed window's commits were never acknowledged
    /// as durable, so dropping them whole is honest).
    fn flush(&mut self) -> Result<(), DbError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let bytes = self.buf.len() as u64;
        let sp = self.spans.begin();
        let r = self.flush_inner();
        let spans = self.spans.clone();
        spans.end(sp, sorete_base::span::category::WAL_FLUSH, 0, || {
            vec![("bytes", bytes)]
        });
        r
    }

    fn flush_inner(&mut self) -> Result<(), DbError> {
        if let Err(e) = self.file.write_all(&self.buf) {
            self.poisoned = true;
            self.buf.clear();
            let ok = self.file.set_len(self.flushed).is_ok()
                && self.file.seek(SeekFrom::Start(self.flushed)).is_ok();
            if ok {
                self.end = self.flushed;
                self.tail_base = self.tail_base.min(self.end);
            }
            return Err(DbError::Io(format!("flush wal {:?}: {}", self.path, e)));
        }
        self.flushed += self.buf.len() as u64;
        self.buf.clear();
        self.stats.writes += 1;
        Ok(())
    }

    /// Rotate after a checkpoint: the checkpoint file now carries all
    /// state, so the log restarts empty under the checkpoint's
    /// `generation` stamp. Order matters: truncate *first*, then stamp —
    /// a crash in between leaves an empty log still carrying the old
    /// generation, which clients detect as stale (checkpoint one ahead)
    /// rather than silently replaying old records under the new stamp.
    pub fn rotate(&mut self, generation: u64) -> Result<(), DbError> {
        if self.poisoned {
            return Err(DbError::Io("wal poisoned by crash".into()));
        }
        // Buffered frames are already folded into the checkpoint this
        // rotation serves; they must not survive into the fresh log.
        self.buf.clear();
        let r = self
            .file
            .set_len(HEADER_LEN as u64)
            .and_then(|_| self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64)))
            .and_then(|_| self.file.write_all(&generation.to_le_bytes()))
            .and_then(|_| self.file.sync_data())
            .and_then(|_| self.file.seek(SeekFrom::End(0)));
        match r {
            Ok(_) => {
                self.generation = generation;
                self.stats.generation = generation;
                self.end = HEADER_LEN as u64;
                self.tail_base = self.end;
                self.flushed = self.end;
                self.stats.fsyncs += 1;
                self.unsynced_commits = 0;
                Ok(())
            }
            Err(e) => {
                // The file may be anywhere between truncated and stamped;
                // refuse further use until reopen re-derives the truth.
                self.poisoned = true;
                Err(DbError::Io(format!("rotate wal {:?}: {}", self.path, e)))
            }
        }
    }

    /// Drop a half-appended batch: truncate back to the last commit point
    /// so no later marker can adopt its records into the committed
    /// prefix. `poison` additionally retires the handle (used when the
    /// on-disk bytes are unknowable after a real I/O error).
    fn abort_tail(&mut self, poison: bool) {
        if poison {
            self.poisoned = true;
        }
        if self.tail_base >= self.flushed {
            // The whole uncommitted tail is still buffered; dropping it is
            // a memory truncation, no file surgery needed.
            self.buf.truncate((self.tail_base - self.flushed) as usize);
            self.end = self.tail_base;
            return;
        }
        // An explicit sync() flushed uncommitted frames mid-batch: cut the
        // file back to the last commit point too.
        self.buf.clear();
        let ok = self.file.set_len(self.tail_base).is_ok()
            && self.file.seek(SeekFrom::Start(self.tail_base)).is_ok();
        if ok {
            self.end = self.tail_base;
            self.flushed = self.tail_base;
        } else {
            // Couldn't even truncate: the orphan bytes stay, so the handle
            // must never append a marker that would commit them.
            self.poisoned = true;
        }
    }

    fn append_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), DbError> {
        let sp = self.spans.begin();
        let r = self.append_record_inner(kind, payload);
        let spans = self.spans.clone();
        spans.end(sp, sorete_base::span::category::WAL_APPEND, 0, Vec::new);
        r
    }

    fn append_record_inner(&mut self, kind: u8, payload: &[u8]) -> Result<(), DbError> {
        if self.poisoned {
            return Err(DbError::Io("wal poisoned by crash".into()));
        }
        let n = self.appended;
        self.appended += 1;
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(kind);
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        if let Some(plan) = self.fault {
            // Transient faults fire on every append at or after `at` until
            // `fail_n` failures have been delivered — retried appends get
            // fresh record indices, so an exact-index match would let a
            // single retry "skip past" the outage.
            if let IoFaultKind::Transient { fail_n } = plan.kind {
                if n >= plan.at && self.transient_spent < fail_n {
                    self.transient_spent += 1;
                    self.stats.transient_errors += 1;
                    self.abort_tail(false);
                    return Err(DbError::Io(format!(
                        "injected transient append failure at record {} ({}/{})",
                        n, self.transient_spent, fail_n
                    )));
                }
            } else if plan.at == n {
                match plan.kind {
                    IoFaultKind::Transient { .. } => unreachable!("handled above"),
                    IoFaultKind::Fail => {
                        // Clean failure: nothing from *this* frame reached
                        // the file, but earlier records of the same batch
                        // did — drop them too, or a later marker would
                        // commit a half-logged transaction.
                        self.abort_tail(false);
                        return Err(DbError::Io(format!(
                            "injected append failure at record {}",
                            n
                        )));
                    }
                    IoFaultKind::ShortWrite => {
                        // Flush earlier buffered frames first so the file
                        // shows the same crash shape as an unbuffered log:
                        // the batch prefix intact, this frame torn in half.
                        let _ = self.flush();
                        let cut = frame.len() / 2;
                        let _ = self.file.write_all(&frame[..cut]);
                        let _ = self.file.sync_data();
                        self.poisoned = true;
                        return Err(DbError::Io(format!(
                            "injected short write at record {} ({} of {} bytes)",
                            n,
                            cut,
                            frame.len()
                        )));
                    }
                    IoFaultKind::TornWrite => {
                        // Flip a payload byte so the frame is length-intact
                        // but fails its checksum.
                        let _ = self.flush();
                        let i = frame.len() - 1;
                        frame[i] ^= 0x40;
                        let _ = self.file.write_all(&frame);
                        let _ = self.file.sync_data();
                        self.poisoned = true;
                        return Err(DbError::Io(format!("injected torn write at record {}", n)));
                    }
                    IoFaultKind::FsyncError => {
                        self.fsync_fault_armed = true;
                        // The write itself "succeeds"; the sync will not.
                    }
                }
            }
        }
        // Buffered append: the frame reaches the file at the next flush
        // (commit-window close, explicit sync, rotation, or drop). Real
        // write errors therefore surface in flush(), which truncates the
        // partial window away and poisons the handle.
        self.buf.extend_from_slice(&frame);
        self.end += frame.len() as u64;
        if kind != KIND_OP {
            self.tail_base = self.end;
        }
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Hand any buffered frames to the OS (matching the unbuffered
        // log, whose appends always reached the page cache even when the
        // final fsync window never closed). Errors are moot here: nothing
        // in the buffer was ever acknowledged as durable.
        if !self.poisoned && !self.buf.is_empty() {
            let _ = self.file.write_all(&self.buf);
        }
    }
}

// ---------------------------------------------------------------------------
// Shared WME-op payload codec.
//
// Both the core engine's WAL and the DIPS parallel-firing WAL log
// working-memory effects; they share this tab-separated text codec built
// on the Value wire tokens (crate::persist uses the same tokens).

/// A logged working-memory operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WmeOp {
    /// A WME entered working memory (carries its assigned time tag).
    Assert(Wme),
    /// The WME with this tag left working memory.
    Retract(TimeTag),
    /// In-place slot updates keeping the same tag (DIPS `set-modify`).
    Update(TimeTag, Vec<(Symbol, Value)>),
}

/// Encode a [`WmeOp`] as a WAL op payload.
pub fn encode_wme_op(op: &WmeOp) -> Vec<u8> {
    let mut s = String::new();
    match op {
        WmeOp::Assert(w) => {
            s.push('A');
            s.push('\t');
            s.push_str(&w.tag.raw().to_string());
            s.push('\t');
            Value::Sym(w.class).push_wire(&mut s);
            for (a, v) in w.slots() {
                s.push('\t');
                Value::Sym(*a).push_wire(&mut s);
                s.push('\t');
                v.push_wire(&mut s);
            }
        }
        WmeOp::Retract(tag) => {
            s.push('R');
            s.push('\t');
            s.push_str(&tag.raw().to_string());
        }
        WmeOp::Update(tag, updates) => {
            s.push('U');
            s.push('\t');
            s.push_str(&tag.raw().to_string());
            for (a, v) in updates {
                s.push('\t');
                Value::Sym(*a).push_wire(&mut s);
                s.push('\t');
                v.push_wire(&mut s);
            }
        }
    }
    s.into_bytes()
}

/// Decode a [`WmeOp`] payload.
pub fn decode_wme_op(bytes: &[u8]) -> Result<WmeOp, DbError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| DbError::Corrupt("wme op is not utf-8".into()))?;
    let mut parts = text.split('\t');
    let kind = parts.next().unwrap_or("");
    let tag = parts
        .next()
        .and_then(|t| t.parse::<u64>().ok())
        .map(TimeTag::new)
        .ok_or_else(|| DbError::Corrupt(format!("wme op missing tag: `{}`", text)))?;
    let sym_of = |tok: &str| -> Result<Symbol, DbError> {
        match Value::from_wire(tok).map_err(DbError::Corrupt)? {
            Value::Sym(s) => Ok(s),
            other => Err(DbError::Corrupt(format!(
                "expected symbol, got `{}`",
                other
            ))),
        }
    };
    let pairs = |parts: &mut std::str::Split<'_, char>| -> Result<Vec<(Symbol, Value)>, DbError> {
        let mut out = Vec::new();
        while let Some(attr) = parts.next() {
            let val = parts
                .next()
                .ok_or_else(|| DbError::Corrupt(format!("dangling attribute in `{}`", text)))?;
            out.push((
                sym_of(attr)?,
                Value::from_wire(val).map_err(DbError::Corrupt)?,
            ));
        }
        Ok(out)
    };
    match kind {
        "A" => {
            let class =
                sym_of(parts.next().ok_or_else(|| {
                    DbError::Corrupt(format!("assert missing class: `{}`", text))
                })?)?;
            let slots = pairs(&mut parts)?;
            Ok(WmeOp::Assert(Wme::new(tag, class, slots)))
        }
        "R" => Ok(WmeOp::Retract(tag)),
        "U" => Ok(WmeOp::Update(tag, pairs(&mut parts)?)),
        other => Err(DbError::Corrupt(format!("unknown wme op `{}`", other))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sorete-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{}.wal", name, std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_committed_prefix() {
        let path = tmp("basic");
        {
            let (mut wal, rec) = Wal::open(&path, WalOptions::default()).unwrap();
            assert!(rec.is_empty());
            wal.append_op(b"one").unwrap();
            wal.append_op(b"two").unwrap();
            wal.append_commit().unwrap();
            wal.append_op(b"uncommitted").unwrap();
        }
        let (records, stats) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Op(b"one".to_vec()),
                WalRecord::Op(b"two".to_vec()),
                WalRecord::Commit,
            ]
        );
        assert_eq!(stats.discarded_records, 1);
        assert!(stats.truncated_bytes > 0);
        // Recovery truncated: a second scan finds a clean log.
        let (_, stats2) = Wal::recover(&path).unwrap();
        assert_eq!(stats2.truncated_bytes, 0);
        assert_eq!(stats2.recovered_records, 3);
    }

    #[test]
    fn cycle_markers_are_commit_points_and_carry_payloads() {
        let path = tmp("cycle");
        {
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            wal.append_op(b"x").unwrap();
            wal.append_cycle(b"cycle-1-stats").unwrap();
        }
        let (records, _) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Op(b"x".to_vec()),
                WalRecord::Cycle(b"cycle-1-stats".to_vec()),
            ]
        );
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            wal.append_op(b"safe").unwrap();
            wal.append_commit().unwrap();
            wal.append_op(b"doomed").unwrap();
            wal.append_commit().unwrap();
        }
        // Chop mid-frame: the second commit becomes a torn tail.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (records, stats) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![WalRecord::Op(b"safe".to_vec()), WalRecord::Commit],
            "only the first committed group survives"
        );
        assert!(stats.truncated_bytes > 0);
        // Appending after recovery produces a valid log again.
        let (mut wal, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.len(), 2);
        wal.append_op(b"after").unwrap();
        wal.append_commit().unwrap();
        drop(wal);
        let (records, _) = Wal::recover(&path).unwrap();
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        {
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            wal.append_op(b"good").unwrap();
            wal.append_commit().unwrap();
            wal.append_op(b"bad").unwrap();
            wal.append_commit().unwrap();
        }
        // Flip a byte inside the third frame's payload.
        let mut buf = std::fs::read(&path).unwrap();
        let n = buf.len();
        buf[n - 12] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        let (records, stats) = Wal::recover(&path).unwrap();
        assert_eq!(records.len(), 2, "replay stops at the corrupt frame");
        assert!(stats.truncated_bytes > 0);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let p1 = tmp("gc1");
        let p8 = tmp("gc8");
        let (mut w1, _) = Wal::open(&p1, WalOptions { group_commit: 1 }).unwrap();
        let (mut w8, _) = Wal::open(&p8, WalOptions { group_commit: 8 }).unwrap();
        for _ in 0..16 {
            w1.append_op(b"x").unwrap();
            w1.append_commit().unwrap();
            w8.append_op(b"x").unwrap();
            w8.append_commit().unwrap();
        }
        assert_eq!(w1.stats().fsyncs, 16);
        assert_eq!(w8.stats().fsyncs, 2);
        assert_eq!(w1.stats().commits, 16);
        assert_eq!(w8.stats().commits, 16);
        // Appends are buffered: each group-commit window flushes as one
        // write(2), so gc8 issues 2 writes for its 32 records.
        assert_eq!(w1.stats().writes, 16);
        assert_eq!(w8.stats().writes, 2);
        assert_eq!(w8.stats().records, 32);
        // A 17th commit leaves its window open (buffered, no write yet);
        // a clean drop still hands it to the OS, like the unbuffered log
        // whose appends always reached the page cache.
        w8.append_op(b"tail").unwrap();
        w8.append_commit().unwrap();
        assert_eq!(w8.stats().writes, 2, "open window stays buffered");
        drop(w8);
        let (records, _) = Wal::recover(&p8).unwrap();
        assert_eq!(records.len(), 34, "clean drop flushes the open window");
    }

    #[test]
    fn rotate_empties_the_log() {
        let path = tmp("rotate");
        let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        wal.append_op(b"pre").unwrap();
        wal.append_commit().unwrap();
        wal.rotate(1).unwrap();
        wal.append_op(b"post").unwrap();
        wal.append_commit().unwrap();
        drop(wal);
        let (records, stats) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![WalRecord::Op(b"post".to_vec()), WalRecord::Commit]
        );
        assert_eq!(stats.generation, 1, "rotation stamped the generation");
    }

    #[test]
    fn generation_survives_reopen() {
        let path = tmp("gen");
        {
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            assert_eq!(wal.generation(), 0);
            wal.rotate(3).unwrap();
            wal.append_op(b"x").unwrap();
            wal.append_commit().unwrap();
        }
        let (wal, records) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(wal.generation(), 3);
        assert_eq!(wal.stats().generation, 3);
        assert_eq!(records.len(), 2, "records under the new generation replay");
    }

    #[test]
    fn failed_append_aborts_the_whole_batch() {
        // A clean append failure mid-batch must drop the batch's earlier
        // records, or the *next* successful commit marker would adopt
        // them into the committed prefix (orphan ops from a transaction
        // the client rolled back).
        let path = tmp("abort-batch");
        let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        wal.append_op(b"committed").unwrap();
        wal.append_commit().unwrap();
        wal.inject_fault(IoFaultPlan::nth(IoFaultKind::Fail, 3));
        wal.append_op(b"orphan").unwrap(); // record 2: lands, then...
        assert!(wal.append_op(b"doomed").is_err()); // record 3: batch aborts
                                                    // The client rolled the transaction back; a later transaction
                                                    // commits fine and must not resurrect "orphan".
        wal.append_op(b"next").unwrap();
        wal.append_commit().unwrap();
        drop(wal);
        let (records, _) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Op(b"committed".to_vec()),
                WalRecord::Commit,
                WalRecord::Op(b"next".to_vec()),
                WalRecord::Commit,
            ]
        );
    }

    #[test]
    fn injected_faults_crash_then_recover_cleanly() {
        for kind in [
            IoFaultKind::Fail,
            IoFaultKind::ShortWrite,
            IoFaultKind::TornWrite,
            IoFaultKind::FsyncError,
            IoFaultKind::Transient { fail_n: 1 },
        ] {
            let path = tmp(&format!("fault-{:?}", kind));
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            wal.inject_fault(IoFaultPlan::nth(kind, 3)); // the 2nd commit marker
            wal.append_op(b"a").unwrap();
            wal.append_commit().unwrap();
            wal.append_op(b"b").unwrap();
            let r = wal.append_commit();
            assert!(r.is_err(), "{:?} surfaces an error", kind);
            drop(wal);
            let (records, _) = Wal::recover(&path).unwrap();
            // The first committed group always survives; the faulted one
            // never partially survives.
            match kind {
                IoFaultKind::Fail
                | IoFaultKind::ShortWrite
                | IoFaultKind::TornWrite
                | IoFaultKind::Transient { .. } => {
                    assert_eq!(
                        records,
                        vec![WalRecord::Op(b"a".to_vec()), WalRecord::Commit],
                        "{:?}",
                        kind
                    );
                }
                IoFaultKind::FsyncError => {
                    // The frame hit the page cache before the failed sync;
                    // recovery may legitimately see it (fsync failure means
                    // "unknown durability", not "guaranteed loss"), but
                    // never a half-frame.
                    assert!(records.len() == 2 || records.len() == 4, "{:?}", kind);
                }
            }
        }
    }

    #[test]
    fn poisoned_wal_refuses_everything() {
        let path = tmp("poison");
        let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        wal.inject_fault(IoFaultPlan::nth(IoFaultKind::ShortWrite, 0));
        assert!(wal.append_op(b"x").is_err());
        assert!(wal.append_op(b"y").is_err(), "poisoned");
        assert!(wal.sync().is_err(), "poisoned");
        assert!(wal.rotate(1).is_err(), "poisoned");
    }

    #[test]
    fn wme_op_roundtrip() {
        let w = Wme::new(
            TimeTag::new(7),
            Symbol::new("player"),
            vec![
                (Symbol::new("name"), Value::sym("Sue\twith\ttabs")),
                (Symbol::new("rating"), Value::Float(0.5)),
                (Symbol::new("team"), Value::Nil),
            ],
        );
        for op in [
            WmeOp::Assert(w.clone()),
            WmeOp::Retract(TimeTag::new(9)),
            WmeOp::Update(
                TimeTag::new(3),
                vec![(Symbol::new("team"), Value::sym("B"))],
            ),
        ] {
            let enc = encode_wme_op(&op);
            assert_eq!(decode_wme_op(&enc).unwrap(), op, "{:?}", op);
        }
        assert!(decode_wme_op(b"Z\t1").is_err());
        assert!(
            decode_wme_op(b"A\t1\tS:c\tS:attr").is_err(),
            "dangling attr"
        );
    }

    #[test]
    fn transient_fault_heals_after_fail_n_and_never_poisons() {
        let path = tmp("transient");
        let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        wal.append_op(b"pre").unwrap();
        wal.append_commit().unwrap();
        wal.inject_fault(IoFaultPlan::nth(IoFaultKind::Transient { fail_n: 2 }, 2));
        // Two attempts fail cleanly (retryable), the third succeeds.
        assert!(wal.append_op(b"try").is_err());
        assert!(!wal.is_poisoned(), "transient faults never poison");
        assert!(wal.append_op(b"try").is_err());
        wal.append_op(b"try").unwrap();
        wal.append_commit().unwrap();
        assert_eq!(wal.stats().transient_errors, 2);
        drop(wal);
        let (records, _) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Op(b"pre".to_vec()),
                WalRecord::Commit,
                WalRecord::Op(b"try".to_vec()),
                WalRecord::Commit,
            ],
            "failed attempts leave no trace; the healed append commits once"
        );
    }

    #[test]
    fn transient_fault_aborts_batch_prefix_each_attempt() {
        // Each failed attempt must drop the batch's earlier records, so a
        // retry that re-appends the whole batch never duplicates ops.
        let path = tmp("transient-batch");
        let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        wal.inject_fault(IoFaultPlan::nth(IoFaultKind::Transient { fail_n: 1 }, 1));
        wal.append_op(b"a").unwrap(); // record 0 lands
        assert!(wal.append_op(b"b").is_err()); // record 1 fails, batch dropped
                                               // Retry the whole batch.
        wal.append_op(b"a").unwrap();
        wal.append_op(b"b").unwrap();
        wal.append_commit().unwrap();
        drop(wal);
        let (records, _) = Wal::recover(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Op(b"a".to_vec()),
                WalRecord::Op(b"b".to_vec()),
                WalRecord::Commit,
            ]
        );
    }

    #[test]
    fn scan_is_read_only_and_reports_defects() {
        let path = tmp("scan");
        {
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            wal.rotate(2).unwrap();
            wal.append_op(b"one").unwrap();
            wal.append_commit().unwrap();
            wal.append_op(b"uncommitted").unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.generation, 2);
        assert_eq!(scan.committed_records, 2);
        assert_eq!(scan.commit_points, 1);
        assert_eq!(
            scan.defects,
            vec![WalDefect::UncommittedTail {
                records: 1,
                bytes: before.len() as u64 - scan.committed_bytes,
            }]
        );
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "scan must not modify the file"
        );
        // Now tear the tail mid-frame and flip a committed byte's CRC view.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(before.len() as u64 - 3).unwrap();
        drop(f);
        let scan = Wal::scan(&path).unwrap();
        assert!(
            matches!(scan.defects[0], WalDefect::TornTail { missing: 3, .. }),
            "{:?}",
            scan.defects
        );
        // A non-WAL file is an error, not a scan.
        let bogus = tmp("scan-bogus");
        std::fs::write(&bogus, b"not a wal at all").unwrap();
        assert!(matches!(Wal::scan(&bogus), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn scan_flags_bad_crc() {
        let path = tmp("scan-crc");
        {
            let (mut wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
            wal.append_op(b"good").unwrap();
            wal.append_commit().unwrap();
            wal.append_op(b"bad!").unwrap();
            wal.append_commit().unwrap();
        }
        let mut buf = std::fs::read(&path).unwrap();
        let n = buf.len();
        buf[n - 12] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.committed_records, 2, "replay stops at the bad frame");
        assert!(
            scan.defects
                .iter()
                .any(|d| matches!(d, WalDefect::BadCrc { .. })),
            "{:?}",
            scan.defects
        );
    }

    #[test]
    fn recover_missing_file_is_empty() {
        let path = tmp("missing");
        let (records, stats) = Wal::recover(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(stats, WalStats::default());
    }
}
