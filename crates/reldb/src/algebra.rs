//! Relational algebra: plans and a straightforward executor.
//!
//! Plans are built programmatically (or by the SQL subset in
//! [`crate::sql`]) and executed against a [`crate::Database`]. Columns in
//! intermediate relations carry qualified names (`table.col`); references
//! resolve by exact match or unique suffix.

use crate::db::Database;
use crate::error::DbError;
use crate::table::Row;
use sorete_base::{FxHashMap, Value};
use std::cmp::Ordering;

/// Comparison operators (NULL-aware: any comparison with `nil` is false).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply with SQL-style NULL semantics.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        if a.is_nil() || b.is_nil() {
            return false;
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a.cmp(b) == Ordering::Less,
            CmpOp::Le => a.cmp(b) != Ordering::Greater,
            CmpOp::Gt => a.cmp(b) == Ordering::Greater,
            CmpOp::Ge => a.cmp(b) != Ordering::Less,
        }
    }
}

/// A column reference: `"col"` or `"table.col"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColRef(pub String);

impl ColRef {
    /// Build from a string.
    pub fn new(s: &str) -> ColRef {
        ColRef(s.to_string())
    }

    /// Resolve against a set of qualified column names.
    pub fn resolve(&self, cols: &[String]) -> Result<usize, DbError> {
        if let Some(i) = cols.iter().position(|c| *c == self.0) {
            return Ok(i);
        }
        let suffix = format!(".{}", self.0);
        let hits: Vec<usize> = cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [one] => Ok(*one),
            [] => Err(DbError::UnknownColumn(self.0.clone())),
            _ => Err(DbError::UnknownColumn(format!("{} (ambiguous)", self.0))),
        }
    }
}

/// A scalar term in a predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// Column value.
    Col(ColRef),
    /// Literal.
    Lit(Value),
}

/// Predicates over a row.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// Comparison.
    Cmp(CmpOp, Scalar, Scalar),
    /// `col IS NULL` (`negated = true` for `IS NOT NULL`).
    IsNull(ColRef, bool),
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Always true.
    True,
}

/// SQL aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFun {
    /// Row count (of non-null values of the column).
    Count,
    /// Numeric sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Numeric mean.
    Avg,
}

impl AggFun {
    /// Keyword name.
    pub fn name(self) -> &'static str {
        match self {
            AggFun::Count => "count",
            AggFun::Sum => "sum",
            AggFun::Min => "min",
            AggFun::Max => "max",
            AggFun::Avg => "avg",
        }
    }
}

/// A query plan.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Full table scan.
    Scan(String),
    /// Filter.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Row predicate.
        pred: Pred,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Columns to keep, in order.
        cols: Vec<ColRef>,
    },
    /// Equi-join (`on` empty ⇒ cross product).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Equality column pairs (left, right).
        on: Vec<(ColRef, ColRef)>,
    },
    /// Grouping. With aggregates: one output row per group (keys + agg
    /// columns). Without: the paper's Figure-6 "grouped relation" form —
    /// every input row, prefixed with a 1-based `group` number, sorted by
    /// the grouping key.
    GroupBy {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping key columns.
        keys: Vec<ColRef>,
        /// Aggregates: (function, argument column).
        aggs: Vec<(AggFun, ColRef)>,
    },
    /// Sort.
    OrderBy {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys (column, ascending?).
        keys: Vec<(ColRef, bool)>,
    },
    /// Row limit.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum rows.
        n: usize,
    },
}

/// An executed relation.
#[derive(Clone, Debug, PartialEq)]
pub struct Relation {
    /// Qualified column names.
    pub cols: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Pretty-print as an aligned text table (for demos / EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.cols.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.cols.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Evaluate a predicate on a row.
fn eval_pred(pred: &Pred, cols: &[String], row: &Row) -> Result<bool, DbError> {
    Ok(match pred {
        Pred::True => true,
        Pred::Cmp(op, a, b) => {
            let va = eval_scalar(a, cols, row)?;
            let vb = eval_scalar(b, cols, row)?;
            op.apply(&va, &vb)
        }
        Pred::IsNull(c, negated) => {
            let v = row[c.resolve(cols)?];
            v.is_nil() != *negated
        }
        Pred::And(parts) => {
            for p in parts {
                if !eval_pred(p, cols, row)? {
                    return Ok(false);
                }
            }
            true
        }
        Pred::Or(parts) => {
            for p in parts {
                if eval_pred(p, cols, row)? {
                    return Ok(true);
                }
            }
            false
        }
        Pred::Not(inner) => !eval_pred(inner, cols, row)?,
    })
}

fn eval_scalar(s: &Scalar, cols: &[String], row: &Row) -> Result<Value, DbError> {
    Ok(match s {
        Scalar::Col(c) => row[c.resolve(cols)?],
        Scalar::Lit(v) => *v,
    })
}

/// Execute a plan against a database.
pub fn execute(db: &Database, plan: &Plan) -> Result<Relation, DbError> {
    match plan {
        Plan::Scan(name) => {
            let table = db.table_by_name(name)?;
            let cols = table
                .schema
                .cols
                .iter()
                .map(|c| format!("{}.{}", table.schema.name, c))
                .collect();
            let rows = table.iter().map(|(_, r)| r.clone()).collect();
            Ok(Relation { cols, rows })
        }
        Plan::Select { input, pred } => {
            let mut rel = execute(db, input)?;
            let cols = rel.cols.clone();
            let mut err = None;
            rel.rows.retain(|r| match eval_pred(pred, &cols, r) {
                Ok(b) => b,
                Err(e) => {
                    err.get_or_insert(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok(rel)
        }
        Plan::Project { input, cols } => {
            let rel = execute(db, input)?;
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| c.resolve(&rel.cols))
                .collect::<Result<_, _>>()?;
            Ok(Relation {
                cols: idxs.iter().map(|&i| rel.cols[i].clone()).collect(),
                rows: rel
                    .rows
                    .iter()
                    .map(|r| idxs.iter().map(|&i| r[i]).collect())
                    .collect(),
            })
        }
        Plan::Join { left, right, on } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            let mut cols = l.cols.clone();
            cols.extend(r.cols.iter().cloned());
            let mut rows = Vec::new();
            if on.is_empty() {
                for lr in &l.rows {
                    for rr in &r.rows {
                        let mut row: Vec<Value> = lr.to_vec();
                        row.extend(rr.iter().copied());
                        rows.push(row.into());
                    }
                }
            } else {
                // Hash join on the equality keys.
                let lk: Vec<usize> = on
                    .iter()
                    .map(|(a, _)| a.resolve(&l.cols))
                    .collect::<Result<_, _>>()?;
                let rk: Vec<usize> = on
                    .iter()
                    .map(|(_, b)| b.resolve(&r.cols))
                    .collect::<Result<_, _>>()?;
                let mut index: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
                for (i, rr) in r.rows.iter().enumerate() {
                    let key: Vec<Value> = rk.iter().map(|&k| rr[k]).collect();
                    if key.iter().any(|v| v.is_nil()) {
                        continue; // NULLs never join
                    }
                    index.entry(key).or_default().push(i);
                }
                for lr in &l.rows {
                    let key: Vec<Value> = lk.iter().map(|&k| lr[k]).collect();
                    if key.iter().any(|v| v.is_nil()) {
                        continue;
                    }
                    if let Some(matches) = index.get(&key) {
                        for &i in matches {
                            let mut row: Vec<Value> = lr.to_vec();
                            row.extend(r.rows[i].iter().copied());
                            rows.push(row.into());
                        }
                    }
                }
            }
            Ok(Relation { cols, rows })
        }
        Plan::GroupBy { input, keys, aggs } => {
            let rel = execute(db, input)?;
            let ki: Vec<usize> = keys
                .iter()
                .map(|c| c.resolve(&rel.cols))
                .collect::<Result<_, _>>()?;
            // Stable grouping: order of first appearance, then sort by key.
            let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
            let mut lookup: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
            for (i, row) in rel.rows.iter().enumerate() {
                let key: Vec<Value> = ki.iter().map(|&k| row[k]).collect();
                match lookup.get(&key) {
                    Some(&g) => groups[g].1.push(i),
                    None => {
                        lookup.insert(key.clone(), groups.len());
                        groups.push((key, vec![i]));
                    }
                }
            }
            groups.sort_by(|a, b| a.0.cmp(&b.0));

            if aggs.is_empty() {
                // Figure-6 form: `group` number + original rows.
                let mut cols = vec!["group".to_string()];
                cols.extend(rel.cols.iter().cloned());
                let mut rows = Vec::new();
                for (gi, (_, members)) in groups.iter().enumerate() {
                    for &m in members {
                        let mut row: Vec<Value> = vec![Value::Int(gi as i64 + 1)];
                        row.extend(rel.rows[m].iter().copied());
                        rows.push(row.into());
                    }
                }
                Ok(Relation { cols, rows })
            } else {
                // `count(*)` counts group members; other aggregates resolve
                // their argument column.
                let ai: Vec<Option<usize>> = aggs
                    .iter()
                    .map(|(f, c)| {
                        if c.0 == "*" && *f == AggFun::Count {
                            Ok(None)
                        } else {
                            c.resolve(&rel.cols).map(Some)
                        }
                    })
                    .collect::<Result<_, _>>()?;
                let mut cols: Vec<String> = ki.iter().map(|&i| rel.cols[i].clone()).collect();
                for (f, c) in aggs.iter() {
                    cols.push(format!("{}({})", f.name(), c.0));
                }
                let mut rows = Vec::new();
                for (key, members) in groups {
                    let mut row: Vec<Value> = key;
                    for ((f, _), ci) in aggs.iter().zip(&ai) {
                        match ci {
                            None => row.push(Value::Int(members.len() as i64)),
                            Some(ci) => {
                                let vals: Vec<Value> = members
                                    .iter()
                                    .map(|&m| rel.rows[m][*ci])
                                    .filter(|v| !v.is_nil())
                                    .collect();
                                row.push(aggregate(*f, &vals));
                            }
                        }
                    }
                    rows.push(row.into());
                }
                Ok(Relation { cols, rows })
            }
        }
        Plan::OrderBy { input, keys } => {
            let mut rel = execute(db, input)?;
            let ki: Vec<(usize, bool)> = keys
                .iter()
                .map(|(c, asc)| Ok((c.resolve(&rel.cols)?, *asc)))
                .collect::<Result<_, DbError>>()?;
            rel.rows.sort_by(|a, b| {
                for &(i, asc) in &ki {
                    let ord = a[i].cmp(&b[i]);
                    if ord != Ordering::Equal {
                        return if asc { ord } else { ord.reverse() };
                    }
                }
                Ordering::Equal
            });
            Ok(rel)
        }
        Plan::Limit { input, n } => {
            let mut rel = execute(db, input)?;
            rel.rows.truncate(*n);
            Ok(rel)
        }
    }
}

/// Compute one aggregate over non-null values.
pub fn aggregate(f: AggFun, vals: &[Value]) -> Value {
    match f {
        AggFun::Count => Value::Int(vals.len() as i64),
        AggFun::Min => vals.iter().min().copied().unwrap_or(Value::Nil),
        AggFun::Max => vals.iter().max().copied().unwrap_or(Value::Nil),
        AggFun::Sum => {
            if vals.is_empty() {
                return Value::Nil;
            }
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(
                    vals.iter()
                        .filter_map(|v| match v {
                            Value::Int(i) => Some(*i),
                            _ => None,
                        })
                        .sum(),
                )
            } else {
                Value::Float(vals.iter().filter_map(|v| v.as_f64()).sum())
            }
        }
        AggFun::Avg => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Nil
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
    }
}
