//! A crash-recoverable database: [`Database`] + write-ahead log +
//! dump-format checkpoints.
//!
//! Every committed mutation is first appended to the WAL as a *physical*
//! redo record (inserts carry the `RowId` the table assigned), then a
//! commit marker makes the group durable per the group-commit policy.
//! [`DurableDb::open`] replays the committed WAL prefix over the last
//! checkpoint (a plain [`crate::persist`] dump), so the recovered state is
//! byte-identical — same table dumps, same row ids — to the state at the
//! last commit point before a crash.
//!
//! ## Checkpoint protocol
//!
//! [`DurableDb::checkpoint`] writes the dump, fsyncs the WAL, rotates the
//! log to empty, and then *compacts the in-memory heap to match the dump*
//! (`load(dump(db))`). The compaction step is what keeps physical replay
//! sound: the dump format rebuilds tables densely without tombstones, so
//! post-checkpoint row ids must be assigned against that dense layout —
//! exactly the layout recovery will reconstruct.

use crate::db::Database;
use crate::error::DbError;
use crate::persist;
use crate::table::{RowId, Schema};
use crate::tx::{AppliedWrite, Transaction};
use crate::wal::{IoFaultPlan, Wal, WalOptions, WalRecord, WalStats};
use sorete_base::{Symbol, Value};
use std::path::{Path, PathBuf};

/// What recovery found when opening a [`DurableDb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurableReport {
    /// Whether a checkpoint file existed and was loaded.
    pub from_checkpoint: bool,
    /// Row ops replayed from the WAL.
    pub replayed_ops: u64,
    /// Commit points (tx commits + cycle markers) replayed.
    pub replayed_commits: u64,
    /// Cycle-boundary markers among them.
    pub replayed_cycles: u64,
    /// Intact-but-uncommitted records discarded.
    pub discarded_records: u64,
    /// Torn/short/uncommitted tail bytes truncated.
    pub truncated_bytes: u64,
}

/// A [`Database`] whose committed mutations survive process death.
pub struct DurableDb {
    db: Database,
    wal: Wal,
    checkpoint_path: PathBuf,
}

// ---------------------------------------------------------------------------
// Row-op payload codec (tab-separated wire tokens; see `Value::push_wire`).

fn sym_tok(s: Symbol, out: &mut String) {
    Value::Sym(s).push_wire(out);
}

fn encode_write(w: &AppliedWrite) -> Vec<u8> {
    let mut s = String::new();
    match w {
        AppliedWrite::Insert { table, id, row } => {
            s.push('I');
            s.push('\t');
            sym_tok(*table, &mut s);
            s.push('\t');
            s.push_str(&id.index().to_string());
            for v in row {
                s.push('\t');
                v.push_wire(&mut s);
            }
        }
        AppliedWrite::Update {
            table,
            id,
            col,
            value,
        } => {
            s.push('U');
            s.push('\t');
            sym_tok(*table, &mut s);
            s.push('\t');
            s.push_str(&id.index().to_string());
            s.push('\t');
            sym_tok(*col, &mut s);
            s.push('\t');
            value.push_wire(&mut s);
        }
        AppliedWrite::Delete { table, id } => {
            s.push('D');
            s.push('\t');
            sym_tok(*table, &mut s);
            s.push('\t');
            s.push_str(&id.index().to_string());
        }
    }
    s.into_bytes()
}

fn encode_create_table(schema: &Schema) -> Vec<u8> {
    let mut s = String::new();
    s.push_str("CT");
    s.push('\t');
    sym_tok(schema.name, &mut s);
    for c in &schema.cols {
        s.push('\t');
        sym_tok(*c, &mut s);
    }
    s.into_bytes()
}

fn encode_create_index(table: Symbol, col: Symbol) -> Vec<u8> {
    let mut s = String::new();
    s.push_str("CI");
    s.push('\t');
    sym_tok(table, &mut s);
    s.push('\t');
    sym_tok(col, &mut s);
    s.into_bytes()
}

fn expect_sym(tok: Option<&str>, what: &str) -> Result<Symbol, DbError> {
    let tok = tok.ok_or_else(|| DbError::Corrupt(format!("row op missing {}", what)))?;
    match Value::from_wire(tok).map_err(DbError::Corrupt)? {
        Value::Sym(s) => Ok(s),
        other => Err(DbError::Corrupt(format!(
            "row op {}: expected symbol, got `{}`",
            what, other
        ))),
    }
}

fn expect_id(tok: Option<&str>) -> Result<RowId, DbError> {
    tok.and_then(|t| t.parse::<usize>().ok())
        .map(RowId::new)
        .ok_or_else(|| DbError::Corrupt("row op missing row id".into()))
}

fn apply_row_op(db: &mut Database, payload: &[u8]) -> Result<(), DbError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| DbError::Corrupt("row op is not utf-8".into()))?;
    let mut parts = text.split('\t');
    match parts.next().unwrap_or("") {
        "CT" => {
            let name = expect_sym(parts.next(), "table")?;
            let cols: Result<Vec<Symbol>, DbError> =
                parts.map(|t| expect_sym(Some(t), "column")).collect();
            let cols = cols?;
            let col_strs: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
            let refs: Vec<&str> = col_strs.iter().map(|c| c.as_str()).collect();
            db.create_table(Schema::new(&name.to_string(), &refs))
        }
        "CI" => {
            let table = expect_sym(parts.next(), "table")?;
            let col = expect_sym(parts.next(), "column")?;
            db.table_mut(table)?.create_index(col)
        }
        "I" => {
            let table = expect_sym(parts.next(), "table")?;
            let id = expect_id(parts.next())?;
            let row: Result<Vec<Value>, DbError> = parts
                .map(|t| Value::from_wire(t).map_err(DbError::Corrupt))
                .collect();
            db.table_mut(table)?.insert_at(id, row?)
        }
        "U" => {
            let table = expect_sym(parts.next(), "table")?;
            let id = expect_id(parts.next())?;
            let col = expect_sym(parts.next(), "column")?;
            let value = parts
                .next()
                .ok_or_else(|| DbError::Corrupt("update missing value".into()))
                .and_then(|t| Value::from_wire(t).map_err(DbError::Corrupt))?;
            db.table_mut(table)?.update(id, col, value)
        }
        "D" => {
            let table = expect_sym(parts.next(), "table")?;
            let id = expect_id(parts.next())?;
            db.table_mut(table)?.delete(id).map(|_| ())
        }
        other => Err(DbError::Corrupt(format!("unknown row op `{}`", other))),
    }
}

impl DurableDb {
    /// Open (or create) a durable database: load the checkpoint if one
    /// exists, replay the committed WAL prefix over it, truncate any torn
    /// tail, and position the log for appending.
    pub fn open(
        checkpoint: &Path,
        wal_path: &Path,
        opts: WalOptions,
    ) -> Result<(DurableDb, DurableReport), DbError> {
        let mut report = DurableReport::default();
        let mut db = if checkpoint.exists() {
            report.from_checkpoint = true;
            persist::load_file(checkpoint)?
        } else {
            Database::new()
        };
        let (records, wal) = {
            let (wal, records) = Wal::open(wal_path, opts)?;
            (records, wal)
        };
        report.discarded_records = wal.stats().discarded_records;
        report.truncated_bytes = wal.stats().truncated_bytes;
        for rec in &records {
            match rec {
                WalRecord::Op(payload) => {
                    apply_row_op(&mut db, payload)?;
                    report.replayed_ops += 1;
                }
                WalRecord::Commit => report.replayed_commits += 1,
                WalRecord::Cycle(_) => {
                    report.replayed_commits += 1;
                    report.replayed_cycles += 1;
                }
            }
        }
        Ok((
            DurableDb {
                db,
                wal,
                checkpoint_path: checkpoint.to_path_buf(),
            },
            report,
        ))
    }

    /// The underlying database, read-only. Mutations must go through the
    /// logged methods or they will not survive a crash.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// WAL session counters.
    pub fn wal_stats(&self) -> &WalStats {
        self.wal.stats()
    }

    /// Arm a storage fault on the log (see [`IoFaultPlan`]).
    pub fn inject_fault(&mut self, plan: IoFaultPlan) {
        self.wal.inject_fault(plan);
    }

    /// Create a table (durably, auto-committed).
    pub fn create_table(&mut self, schema: Schema) -> Result<(), DbError> {
        self.db.create_table(schema.clone())?;
        self.wal.append_op(&encode_create_table(&schema))?;
        self.wal.append_commit()
    }

    /// Create a secondary index (durably, auto-committed).
    pub fn create_index(&mut self, table: &str, col: &str) -> Result<(), DbError> {
        let (t, c) = (Symbol::new(table), Symbol::new(col));
        self.db.table_mut(t)?.create_index(c)?;
        self.wal.append_op(&encode_create_index(t, c))?;
        self.wal.append_commit()
    }

    /// Insert a row (durably, auto-committed).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        let t = Symbol::new(table);
        let id = self.db.table_mut(t)?.insert(row.clone())?;
        self.wal
            .append_op(&encode_write(&AppliedWrite::Insert { table: t, id, row }))?;
        self.wal.append_commit()?;
        Ok(id)
    }

    /// Overwrite one column (durably, auto-committed).
    pub fn update(
        &mut self,
        table: &str,
        id: RowId,
        col: &str,
        value: Value,
    ) -> Result<(), DbError> {
        let (t, c) = (Symbol::new(table), Symbol::new(col));
        self.db.table_mut(t)?.update(id, c, value)?;
        self.wal.append_op(&encode_write(&AppliedWrite::Update {
            table: t,
            id,
            col: c,
            value,
        }))?;
        self.wal.append_commit()
    }

    /// Delete a row (durably, auto-committed).
    pub fn delete(&mut self, table: &str, id: RowId) -> Result<(), DbError> {
        let t = Symbol::new(table);
        self.db.table_mut(t)?.delete(id)?;
        self.wal
            .append_op(&encode_write(&AppliedWrite::Delete { table: t, id }))?;
        self.wal.append_commit()
    }

    /// Begin an optimistic transaction (same semantics as
    /// [`Database::begin`]).
    pub fn begin(&self) -> Transaction {
        self.db.begin()
    }

    /// Commit a transaction durably: validate + apply, log each applied
    /// write, then a commit marker. On validation conflict nothing is
    /// logged.
    pub fn commit(&mut self, tx: Transaction) -> Result<(), DbError> {
        let applied = self.db.commit_applied(tx)?;
        for w in &applied {
            self.wal.append_op(&encode_write(w))?;
        }
        self.wal.append_commit()
    }

    /// Append a cycle-boundary marker carrying `payload` (a commit point;
    /// DIPS stamps one per parallel recognise–act cycle).
    pub fn mark_cycle(&mut self, payload: &[u8]) -> Result<(), DbError> {
        self.wal.append_cycle(payload)
    }

    /// Take a checkpoint: write the dump, rotate the WAL to empty, and
    /// compact the in-memory heap to the dump's dense layout (see module
    /// docs for why compaction is load-bearing).
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        let text = persist::dump(&self.db);
        std::fs::write(&self.checkpoint_path, &text).map_err(|e| {
            DbError::Io(format!(
                "write checkpoint {:?}: {}",
                self.checkpoint_path, e
            ))
        })?;
        self.wal.sync()?;
        self.wal.rotate()?;
        self.db = persist::load(&text)?;
        Ok(())
    }

    /// Force an fsync now.
    pub fn sync(&mut self) -> Result<(), DbError> {
        self.wal.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::IoFaultKind;

    fn paths(name: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join("sorete-durable-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join(format!("{}-{}", name, std::process::id()));
        let ckpt = base.with_extension("ckpt");
        let wal = base.with_extension("wal");
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&wal);
        (ckpt, wal)
    }

    fn seed(ddb: &mut DurableDb) {
        ddb.create_table(Schema::new("emp", &["name", "sal"]))
            .unwrap();
        ddb.create_index("emp", "sal").unwrap();
        ddb.insert("emp", vec![Value::sym("ann"), Value::Int(120)])
            .unwrap();
        ddb.insert("emp", vec![Value::sym("bob"), Value::Int(80)])
            .unwrap();
    }

    #[test]
    fn reopen_replays_committed_ops() {
        let (ckpt, wal) = paths("replay");
        {
            let (mut ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            assert_eq!(rep, DurableReport::default());
            seed(&mut ddb);
            ddb.update("emp", RowId::new(0), "sal", Value::Int(150))
                .unwrap();
            ddb.delete("emp", RowId::new(1)).unwrap();
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(!rep.from_checkpoint, "no checkpoint was taken");
        assert_eq!(rep.replayed_ops, 6);
        let t = ddb.db().table_by_name("emp").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId::new(0)).unwrap()[1], Value::Int(150));
        assert!(t.has_index(Symbol::new("sal")), "index op replayed");
    }

    #[test]
    fn checkpoint_plus_wal_recovers_and_preserves_row_ids() {
        let (ckpt, wal) = paths("ckpt");
        let dump_before;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            // Make a tombstone, checkpoint (compacts), then write post-
            // checkpoint ops whose row ids reference the compacted layout.
            ddb.delete("emp", RowId::new(0)).unwrap();
            ddb.checkpoint().unwrap();
            let id = ddb
                .insert("emp", vec![Value::sym("cat"), Value::Int(90)])
                .unwrap();
            ddb.update("emp", id, "sal", Value::Int(95)).unwrap();
            dump_before = persist::dump(ddb.db());
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(rep.from_checkpoint);
        assert_eq!(rep.replayed_ops, 2, "only post-rotation ops replay");
        assert_eq!(persist::dump(ddb.db()), dump_before, "byte-identical");
    }

    #[test]
    fn tx_commit_is_atomic_in_the_log() {
        let (ckpt, wal) = paths("tx");
        let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        seed(&mut ddb);
        let mut tx = ddb.begin();
        tx.insert("emp", vec![Value::sym("cat"), Value::Int(90)]);
        tx.update(ddb.db(), "emp", RowId::new(0), "sal", Value::Int(1))
            .unwrap();
        ddb.commit(tx).unwrap();
        // A conflicting tx logs nothing.
        let mut t1 = ddb.begin();
        let mut t2 = ddb.begin();
        t1.update(ddb.db(), "emp", RowId::new(1), "sal", Value::Int(2))
            .unwrap();
        t2.update(ddb.db(), "emp", RowId::new(1), "sal", Value::Int(3))
            .unwrap();
        let records_before = ddb.wal_stats().records;
        ddb.commit(t1).unwrap();
        assert!(ddb.commit(t2).is_err());
        assert_eq!(
            ddb.wal_stats().records,
            records_before + 2,
            "aborted tx appended nothing"
        );
        let dump_before = persist::dump(ddb.db());
        drop(ddb);
        let (ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert_eq!(persist::dump(ddb.db()), dump_before);
    }

    #[test]
    fn injected_fault_loses_only_the_uncommitted_tail() {
        let (ckpt, wal) = paths("fault");
        let clean_dump;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            clean_dump = persist::dump(ddb.db());
        }
        // Re-run the same workload with a short write on the record that
        // would commit a third insert; the recovered state must equal the
        // clean state *before* that insert.
        let (_c2, w2) = paths("fault2");
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &w2, WalOptions::default()).unwrap();
            // Records: CT c, CI c, I c, I c → the next insert is records
            // 8 (op) and 9 (commit); fault the commit marker.
            ddb.inject_fault(IoFaultPlan::nth(IoFaultKind::ShortWrite, 9));
            seed(&mut ddb);
            let r = ddb.insert("emp", vec![Value::sym("cat"), Value::Int(90)]);
            assert!(r.is_err(), "crash surfaces");
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &w2, WalOptions::default()).unwrap();
        assert!(rep.truncated_bytes > 0);
        assert_eq!(
            persist::dump(ddb.db()),
            clean_dump,
            "recovered ≡ clean run to last commit"
        );
    }
}
