//! A crash-recoverable database: [`Database`] + write-ahead log +
//! dump-format checkpoints.
//!
//! Every committed mutation is first appended to the WAL as a *physical*
//! redo record (inserts carry the `RowId` the table assigned), then a
//! commit marker makes the group durable per the group-commit policy.
//! [`DurableDb::open`] replays the committed WAL prefix over the last
//! checkpoint (a plain [`crate::persist`] dump), so the recovered state is
//! byte-identical — same table dumps, same row ids — to the state at the
//! last commit point before a crash.
//!
//! ## Checkpoint protocol
//!
//! [`DurableDb::checkpoint`] writes the dump *crash-atomically*
//! ([`persist::atomic_write`]: temp file, fsync, rename, directory
//! fsync), stamped with the WAL's generation + 1; only once the rename
//! is durable does it rotate the log under that new generation, then
//! *compact the in-memory heap to match the dump* (`load(dump(db))`).
//! The compaction step is what keeps physical replay sound: the dump
//! format rebuilds tables densely without tombstones, so post-checkpoint
//! row ids must be assigned against that dense layout — exactly the
//! layout recovery will reconstruct.
//!
//! The generation stamp closes the crash window *between* those two
//! steps: if the machine dies after the rename but before the rotation,
//! [`DurableDb::open`] finds a checkpoint one generation ahead of the
//! log, recognises every logged record as already folded into the
//! checkpoint, discards them instead of replaying them on top of it
//! (which would duplicate rows or delete live ones), and finishes the
//! interrupted rotation. Any other generation mismatch is corruption.
//!
//! ## Poisoning
//!
//! Every mutator applies in memory first and logs second, so a log
//! failure leaves live state ahead of durable state. When that happens
//! the handle *poisons itself*: all further mutations error until the
//! database is reopened, which recovers to the last commit point. The
//! alternative — letting a caller shrug off the error and keep writing —
//! silently shifts every later row id relative to what recovery will
//! rebuild.

use crate::db::Database;
use crate::error::DbError;
use crate::persist;
use crate::table::{RowId, Schema};
use crate::tx::{AppliedWrite, Transaction};
use crate::wal::{IoFaultPlan, Wal, WalOptions, WalRecord, WalStats};
use sorete_base::{Symbol, Value};
use std::path::{Path, PathBuf};

/// What recovery found when opening a [`DurableDb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurableReport {
    /// Whether a checkpoint file existed and was loaded.
    pub from_checkpoint: bool,
    /// Row ops replayed from the WAL.
    pub replayed_ops: u64,
    /// Commit points (tx commits + cycle markers) replayed.
    pub replayed_commits: u64,
    /// Cycle-boundary markers among them.
    pub replayed_cycles: u64,
    /// Intact-but-uncommitted records discarded.
    pub discarded_records: u64,
    /// Torn/short/uncommitted tail bytes truncated.
    pub truncated_bytes: u64,
    /// Committed records discarded as stale because the checkpoint was one
    /// generation ahead (crash between checkpoint rename and log rotation).
    pub stale_records: u64,
}

/// A [`Database`] whose committed mutations survive process death.
pub struct DurableDb {
    db: Database,
    wal: Wal,
    checkpoint_path: PathBuf,
    /// Set when a mutation was applied in memory but the log refused it;
    /// all further mutations error until reopen (see module docs).
    poisoned: bool,
}

/// Checkpoint file header (first line: `sorete-reldb-ckpt <generation>`,
/// followed by a [`persist::dump`]).
const CKPT_MAGIC: &str = "sorete-reldb-ckpt";

fn render_checkpoint(generation: u64, dump: &str) -> String {
    format!("{} {}\n{}", CKPT_MAGIC, generation, dump)
}

fn parse_checkpoint(text: &str) -> Result<(u64, &str), DbError> {
    match text.split_once('\n') {
        Some((first, rest)) if first.starts_with(CKPT_MAGIC) => {
            let gen = first[CKPT_MAGIC.len()..]
                .trim()
                .parse::<u64>()
                .map_err(|_| DbError::Corrupt(format!("bad checkpoint header `{}`", first)))?;
            Ok((gen, rest))
        }
        // Headerless (pre-generation) checkpoint: a plain dump, gen 0.
        _ => Ok((0, text)),
    }
}

// ---------------------------------------------------------------------------
// Row-op payload codec (tab-separated wire tokens; see `Value::push_wire`).

fn sym_tok(s: Symbol, out: &mut String) {
    Value::Sym(s).push_wire(out);
}

fn encode_write(w: &AppliedWrite) -> Vec<u8> {
    let mut s = String::new();
    match w {
        AppliedWrite::Insert { table, id, row } => {
            s.push('I');
            s.push('\t');
            sym_tok(*table, &mut s);
            s.push('\t');
            s.push_str(&id.index().to_string());
            for v in row {
                s.push('\t');
                v.push_wire(&mut s);
            }
        }
        AppliedWrite::Update {
            table,
            id,
            col,
            value,
        } => {
            s.push('U');
            s.push('\t');
            sym_tok(*table, &mut s);
            s.push('\t');
            s.push_str(&id.index().to_string());
            s.push('\t');
            sym_tok(*col, &mut s);
            s.push('\t');
            value.push_wire(&mut s);
        }
        AppliedWrite::Delete { table, id } => {
            s.push('D');
            s.push('\t');
            sym_tok(*table, &mut s);
            s.push('\t');
            s.push_str(&id.index().to_string());
        }
    }
    s.into_bytes()
}

fn encode_create_table(schema: &Schema) -> Vec<u8> {
    let mut s = String::new();
    s.push_str("CT");
    s.push('\t');
    sym_tok(schema.name, &mut s);
    for c in &schema.cols {
        s.push('\t');
        sym_tok(*c, &mut s);
    }
    s.into_bytes()
}

fn encode_create_index(table: Symbol, col: Symbol) -> Vec<u8> {
    let mut s = String::new();
    s.push_str("CI");
    s.push('\t');
    sym_tok(table, &mut s);
    s.push('\t');
    sym_tok(col, &mut s);
    s.into_bytes()
}

fn expect_sym(tok: Option<&str>, what: &str) -> Result<Symbol, DbError> {
    let tok = tok.ok_or_else(|| DbError::Corrupt(format!("row op missing {}", what)))?;
    match Value::from_wire(tok).map_err(DbError::Corrupt)? {
        Value::Sym(s) => Ok(s),
        other => Err(DbError::Corrupt(format!(
            "row op {}: expected symbol, got `{}`",
            what, other
        ))),
    }
}

fn expect_id(tok: Option<&str>) -> Result<RowId, DbError> {
    tok.and_then(|t| t.parse::<usize>().ok())
        .map(RowId::new)
        .ok_or_else(|| DbError::Corrupt("row op missing row id".into()))
}

fn apply_row_op(db: &mut Database, payload: &[u8]) -> Result<(), DbError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| DbError::Corrupt("row op is not utf-8".into()))?;
    let mut parts = text.split('\t');
    match parts.next().unwrap_or("") {
        "CT" => {
            let name = expect_sym(parts.next(), "table")?;
            let cols: Result<Vec<Symbol>, DbError> =
                parts.map(|t| expect_sym(Some(t), "column")).collect();
            let cols = cols?;
            let col_strs: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
            let refs: Vec<&str> = col_strs.iter().map(|c| c.as_str()).collect();
            db.create_table(Schema::new(&name.to_string(), &refs))
        }
        "CI" => {
            let table = expect_sym(parts.next(), "table")?;
            let col = expect_sym(parts.next(), "column")?;
            db.table_mut(table)?.create_index(col)
        }
        "I" => {
            let table = expect_sym(parts.next(), "table")?;
            let id = expect_id(parts.next())?;
            let row: Result<Vec<Value>, DbError> = parts
                .map(|t| Value::from_wire(t).map_err(DbError::Corrupt))
                .collect();
            db.table_mut(table)?.insert_at(id, row?)
        }
        "U" => {
            let table = expect_sym(parts.next(), "table")?;
            let id = expect_id(parts.next())?;
            let col = expect_sym(parts.next(), "column")?;
            let value = parts
                .next()
                .ok_or_else(|| DbError::Corrupt("update missing value".into()))
                .and_then(|t| Value::from_wire(t).map_err(DbError::Corrupt))?;
            db.table_mut(table)?.update(id, col, value)
        }
        "D" => {
            let table = expect_sym(parts.next(), "table")?;
            let id = expect_id(parts.next())?;
            db.table_mut(table)?.delete(id).map(|_| ())
        }
        other => Err(DbError::Corrupt(format!("unknown row op `{}`", other))),
    }
}

impl DurableDb {
    /// Open (or create) a durable database: load the checkpoint if one
    /// exists, replay the committed WAL prefix over it, truncate any torn
    /// tail, and position the log for appending.
    pub fn open(
        checkpoint: &Path,
        wal_path: &Path,
        opts: WalOptions,
    ) -> Result<(DurableDb, DurableReport), DbError> {
        let mut report = DurableReport::default();
        let (ckpt_gen, mut db) = if checkpoint.exists() {
            report.from_checkpoint = true;
            let text = std::fs::read_to_string(checkpoint)
                .map_err(|e| DbError::Io(format!("read checkpoint {:?}: {}", checkpoint, e)))?;
            let (gen, body) = parse_checkpoint(&text)?;
            (gen, persist::load(body)?)
        } else {
            (0, Database::new())
        };
        let (mut wal, records) = Wal::open(wal_path, opts)?;
        report.discarded_records = wal.stats().discarded_records;
        report.truncated_bytes = wal.stats().truncated_bytes;
        let wal_gen = wal.generation();
        if wal_gen == ckpt_gen {
            for rec in &records {
                match rec {
                    WalRecord::Op(payload) => {
                        apply_row_op(&mut db, payload)?;
                        report.replayed_ops += 1;
                    }
                    WalRecord::Commit => report.replayed_commits += 1,
                    WalRecord::Cycle(_) => {
                        report.replayed_commits += 1;
                        report.replayed_cycles += 1;
                    }
                }
            }
        } else if wal_gen + 1 == ckpt_gen || (wal_gen == 0 && records.is_empty()) {
            // Either the crash hit between checkpoint rename and log
            // rotation — every logged record is already folded into the
            // checkpoint and must NOT be replayed on top of it — or a
            // brand-new empty log is being started against an existing
            // checkpoint. Both finish by rotating to the checkpoint's
            // generation.
            report.stale_records = records.len() as u64;
            wal.rotate(ckpt_gen)?;
        } else {
            return Err(DbError::Corrupt(format!(
                "checkpoint {:?} (generation {}) does not pair with WAL {:?} (generation {})",
                checkpoint, ckpt_gen, wal_path, wal_gen
            )));
        }
        Ok((
            DurableDb {
                db,
                wal,
                checkpoint_path: checkpoint.to_path_buf(),
                poisoned: false,
            },
            report,
        ))
    }

    /// Error unless the handle is still usable (see module docs).
    fn guard(&self) -> Result<(), DbError> {
        if self.poisoned {
            return Err(DbError::Io(
                "durable db poisoned: a mutation was applied in memory but not logged; \
                 reopen to recover to the last commit point"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Log op + commit for a mutation already applied in memory; a refusal
    /// from the log poisons the handle (live state is now ahead of durable
    /// state and must not keep advancing).
    fn log_applied(&mut self, payload: &[u8]) -> Result<(), DbError> {
        let r = self
            .wal
            .append_op(payload)
            .and_then(|_| self.wal.append_commit());
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// The underlying database, read-only. Mutations must go through the
    /// logged methods or they will not survive a crash.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// WAL session counters.
    pub fn wal_stats(&self) -> &WalStats {
        self.wal.stats()
    }

    /// Arm a storage fault on the log (see [`IoFaultPlan`]).
    pub fn inject_fault(&mut self, plan: IoFaultPlan) {
        self.wal.inject_fault(plan);
    }

    /// Create a table (durably, auto-committed).
    pub fn create_table(&mut self, schema: Schema) -> Result<(), DbError> {
        self.guard()?;
        self.db.create_table(schema.clone())?;
        self.log_applied(&encode_create_table(&schema))
    }

    /// Create a secondary index (durably, auto-committed).
    pub fn create_index(&mut self, table: &str, col: &str) -> Result<(), DbError> {
        self.guard()?;
        let (t, c) = (Symbol::new(table), Symbol::new(col));
        self.db.table_mut(t)?.create_index(c)?;
        self.log_applied(&encode_create_index(t, c))
    }

    /// Insert a row (durably, auto-committed).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        self.guard()?;
        let t = Symbol::new(table);
        let id = self.db.table_mut(t)?.insert(row.clone())?;
        self.log_applied(&encode_write(&AppliedWrite::Insert { table: t, id, row }))?;
        Ok(id)
    }

    /// Overwrite one column (durably, auto-committed).
    pub fn update(
        &mut self,
        table: &str,
        id: RowId,
        col: &str,
        value: Value,
    ) -> Result<(), DbError> {
        self.guard()?;
        let (t, c) = (Symbol::new(table), Symbol::new(col));
        self.db.table_mut(t)?.update(id, c, value)?;
        self.log_applied(&encode_write(&AppliedWrite::Update {
            table: t,
            id,
            col: c,
            value,
        }))
    }

    /// Delete a row (durably, auto-committed).
    pub fn delete(&mut self, table: &str, id: RowId) -> Result<(), DbError> {
        self.guard()?;
        let t = Symbol::new(table);
        self.db.table_mut(t)?.delete(id)?;
        self.log_applied(&encode_write(&AppliedWrite::Delete { table: t, id }))
    }

    /// Begin an optimistic transaction (same semantics as
    /// [`Database::begin`]).
    pub fn begin(&self) -> Transaction {
        self.db.begin()
    }

    /// Commit a transaction durably: validate + apply, log each applied
    /// write, then a commit marker. On validation conflict nothing is
    /// logged.
    pub fn commit(&mut self, tx: Transaction) -> Result<(), DbError> {
        self.guard()?;
        let applied = self.db.commit_applied(tx)?;
        let mut r = Ok(());
        for w in &applied {
            r = self.wal.append_op(&encode_write(w));
            if r.is_err() {
                break;
            }
        }
        let r = r.and_then(|_| self.wal.append_commit());
        if r.is_err() {
            // The writes are applied in memory but not durably logged (the
            // WAL truncated the half-appended batch); see module docs.
            self.poisoned = true;
        }
        r
    }

    /// Append a cycle-boundary marker carrying `payload` (a commit point;
    /// DIPS stamps one per parallel recognise–act cycle). A failure here
    /// does not poison: the marker is its own batch, so no applied-but-
    /// unlogged mutation is left behind.
    pub fn mark_cycle(&mut self, payload: &[u8]) -> Result<(), DbError> {
        self.guard()?;
        self.wal.append_cycle(payload)
    }

    /// Take a checkpoint: atomically write the generation-stamped dump,
    /// rotate the WAL to empty under the new generation, and compact the
    /// in-memory heap to the dump's dense layout (see module docs for why
    /// compaction is load-bearing).
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        self.guard()?;
        let dump = persist::dump(&self.db);
        let generation = self.wal.generation() + 1;
        // Step 1: the checkpoint lands durably (or not at all) — a crash
        // from here on recovers from it; a failure here leaves the old
        // checkpoint + unrotated WAL pair fully intact.
        persist::atomic_write(
            &self.checkpoint_path,
            render_checkpoint(generation, &dump).as_bytes(),
        )?;
        // Step 2: retire the log. If this fails the pair is mid-transition
        // (checkpoint one generation ahead — exactly what open() repairs),
        // but this handle can no longer append safely.
        if let Err(e) = self.wal.rotate(generation) {
            self.poisoned = true;
            return Err(e);
        }
        self.db = persist::load(&dump)?;
        Ok(())
    }

    /// Force an fsync now.
    pub fn sync(&mut self) -> Result<(), DbError> {
        self.guard()?;
        self.wal.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::IoFaultKind;

    fn paths(name: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join("sorete-durable-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join(format!("{}-{}", name, std::process::id()));
        let ckpt = base.with_extension("ckpt");
        let wal = base.with_extension("wal");
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&wal);
        (ckpt, wal)
    }

    fn seed(ddb: &mut DurableDb) {
        ddb.create_table(Schema::new("emp", &["name", "sal"]))
            .unwrap();
        ddb.create_index("emp", "sal").unwrap();
        ddb.insert("emp", vec![Value::sym("ann"), Value::Int(120)])
            .unwrap();
        ddb.insert("emp", vec![Value::sym("bob"), Value::Int(80)])
            .unwrap();
    }

    #[test]
    fn reopen_replays_committed_ops() {
        let (ckpt, wal) = paths("replay");
        {
            let (mut ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            assert_eq!(rep, DurableReport::default());
            seed(&mut ddb);
            ddb.update("emp", RowId::new(0), "sal", Value::Int(150))
                .unwrap();
            ddb.delete("emp", RowId::new(1)).unwrap();
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(!rep.from_checkpoint, "no checkpoint was taken");
        assert_eq!(rep.replayed_ops, 6);
        let t = ddb.db().table_by_name("emp").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId::new(0)).unwrap()[1], Value::Int(150));
        assert!(t.has_index(Symbol::new("sal")), "index op replayed");
    }

    #[test]
    fn checkpoint_plus_wal_recovers_and_preserves_row_ids() {
        let (ckpt, wal) = paths("ckpt");
        let dump_before;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            // Make a tombstone, checkpoint (compacts), then write post-
            // checkpoint ops whose row ids reference the compacted layout.
            ddb.delete("emp", RowId::new(0)).unwrap();
            ddb.checkpoint().unwrap();
            let id = ddb
                .insert("emp", vec![Value::sym("cat"), Value::Int(90)])
                .unwrap();
            ddb.update("emp", id, "sal", Value::Int(95)).unwrap();
            dump_before = persist::dump(ddb.db());
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(rep.from_checkpoint);
        assert_eq!(rep.replayed_ops, 2, "only post-rotation ops replay");
        assert_eq!(persist::dump(ddb.db()), dump_before, "byte-identical");
    }

    #[test]
    fn tx_commit_is_atomic_in_the_log() {
        let (ckpt, wal) = paths("tx");
        let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        seed(&mut ddb);
        let mut tx = ddb.begin();
        tx.insert("emp", vec![Value::sym("cat"), Value::Int(90)]);
        tx.update(ddb.db(), "emp", RowId::new(0), "sal", Value::Int(1))
            .unwrap();
        ddb.commit(tx).unwrap();
        // A conflicting tx logs nothing.
        let mut t1 = ddb.begin();
        let mut t2 = ddb.begin();
        t1.update(ddb.db(), "emp", RowId::new(1), "sal", Value::Int(2))
            .unwrap();
        t2.update(ddb.db(), "emp", RowId::new(1), "sal", Value::Int(3))
            .unwrap();
        let records_before = ddb.wal_stats().records;
        ddb.commit(t1).unwrap();
        assert!(ddb.commit(t2).is_err());
        assert_eq!(
            ddb.wal_stats().records,
            records_before + 2,
            "aborted tx appended nothing"
        );
        let dump_before = persist::dump(ddb.db());
        drop(ddb);
        let (ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert_eq!(persist::dump(ddb.db()), dump_before);
    }

    #[test]
    fn unlogged_mutation_poisons_the_handle() {
        let (ckpt, wal) = paths("poison");
        let clean_dump;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            clean_dump = persist::dump(ddb.db());
            // Fail the op record of the next insert cleanly: the row lands
            // in memory, the log refuses it, and the handle must stop
            // accepting writes (its live state is ahead of the log).
            ddb.inject_fault(IoFaultPlan::nth(IoFaultKind::Fail, 8));
            assert!(ddb
                .insert("emp", vec![Value::sym("cat"), Value::Int(90)])
                .is_err());
            let err = ddb
                .insert("emp", vec![Value::sym("dog"), Value::Int(70)])
                .unwrap_err();
            assert!(err.to_string().contains("poisoned"), "got: {}", err);
            assert!(
                ddb.checkpoint().is_err(),
                "poisoned handle cannot checkpoint"
            );
        }
        // Reopen recovers to the last commit point, and allocation there
        // matches an uninterrupted run: the next insert reuses row id 2.
        let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert_eq!(persist::dump(ddb.db()), clean_dump);
        let id = ddb
            .insert("emp", vec![Value::sym("cat"), Value::Int(90)])
            .unwrap();
        assert_eq!(id, RowId::new(2));
    }

    #[test]
    fn checkpoint_survives_crash_before_rotation() {
        // Simulate a crash *between* the checkpoint rename and the WAL
        // rotation: the checkpoint is one generation ahead of a log still
        // full of records it already contains. Recovery must discard the
        // stale records, not replay them on top of the checkpoint.
        let (ckpt, wal) = paths("prerotate");
        let ckpt_dump;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            ddb.delete("emp", RowId::new(0)).unwrap();
            let pre_rotation_wal = std::fs::read(&wal).unwrap();
            ddb.checkpoint().unwrap();
            ckpt_dump = persist::dump(ddb.db());
            drop(ddb);
            // Wind the log back to its pre-rotation content (generation 0,
            // every record already folded into the gen-1 checkpoint).
            std::fs::write(&wal, pre_rotation_wal).unwrap();
        }
        let (mut ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(rep.from_checkpoint);
        assert_eq!(rep.replayed_ops, 0, "stale records are not replayed");
        assert!(rep.stale_records > 0, "…but are reported");
        assert_eq!(persist::dump(ddb.db()), ckpt_dump, "state = the checkpoint");
        // The interrupted rotation was finished: new work pairs cleanly.
        ddb.insert("emp", vec![Value::sym("cat"), Value::Int(90)])
            .unwrap();
        let after = persist::dump(ddb.db());
        drop(ddb);
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert_eq!(rep.stale_records, 0);
        assert_eq!(rep.replayed_ops, 1);
        assert_eq!(persist::dump(ddb.db()), after);
    }

    #[test]
    fn failed_checkpoint_write_leaves_the_pair_recoverable() {
        // Point the checkpoint at an unwritable location: checkpoint()
        // must fail before touching the WAL, leaving the ordinary
        // replay path fully intact.
        let dir = std::env::temp_dir().join("sorete-durable-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir
            .join("no-such-subdir")
            .join(format!("badckpt-{}.ckpt", std::process::id()));
        let wal = dir.join(format!("badckpt-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&wal);
        let full_dump;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            assert!(ddb.checkpoint().is_err(), "unwritable checkpoint path");
            // Not poisoned: nothing diverged; work continues and is logged.
            ddb.insert("emp", vec![Value::sym("cat"), Value::Int(90)])
                .unwrap();
            full_dump = persist::dump(ddb.db());
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(!rep.from_checkpoint);
        assert_eq!(persist::dump(ddb.db()), full_dump);
    }

    #[test]
    fn fresh_wal_adopts_checkpoint_generation() {
        // A checkpoint with a missing/new log opens to exactly the
        // checkpoint state (a lost log after a checkpoint loses only the
        // post-checkpoint tail, never the checkpoint itself).
        let (ckpt, wal) = paths("freshwal");
        let ckpt_dump;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            ddb.checkpoint().unwrap();
            ckpt_dump = persist::dump(ddb.db());
            ddb.insert("emp", vec![Value::sym("cat"), Value::Int(90)])
                .unwrap();
        }
        std::fs::remove_file(&wal).unwrap();
        let (ddb, rep) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        assert!(rep.from_checkpoint);
        assert_eq!(persist::dump(ddb.db()), ckpt_dump);
    }

    #[test]
    fn unpairable_generations_refuse_to_open() {
        // A gen-1 log with a gen-0 (missing) checkpoint cannot be
        // reconciled: replaying rotated-away physical ops against an
        // empty database would be silent corruption.
        let (ckpt, wal) = paths("unpair");
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            ddb.checkpoint().unwrap();
            ddb.insert("emp", vec![Value::sym("cat"), Value::Int(90)])
                .unwrap();
        }
        std::fs::remove_file(&ckpt).unwrap();
        let Err(err) = DurableDb::open(&ckpt, &wal, WalOptions::default()) else {
            panic!("unpairable generations accepted")
        };
        assert!(err.to_string().contains("does not pair"), "got: {}", err);
    }

    #[test]
    fn injected_fault_loses_only_the_uncommitted_tail() {
        let (ckpt, wal) = paths("fault");
        let clean_dump;
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
            seed(&mut ddb);
            clean_dump = persist::dump(ddb.db());
        }
        // Re-run the same workload with a short write on the record that
        // would commit a third insert; the recovered state must equal the
        // clean state *before* that insert.
        let (_c2, w2) = paths("fault2");
        {
            let (mut ddb, _) = DurableDb::open(&ckpt, &w2, WalOptions::default()).unwrap();
            // Records: CT c, CI c, I c, I c → the next insert is records
            // 8 (op) and 9 (commit); fault the commit marker.
            ddb.inject_fault(IoFaultPlan::nth(IoFaultKind::ShortWrite, 9));
            seed(&mut ddb);
            let r = ddb.insert("emp", vec![Value::sym("cat"), Value::Int(90)]);
            assert!(r.is_err(), "crash surfaces");
        }
        let (ddb, rep) = DurableDb::open(&ckpt, &w2, WalOptions::default()).unwrap();
        assert!(rep.truncated_bytes > 0);
        assert_eq!(
            persist::dump(ddb.db()),
            clean_dump,
            "recovered ≡ clean run to last commit"
        );
    }
}
