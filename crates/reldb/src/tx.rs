//! Optimistic transactions (backward-validation, first committer wins).
//!
//! DIPS "attempts to execute all satisfied instantiations concurrently,
//! relying on transaction semantics to block inconsistent updates" (paper
//! §8.1). This layer supplies exactly those semantics: a transaction
//! records the versions of every row it read or intends to write; at
//! commit, any version drift means another transaction got there first and
//! this one aborts ([`DbError::TxConflict`]). The DIPS experiments count
//! those aborts.

use crate::db::Database;
use crate::error::DbError;
use crate::table::RowId;
use sorete_base::{Symbol, Value};

/// A buffered read/write transaction.
#[derive(Default, Debug)]
pub struct Transaction {
    reads: Vec<(Symbol, RowId, u64)>,
    ops: Vec<TxOp>,
}

/// One write as it was actually applied at commit — inserts carry the
/// `RowId` the table assigned, which is what a redo log must record.
#[derive(Clone, Debug, PartialEq)]
pub enum AppliedWrite {
    /// An insert and the slot it landed in.
    Insert {
        /// Target table.
        table: Symbol,
        /// Assigned row id.
        id: RowId,
        /// Inserted values.
        row: Vec<Value>,
    },
    /// A column overwrite.
    Update {
        /// Target table.
        table: Symbol,
        /// Target row.
        id: RowId,
        /// Column written.
        col: Symbol,
        /// New value.
        value: Value,
    },
    /// A row deletion.
    Delete {
        /// Target table.
        table: Symbol,
        /// Deleted row.
        id: RowId,
    },
}

#[derive(Debug)]
enum TxOp {
    Insert {
        table: Symbol,
        row: Vec<Value>,
    },
    Update {
        table: Symbol,
        row: RowId,
        col: Symbol,
        value: Value,
        seen: u64,
    },
    Delete {
        table: Symbol,
        row: RowId,
        seen: u64,
    },
}

impl Transaction {
    /// Empty transaction.
    pub fn new() -> Transaction {
        Transaction::default()
    }

    /// Read a row, recording its version in the read set.
    pub fn read(
        &mut self,
        db: &Database,
        table: &str,
        row: RowId,
    ) -> Result<Option<Vec<Value>>, DbError> {
        let t = Symbol::new(table);
        let tbl = db.table(t)?;
        self.reads.push((t, row, tbl.version(row)));
        Ok(tbl.get(row).map(|r| r.to_vec()))
    }

    /// Buffer an insert.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) {
        self.ops.push(TxOp::Insert {
            table: Symbol::new(table),
            row,
        });
    }

    /// Buffer a column update (validates the row version at commit).
    pub fn update(
        &mut self,
        db: &Database,
        table: &str,
        row: RowId,
        col: &str,
        value: Value,
    ) -> Result<(), DbError> {
        let t = Symbol::new(table);
        let seen = db.table(t)?.version(row);
        self.ops.push(TxOp::Update {
            table: t,
            row,
            col: Symbol::new(col),
            value,
            seen,
        });
        Ok(())
    }

    /// Buffer a delete (validates the row version at commit).
    pub fn delete(&mut self, db: &Database, table: &str, row: RowId) -> Result<(), DbError> {
        let t = Symbol::new(table);
        let seen = db.table(t)?.version(row);
        self.ops.push(TxOp::Delete {
            table: t,
            row,
            seen,
        });
        Ok(())
    }

    /// Number of buffered write operations.
    pub fn write_count(&self) -> usize {
        self.ops.len()
    }

    /// Validate read/write versions; apply writes if everything is intact.
    /// Returns the writes as applied (inserts with their assigned row ids)
    /// so a write-ahead log can record them.
    pub(crate) fn validate_and_apply(
        self,
        db: &mut Database,
    ) -> Result<Vec<AppliedWrite>, DbError> {
        // Validation phase.
        for (t, row, seen) in &self.reads {
            if db.table(*t)?.version(*row) != *seen {
                return Err(DbError::TxConflict {
                    table: t.to_string(),
                });
            }
        }
        for op in &self.ops {
            match op {
                TxOp::Insert { .. } => {}
                TxOp::Update {
                    table, row, seen, ..
                }
                | TxOp::Delete { table, row, seen } => {
                    if db.table(*table)?.version(*row) != *seen {
                        return Err(DbError::TxConflict {
                            table: table.to_string(),
                        });
                    }
                }
            }
        }
        // Apply phase.
        let mut applied = Vec::with_capacity(self.ops.len());
        for op in self.ops {
            match op {
                TxOp::Insert { table, row } => {
                    let id = db.table_mut(table)?.insert(row.clone())?;
                    applied.push(AppliedWrite::Insert { table, id, row });
                }
                TxOp::Update {
                    table,
                    row,
                    col,
                    value,
                    ..
                } => {
                    db.table_mut(table)?.update(row, col, value)?;
                    applied.push(AppliedWrite::Update {
                        table,
                        id: row,
                        col,
                        value,
                    });
                }
                TxOp::Delete { table, row, .. } => {
                    db.table_mut(table)?.delete(row)?;
                    applied.push(AppliedWrite::Delete { table, id: row });
                }
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;

    fn db() -> (Database, RowId) {
        let mut db = Database::new();
        db.create_table(Schema::new("acct", &["owner", "balance"]))
            .unwrap();
        let id = db
            .insert("acct", vec![Value::sym("ann"), Value::Int(100)])
            .unwrap();
        (db, id)
    }

    #[test]
    fn serial_commit_succeeds() {
        let (mut db, id) = db();
        let mut tx = db.begin();
        let row = tx.read(&db, "acct", id).unwrap().unwrap();
        assert_eq!(row[1], Value::Int(100));
        tx.update(&db, "acct", id, "balance", Value::Int(150))
            .unwrap();
        db.commit(tx).unwrap();
        assert_eq!(
            db.table_by_name("acct").unwrap().get(id).unwrap()[1],
            Value::Int(150)
        );
        assert_eq!(db.commit_count(), 1);
    }

    #[test]
    fn first_committer_wins() {
        let (mut db, id) = db();
        // Two transactions read the same row, both try to update it.
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.read(&db, "acct", id).unwrap();
        t2.read(&db, "acct", id).unwrap();
        t1.update(&db, "acct", id, "balance", Value::Int(150))
            .unwrap();
        t2.update(&db, "acct", id, "balance", Value::Int(90))
            .unwrap();
        db.commit(t1).unwrap();
        let err = db.commit(t2).unwrap_err();
        assert!(matches!(err, DbError::TxConflict { .. }));
        assert_eq!(db.abort_count(), 1);
        // The first committer's value stands.
        assert_eq!(
            db.table_by_name("acct").unwrap().get(id).unwrap()[1],
            Value::Int(150)
        );
    }

    #[test]
    fn read_write_conflict_detected() {
        let (mut db, id) = db();
        let mut t1 = db.begin();
        t1.read(&db, "acct", id).unwrap(); // read-only tx
        let mut t2 = db.begin();
        t2.update(&db, "acct", id, "balance", Value::Int(0))
            .unwrap();
        db.commit(t2).unwrap();
        // t1's read is stale → abort (strict backward validation).
        assert!(db.commit(t1).is_err());
    }

    #[test]
    fn delete_delete_conflict() {
        let (mut db, id) = db();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.delete(&db, "acct", id).unwrap();
        t2.delete(&db, "acct", id).unwrap();
        db.commit(t1).unwrap();
        assert!(
            db.commit(t2).is_err(),
            "double delete is the paper's mutual-invalidation case"
        );
    }

    #[test]
    fn independent_transactions_both_commit() {
        let (mut db, _) = db();
        let id2 = db
            .insert("acct", vec![Value::sym("bob"), Value::Int(50)])
            .unwrap();
        let id1 = RowId::new(0);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.update(&db, "acct", id1, "balance", Value::Int(1))
            .unwrap();
        t2.update(&db, "acct", id2, "balance", Value::Int(2))
            .unwrap();
        db.commit(t1).unwrap();
        db.commit(t2).unwrap();
        assert_eq!(db.commit_count(), 2);
        assert_eq!(db.abort_count(), 0);
    }

    #[test]
    fn inserts_never_conflict() {
        let (mut db, _) = db();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.insert("acct", vec![Value::sym("x"), Value::Int(1)]);
        t2.insert("acct", vec![Value::sym("y"), Value::Int(2)]);
        db.commit(t1).unwrap();
        db.commit(t2).unwrap();
        assert_eq!(db.table_by_name("acct").unwrap().len(), 3);
    }
}
