//! Database persistence: dump/restore in a line-oriented text format.
//!
//! DIPS is a *disk-based* production system; this module gives the
//! substrate the corresponding durability primitive without reaching for
//! external serialization crates. The format is self-describing:
//!
//! ```text
//! sorete-reldb 1
//! TABLE emp 3
//! COL name
//! COL dept
//! COL sal
//! INDEX dept
//! ROW S:ann<TAB>S:eng<TAB>I:120
//! ROW S:bob<TAB>N<TAB>F:3ff0000000000000
//! ```
//!
//! (`<TAB>` above stands for a literal tab, the column separator.)
//! Values are typed tokens: `N` (nil), `I:<decimal>` (int),
//! `F:<hex bits>` (float, exact round trip), `S:<escaped>` (symbol),
//! `T:<decimal>` (WME tag). Symbols escape tab/newline/backslash.
//! Row ids are **not** preserved across a reload (tables are rebuilt
//! densely); anything holding `RowId`s must re-derive them.

use crate::db::Database;
use crate::error::DbError;
use crate::table::Schema;
use sorete_base::{Symbol, TimeTag, Value};

const MAGIC: &str = "sorete-reldb 1";

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Nil => out.push('N'),
        Value::Int(i) => {
            out.push_str("I:");
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            out.push_str("F:");
            out.push_str(&format!("{:016x}", f.to_bits()));
        }
        Value::Sym(s) => {
            out.push_str("S:");
            for c in s.as_str().chars() {
                match c {
                    '\t' => out.push_str("\\t"),
                    '\n' => out.push_str("\\n"),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
        }
        Value::Tag(t) => {
            out.push_str("T:");
            out.push_str(&t.raw().to_string());
        }
    }
}

fn decode_value(tok: &str) -> Result<Value, DbError> {
    if tok == "N" {
        return Ok(Value::Nil);
    }
    let (kind, body) = tok
        .split_once(':')
        .ok_or_else(|| DbError::Sql(format!("bad value token `{}`", tok)))?;
    match kind {
        "I" => body
            .parse()
            .map(Value::Int)
            .map_err(|_| DbError::Sql(format!("bad int `{}`", body))),
        "F" => u64::from_str_radix(body, 16)
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .map_err(|_| DbError::Sql(format!("bad float bits `{}`", body))),
        "T" => body
            .parse()
            .map(|raw| Value::Tag(TimeTag::new(raw)))
            .map_err(|_| DbError::Sql(format!("bad tag `{}`", body))),
        "S" => {
            let mut s = String::new();
            let mut chars = body.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('t') => s.push('\t'),
                        Some('n') => s.push('\n'),
                        Some('\\') => s.push('\\'),
                        other => return Err(DbError::Sql(format!("bad escape `\\{:?}`", other))),
                    }
                } else {
                    s.push(c);
                }
            }
            Ok(Value::sym(&s))
        }
        other => Err(DbError::Sql(format!("unknown value kind `{}`", other))),
    }
}

/// Serialize the whole database.
pub fn dump(db: &Database) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    for name in db.table_names() {
        let table = db.table(name).expect("listed table exists");
        out.push_str(&format!("TABLE {} {}\n", name, table.schema.cols.len()));
        for col in &table.schema.cols {
            out.push_str(&format!("COL {}\n", col));
        }
        for col in &table.schema.cols {
            if table.has_index(*col) {
                out.push_str(&format!("INDEX {}\n", col));
            }
        }
        // Rows in id order for determinism.
        let mut rows: Vec<_> = table.iter().collect();
        rows.sort_by_key(|(id, _)| *id);
        for (_, row) in rows {
            out.push_str("ROW ");
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                encode_value(v, &mut out);
            }
            out.push('\n');
        }
    }
    out
}

/// Rebuild a database from [`dump`] output.
pub fn load(text: &str) -> Result<Database, DbError> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(DbError::Sql("not a sorete-reldb dump (bad magic)".into()));
    }
    let mut db = Database::new();
    let mut current: Option<Symbol> = None;
    let mut pending_cols: Vec<String> = Vec::new();
    let mut expected_cols = 0usize;
    let mut pending_name: Option<String> = None;
    let mut pending_indexes: Vec<Symbol> = Vec::new();

    fn finalize(
        db: &mut Database,
        name: &str,
        cols: &[String],
        indexes: &[Symbol],
    ) -> Result<Symbol, DbError> {
        let refs: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
        db.create_table(Schema::new(name, &refs))?;
        let sym = Symbol::new(name);
        for idx in indexes {
            db.table_mut(sym)?.create_index(*idx)?;
        }
        Ok(sym)
    }

    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kw {
            "TABLE" => {
                if let Some(name) = pending_name.take() {
                    // Previous table had no rows; still create it.
                    current = Some(finalize(&mut db, &name, &pending_cols, &pending_indexes)?);
                    let _ = current;
                }
                let (name, n) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| DbError::Sql("bad TABLE line".into()))?;
                expected_cols = n
                    .parse()
                    .map_err(|_| DbError::Sql("bad TABLE column count".into()))?;
                pending_name = Some(name.to_string());
                pending_cols.clear();
                pending_indexes.clear();
                current = None;
            }
            "COL" => pending_cols.push(rest.to_string()),
            "INDEX" => pending_indexes.push(Symbol::new(rest)),
            "ROW" => {
                if current.is_none() {
                    let name = pending_name
                        .take()
                        .ok_or_else(|| DbError::Sql("ROW before TABLE".into()))?;
                    if pending_cols.len() != expected_cols {
                        return Err(DbError::Sql(format!(
                            "table `{}` declares {} columns but lists {}",
                            name,
                            expected_cols,
                            pending_cols.len()
                        )));
                    }
                    current = Some(finalize(&mut db, &name, &pending_cols, &pending_indexes)?);
                }
                let table = db.table_mut(current.unwrap())?;
                let row: Result<Vec<Value>, DbError> = rest.split('\t').map(decode_value).collect();
                table.insert(row?)?;
            }
            other => return Err(DbError::Sql(format!("unknown record `{}`", other))),
        }
    }
    if let Some(name) = pending_name.take() {
        finalize(&mut db, &name, &pending_cols, &pending_indexes)?;
    }
    Ok(db)
}

/// Write a dump to a file.
pub fn save_file(db: &Database, path: &std::path::Path) -> Result<(), DbError> {
    std::fs::write(path, dump(db)).map_err(|e| DbError::Sql(format!("write {:?}: {}", path, e)))
}

/// Load a dump from a file.
pub fn load_file(path: &std::path::Path) -> Result<Database, DbError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DbError::Sql(format!("read {:?}: {}", path, e)))?;
    load(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::Value;

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new("emp", &["name", "dept", "sal"]))
            .unwrap();
        db.table_mut(Symbol::new("emp"))
            .unwrap()
            .create_index(Symbol::new("dept"))
            .unwrap();
        db.insert(
            "emp",
            vec![Value::sym("ann"), Value::sym("eng"), Value::Int(120)],
        )
        .unwrap();
        db.insert(
            "emp",
            vec![Value::sym("tab\tby"), Value::Nil, Value::Float(1.5)],
        )
        .unwrap();
        db.create_table(Schema::new("tags", &["t"])).unwrap();
        db.insert("tags", vec![Value::Tag(sorete_base::TimeTag::new(42))])
            .unwrap();
        db.create_table(Schema::new("empty", &["a", "b"])).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample();
        let text = dump(&db);
        let db2 = load(&text).unwrap();
        assert_eq!(db.table_names(), db2.table_names());
        for name in db.table_names() {
            let (t1, t2) = (db.table(name).unwrap(), db2.table(name).unwrap());
            assert_eq!(t1.schema, t2.schema, "{}", name);
            assert_eq!(t1.len(), t2.len(), "{}", name);
            let mut r1: Vec<Vec<Value>> = t1.iter().map(|(_, r)| r.to_vec()).collect();
            let mut r2: Vec<Vec<Value>> = t2.iter().map(|(_, r)| r.to_vec()).collect();
            r1.sort();
            r2.sort();
            assert_eq!(r1, r2, "{}", name);
        }
        // Index survives.
        assert!(db2
            .table_by_name("emp")
            .unwrap()
            .has_index(Symbol::new("dept")));
        // The dump is stable (dump ∘ load ∘ dump is identity).
        assert_eq!(text, dump(&db2));
    }

    #[test]
    fn escaped_symbols_roundtrip() {
        for s in [
            "plain",
            "with\ttab",
            "with\nnewline",
            "back\\slash",
            "mix\\t\t\n",
        ] {
            let mut enc = String::new();
            encode_value(&Value::sym(s), &mut enc);
            assert_eq!(decode_value(&enc).unwrap(), Value::sym(s), "{:?}", s);
        }
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        for f in [0.1, -0.0, f64::MAX, f64::MIN_POSITIVE, 1e300] {
            let mut enc = String::new();
            encode_value(&Value::Float(f), &mut enc);
            let Value::Float(g) = decode_value(&enc).unwrap() else {
                panic!()
            };
            assert_eq!(f.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load("not a dump").is_err());
        assert!(load("sorete-reldb 1\nBOGUS x").is_err());
        assert!(load("sorete-reldb 1\nROW I:1").is_err(), "ROW before TABLE");
        assert!(decode_value("Q:1").is_err());
        assert!(decode_value("I:xyz").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let db = sample();
        let dir = std::env::temp_dir().join("sorete-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.txt");
        save_file(&db, &path).unwrap();
        let db2 = load_file(&path).unwrap();
        assert_eq!(db.table_names(), db2.table_names());
    }
}
