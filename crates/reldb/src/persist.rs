//! Database persistence: dump/restore in a line-oriented text format.
//!
//! DIPS is a *disk-based* production system; this module gives the
//! substrate the corresponding durability primitive without reaching for
//! external serialization crates. The format is self-describing:
//!
//! ```text
//! sorete-reldb 1
//! TABLE emp 3
//! COL name
//! COL dept
//! COL sal
//! INDEX dept
//! ROW S:ann<TAB>S:eng<TAB>I:120
//! ROW S:bob<TAB>N<TAB>F:3ff0000000000000
//! ```
//!
//! (`<TAB>` above stands for a literal tab, the column separator.)
//! Values are typed tokens: `N` (nil), `I:<decimal>` (int),
//! `F:<hex bits>` (float, exact round trip), `S:<escaped>` (symbol),
//! `T:<decimal>` (WME tag). Symbols escape tab/newline/backslash.
//! Row ids are **not** preserved across a reload (tables are rebuilt
//! densely); anything holding `RowId`s must re-derive them.

use crate::db::Database;
use crate::error::DbError;
use crate::table::Schema;
use sorete_base::{Symbol, Value};

const MAGIC: &str = "sorete-reldb 1";

fn encode_value(v: &Value, out: &mut String) {
    v.push_wire(out);
}

fn decode_value(tok: &str) -> Result<Value, DbError> {
    Value::from_wire(tok).map_err(DbError::Corrupt)
}

/// Serialize the whole database.
pub fn dump(db: &Database) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    for name in db.table_names() {
        let table = db.table(name).expect("listed table exists");
        out.push_str(&format!("TABLE {} {}\n", name, table.schema.cols.len()));
        for col in &table.schema.cols {
            out.push_str(&format!("COL {}\n", col));
        }
        for col in &table.schema.cols {
            if table.has_index(*col) {
                out.push_str(&format!("INDEX {}\n", col));
            }
        }
        // Rows in id order for determinism.
        let mut rows: Vec<_> = table.iter().collect();
        rows.sort_by_key(|(id, _)| *id);
        for (_, row) in rows {
            out.push_str("ROW ");
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                encode_value(v, &mut out);
            }
            out.push('\n');
        }
    }
    out
}

/// Rebuild a database from [`dump`] output.
pub fn load(text: &str) -> Result<Database, DbError> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(DbError::Corrupt(
            "not a sorete-reldb dump (bad magic)".into(),
        ));
    }
    let mut db = Database::new();
    let mut current: Option<Symbol> = None;
    let mut pending_cols: Vec<String> = Vec::new();
    let mut expected_cols = 0usize;
    let mut pending_name: Option<String> = None;
    let mut pending_indexes: Vec<Symbol> = Vec::new();

    // Every path that materialises a table funnels through here, so the
    // declared-vs-listed column count is validated whether or not the
    // table had any ROW lines.
    fn finalize(
        db: &mut Database,
        name: &str,
        expected_cols: usize,
        cols: &[String],
        indexes: &[Symbol],
    ) -> Result<Symbol, DbError> {
        if cols.len() != expected_cols {
            return Err(DbError::Corrupt(format!(
                "table `{}` declares {} columns but lists {}",
                name,
                expected_cols,
                cols.len()
            )));
        }
        let refs: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
        db.create_table(Schema::new(name, &refs))?;
        let sym = Symbol::new(name);
        for idx in indexes {
            db.table_mut(sym)?.create_index(*idx)?;
        }
        Ok(sym)
    }

    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kw {
            "TABLE" => {
                if let Some(name) = pending_name.take() {
                    // Previous table had no rows; still create it.
                    finalize(
                        &mut db,
                        &name,
                        expected_cols,
                        &pending_cols,
                        &pending_indexes,
                    )?;
                }
                let (name, n) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| DbError::Corrupt("bad TABLE line".into()))?;
                expected_cols = n
                    .parse()
                    .map_err(|_| DbError::Corrupt("bad TABLE column count".into()))?;
                // The previous pending table was finalized above, so every
                // already-seen name is in the catalog by now.
                if db.table(Symbol::new(name)).is_ok() {
                    return Err(DbError::Corrupt(format!(
                        "duplicate TABLE `{}` in dump",
                        name
                    )));
                }
                pending_name = Some(name.to_string());
                pending_cols.clear();
                pending_indexes.clear();
                current = None;
            }
            "COL" => pending_cols.push(rest.to_string()),
            "INDEX" => pending_indexes.push(Symbol::new(rest)),
            "ROW" => {
                if current.is_none() {
                    let name = pending_name
                        .take()
                        .ok_or_else(|| DbError::Corrupt("ROW before TABLE".into()))?;
                    current = Some(finalize(
                        &mut db,
                        &name,
                        expected_cols,
                        &pending_cols,
                        &pending_indexes,
                    )?);
                }
                let table = db.table_mut(current.unwrap())?;
                let row: Result<Vec<Value>, DbError> = rest.split('\t').map(decode_value).collect();
                table.insert(row?)?;
            }
            other => return Err(DbError::Corrupt(format!("unknown record `{}`", other))),
        }
    }
    if let Some(name) = pending_name.take() {
        finalize(
            &mut db,
            &name,
            expected_cols,
            &pending_cols,
            &pending_indexes,
        )?;
    }
    Ok(db)
}

/// Write `bytes` to `path` crash-atomically: write a `.tmp` sibling,
/// fsync it, rename it over the target, and fsync the directory so the
/// rename itself is durable. At every instant either the old complete
/// file or the new complete file is at `path` — never a torn mix — and
/// after `Ok(())` the new contents survive power loss.
pub fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), DbError> {
    use std::io::Write as _;
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| DbError::Io(format!("create temp for {:?}: {}", path, e)))?;
    f.write_all(bytes)
        .and_then(|_| f.sync_all())
        .map_err(|e| DbError::Io(format!("write temp for {:?}: {}", path, e)))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| DbError::Io(format!("rename temp into {:?}: {}", path, e)))?;
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    // Without this the rename can evaporate on power loss even though the
    // caller was told the write is durable (and may have truncated a WAL
    // on the strength of it). Directories can't be opened for syncing on
    // every platform; where they can't, rename atomicity is the best we get.
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all()
            .map_err(|e| DbError::Io(format!("sync directory for {:?}: {}", path, e)))?;
    }
    Ok(())
}

/// Write a dump to a file (crash-atomically; see [`atomic_write`]).
pub fn save_file(db: &Database, path: &std::path::Path) -> Result<(), DbError> {
    atomic_write(path, dump(db).as_bytes())
}

/// Load a dump from a file.
pub fn load_file(path: &std::path::Path) -> Result<Database, DbError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DbError::Io(format!("read {:?}: {}", path, e)))?;
    load(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::Value;

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new("emp", &["name", "dept", "sal"]))
            .unwrap();
        db.table_mut(Symbol::new("emp"))
            .unwrap()
            .create_index(Symbol::new("dept"))
            .unwrap();
        db.insert(
            "emp",
            vec![Value::sym("ann"), Value::sym("eng"), Value::Int(120)],
        )
        .unwrap();
        db.insert(
            "emp",
            vec![Value::sym("tab\tby"), Value::Nil, Value::Float(1.5)],
        )
        .unwrap();
        db.create_table(Schema::new("tags", &["t"])).unwrap();
        db.insert("tags", vec![Value::Tag(sorete_base::TimeTag::new(42))])
            .unwrap();
        db.create_table(Schema::new("empty", &["a", "b"])).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample();
        let text = dump(&db);
        let db2 = load(&text).unwrap();
        assert_eq!(db.table_names(), db2.table_names());
        for name in db.table_names() {
            let (t1, t2) = (db.table(name).unwrap(), db2.table(name).unwrap());
            assert_eq!(t1.schema, t2.schema, "{}", name);
            assert_eq!(t1.len(), t2.len(), "{}", name);
            let mut r1: Vec<Vec<Value>> = t1.iter().map(|(_, r)| r.to_vec()).collect();
            let mut r2: Vec<Vec<Value>> = t2.iter().map(|(_, r)| r.to_vec()).collect();
            r1.sort();
            r2.sort();
            assert_eq!(r1, r2, "{}", name);
        }
        // Index survives.
        assert!(db2
            .table_by_name("emp")
            .unwrap()
            .has_index(Symbol::new("dept")));
        // The dump is stable (dump ∘ load ∘ dump is identity).
        assert_eq!(text, dump(&db2));
    }

    #[test]
    fn escaped_symbols_roundtrip() {
        for s in [
            "plain",
            "with\ttab",
            "with\nnewline",
            "back\\slash",
            "mix\\t\t\n",
        ] {
            let mut enc = String::new();
            encode_value(&Value::sym(s), &mut enc);
            assert_eq!(decode_value(&enc).unwrap(), Value::sym(s), "{:?}", s);
        }
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        for f in [0.1, -0.0, f64::MAX, f64::MIN_POSITIVE, 1e300] {
            let mut enc = String::new();
            encode_value(&Value::Float(f), &mut enc);
            let Value::Float(g) = decode_value(&enc).unwrap() else {
                panic!()
            };
            assert_eq!(f.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load("not a dump").is_err());
        assert!(load("sorete-reldb 1\nBOGUS x").is_err());
        assert!(load("sorete-reldb 1\nROW I:1").is_err(), "ROW before TABLE");
        assert!(decode_value("Q:1").is_err());
        assert!(decode_value("I:xyz").is_err());
    }

    #[test]
    fn duplicate_table_is_an_error() {
        // Duplicate header with rows in both bodies.
        let Err(err) = load(concat!(
            "sorete-reldb 1\n",
            "TABLE t 1\nCOL a\nROW I:1\n",
            "TABLE t 1\nCOL a\nROW I:2\n",
        )) else {
            panic!("duplicate TABLE accepted")
        };
        assert!(
            err.to_string().contains("duplicate TABLE `t`"),
            "got: {}",
            err
        );
        // Rowless duplicate immediately followed by its twin.
        let Err(err) = load("sorete-reldb 1\nTABLE t 1\nCOL a\nTABLE t 1\nCOL a\n") else {
            panic!("duplicate TABLE accepted")
        };
        assert!(
            err.to_string().contains("duplicate TABLE `t`"),
            "got: {}",
            err
        );
    }

    #[test]
    fn unknown_token_is_an_error() {
        let Err(err) = load("sorete-reldb 1\nWHAT now\n") else {
            panic!("unknown record accepted")
        };
        assert!(
            err.to_string().contains("unknown record `WHAT`"),
            "got: {}",
            err
        );
        let Err(err) = load("sorete-reldb 1\nTABLE t 1\nCOL a\nROW Q:1\n") else {
            panic!("unknown value kind accepted")
        };
        assert!(
            err.to_string().contains("unknown value kind `Q`"),
            "got: {}",
            err
        );
    }

    #[test]
    fn column_count_lie_is_an_error_even_without_rows() {
        // Declared 3 columns, listed 1, no ROW lines: the pre-fix loader
        // accepted this silently because the count check only ran on ROW.
        for text in [
            "sorete-reldb 1\nTABLE t 3\nCOL a\n",
            "sorete-reldb 1\nTABLE t 3\nCOL a\nTABLE u 1\nCOL b\nROW I:1\n",
        ] {
            let Err(err) = load(text) else {
                panic!("column-count lie accepted: {:?}", text)
            };
            assert!(
                err.to_string().contains("declares 3 columns but lists 1"),
                "got: {}",
                err
            );
        }
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("sorete-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("atomic-{}.txt", std::process::id()));
        let tmp = dir.join(format!("atomic-{}.txt.tmp", std::process::id()));
        // A stale temp from a crashed earlier attempt is simply overwritten.
        std::fs::write(&tmp, b"stale garbage").unwrap();
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(!tmp.exists(), "temp renamed away");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // A target in a nonexistent directory fails without touching
        // anything the caller depends on.
        let bad = dir.join("no-such-dir").join("x.txt");
        assert!(atomic_write(&bad, b"nope").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let db = sample();
        let dir = std::env::temp_dir().join("sorete-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.txt");
        save_file(&db, &path).unwrap();
        let db2 = load_file(&path).unwrap();
        assert_eq!(db.table_names(), db2.table_names());
    }
}
