#![warn(missing_docs)]
//! `sorete-reldb` — the relational database substrate for the DIPS half of
//! the paper (§8): tables with hash indexes, a relational-algebra executor,
//! a SQL subset big enough for the paper's Figure 6 query, and optimistic
//! transactions whose conflicts reproduce DIPS's instantiation-conflict
//! problem.
//!
//! ```
//! use sorete_reldb::{Database, Schema};
//! use sorete_base::Value;
//!
//! let mut db = Database::new();
//! db.create_table(Schema::new("emp", &["name", "sal"])).unwrap();
//! db.insert("emp", vec![Value::sym("ann"), Value::Int(120)]).unwrap();
//! db.insert("emp", vec![Value::sym("bob"), Value::Int(80)]).unwrap();
//! let rel = db.sql("SELECT name FROM emp WHERE sal > 100").unwrap();
//! assert_eq!(rel.rows.len(), 1);
//! ```

pub mod algebra;
pub mod db;
pub mod durable;
pub mod error;
pub mod persist;
pub mod sql;
pub mod table;
pub mod tx;
pub mod wal;

pub use algebra::{AggFun, CmpOp, ColRef, Plan, Pred, Relation, Scalar};
pub use db::Database;
pub use durable::{DurableDb, DurableReport};
pub use error::DbError;
pub use persist::{dump, load, load_file, save_file};
pub use sql::parse_query;
pub use table::{Row, RowId, Schema, Table};
pub use tx::{AppliedWrite, Transaction};
pub use wal::{
    decode_wme_op, encode_wme_op, IoFaultKind, IoFaultPlan, Wal, WalDefect, WalOptions, WalRecord,
    WalScan, WalStats, WmeOp,
};
