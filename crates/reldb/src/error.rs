//! Database errors.

use std::fmt;

/// Errors from the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Table does not exist.
    UnknownTable(String),
    /// Column does not exist / is ambiguous.
    UnknownColumn(String),
    /// Row id not live.
    UnknownRow(usize),
    /// Row arity does not match the schema.
    Arity {
        /// The table.
        table: String,
        /// Declared column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Optimistic transaction lost a conflict and must retry.
    TxConflict {
        /// Table where the conflict was detected.
        table: String,
    },
    /// SQL parse error.
    Sql(String),
    /// Persistence input (dump or WAL) is malformed or inconsistent.
    Corrupt(String),
    /// Underlying file IO failed (includes injected storage faults).
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{}`", t),
            DbError::UnknownColumn(c) => write!(f, "unknown or ambiguous column `{}`", c),
            DbError::UnknownRow(r) => write!(f, "row {} is not live", r),
            DbError::Arity {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "table `{}` expects {} values, got {}",
                    table, expected, got
                )
            }
            DbError::DuplicateTable(t) => write!(f, "table `{}` already exists", t),
            DbError::TxConflict { table } => {
                write!(f, "transaction conflict on table `{}`", table)
            }
            DbError::Sql(m) => write!(f, "SQL error: {}", m),
            DbError::Corrupt(m) => write!(f, "corrupt data: {}", m),
            DbError::Io(m) => write!(f, "io error: {}", m),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DbError::UnknownTable("x".into()).to_string().contains("x"));
        assert!(DbError::TxConflict { table: "t".into() }
            .to_string()
            .contains("conflict"));
    }
}
