//! Tables: schemas, row storage, hash indexes, row versioning.

use crate::error::DbError;
use sorete_base::{define_id, FxHashMap, Symbol, Value};

define_id!(
    /// Row identifier within one table (stable until deletion).
    pub struct RowId
);

/// A table row.
pub type Row = Box<[Value]>;

/// Table schema: ordered, named columns (untyped — [`Value`] is dynamic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Table name.
    pub name: Symbol,
    /// Column names, in storage order.
    pub cols: Vec<Symbol>,
}

impl Schema {
    /// Build a schema.
    pub fn new(name: &str, cols: &[&str]) -> Schema {
        Schema {
            name: Symbol::new(name),
            cols: cols.iter().map(|c| Symbol::new(c)).collect(),
        }
    }

    /// Index of a column.
    pub fn col_index(&self, col: Symbol) -> Option<usize> {
        self.cols.iter().position(|c| *c == col)
    }
}

/// A heap table with optional hash indexes and per-row versions (used by
/// the optimistic transaction layer).
pub struct Table {
    /// The schema.
    pub schema: Schema,
    rows: Vec<Option<Row>>,
    versions: Vec<u64>,
    free: Vec<RowId>,
    indexes: FxHashMap<Symbol, FxHashMap<Value, Vec<RowId>>>,
    live: usize,
}

impl Table {
    /// Empty table.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            versions: Vec::new(),
            free: Vec::new(),
            indexes: FxHashMap::default(),
            live: 0,
        }
    }

    /// Create a hash index on a column (backfills existing rows).
    pub fn create_index(&mut self, col: Symbol) -> Result<(), DbError> {
        let idx = self
            .schema
            .col_index(col)
            .ok_or_else(|| DbError::UnknownColumn(col.to_string()))?;
        let mut map: FxHashMap<Value, Vec<RowId>> = FxHashMap::default();
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(r) = row {
                map.entry(r[idx]).or_default().push(RowId::new(i));
            }
        }
        self.indexes.insert(col, map);
        Ok(())
    }

    /// Insert a row (must match schema arity).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, DbError> {
        if row.len() != self.schema.cols.len() {
            return Err(DbError::Arity {
                table: self.schema.name.to_string(),
                expected: self.schema.cols.len(),
                got: row.len(),
            });
        }
        let row: Row = row.into();
        let id = match self.free.pop() {
            Some(id) => {
                self.rows[id.index()] = Some(row.clone());
                self.versions[id.index()] += 1;
                id
            }
            None => {
                self.rows.push(Some(row.clone()));
                self.versions.push(1);
                RowId::new(self.rows.len() - 1)
            }
        };
        self.live += 1;
        for (col, map) in &mut self.indexes {
            let ci = self.schema.col_index(*col).unwrap();
            map.entry(row[ci]).or_default().push(id);
        }
        Ok(id)
    }

    /// Insert a row at an *explicit* slot — the WAL replay primitive.
    ///
    /// A redo log records the `RowId` each insert was assigned; replaying
    /// it with [`Table::insert`] would re-run free-list policy against a
    /// base whose tombstones a checkpoint did not preserve, assigning
    /// different ids than the ones later `update`/`delete` records name.
    /// `insert_at` pins the slot instead: gaps below `id` are filled with
    /// tombstones *on the free list* (they were allocatable tombstones in
    /// the run that wrote the log, so they must stay allocatable after
    /// recovery or post-recovery ids diverge from the uninterrupted run),
    /// and inserting over a live slot is corruption.
    pub fn insert_at(&mut self, id: RowId, row: Vec<Value>) -> Result<(), DbError> {
        if row.len() != self.schema.cols.len() {
            return Err(DbError::Arity {
                table: self.schema.name.to_string(),
                expected: self.schema.cols.len(),
                got: row.len(),
            });
        }
        while self.rows.len() < id.index() {
            self.free.push(RowId::new(self.rows.len()));
            self.rows.push(None);
            self.versions.push(0);
        }
        if self.rows.len() == id.index() {
            self.rows.push(None);
            self.versions.push(0);
        }
        if self.rows[id.index()].is_some() {
            return Err(DbError::Corrupt(format!(
                "replayed insert into live slot {} of table `{}`",
                id.index(),
                self.schema.name
            )));
        }
        let row: Row = row.into();
        self.rows[id.index()] = Some(row.clone());
        self.versions[id.index()] += 1;
        self.free.retain(|&f| f != id);
        self.live += 1;
        for (col, map) in &mut self.indexes {
            let ci = self.schema.col_index(*col).unwrap();
            map.entry(row[ci]).or_default().push(id);
        }
        Ok(())
    }

    /// Delete a row.
    pub fn delete(&mut self, id: RowId) -> Result<Row, DbError> {
        let slot = self
            .rows
            .get_mut(id.index())
            .ok_or(DbError::UnknownRow(id.index()))?;
        let row = slot.take().ok_or(DbError::UnknownRow(id.index()))?;
        self.versions[id.index()] += 1;
        self.free.push(id);
        self.live -= 1;
        for (col, map) in &mut self.indexes {
            let ci = self.schema.col_index(*col).unwrap();
            if let Some(ids) = map.get_mut(&row[ci]) {
                ids.retain(|&r| r != id);
            }
        }
        Ok(row)
    }

    /// Overwrite one column of a row.
    pub fn update(&mut self, id: RowId, col: Symbol, value: Value) -> Result<(), DbError> {
        let ci = self
            .schema
            .col_index(col)
            .ok_or_else(|| DbError::UnknownColumn(col.to_string()))?;
        let row = self
            .rows
            .get_mut(id.index())
            .and_then(|r| r.as_mut())
            .ok_or(DbError::UnknownRow(id.index()))?;
        let old = row[ci];
        row[ci] = value;
        self.versions[id.index()] += 1;
        if let Some(map) = self.indexes.get_mut(&col) {
            if let Some(ids) = map.get_mut(&old) {
                ids.retain(|&r| r != id);
            }
            map.entry(value).or_default().push(id);
        }
        Ok(())
    }

    /// Read a row.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id.index())?.as_ref()
    }

    /// Version counter of a row slot (bumps on insert/update/delete).
    pub fn version(&self, id: RowId) -> u64 {
        self.versions.get(id.index()).copied().unwrap_or(0)
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate live rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (RowId::new(i), row)))
    }

    /// Row ids whose `col` equals `value`, via index if present, else scan.
    pub fn lookup(&self, col: Symbol, value: &Value) -> Vec<RowId> {
        if let Some(map) = self.indexes.get(&col) {
            return map.get(value).cloned().unwrap_or_default();
        }
        let ci = match self.schema.col_index(col) {
            Some(c) => c,
            None => return Vec::new(),
        };
        self.iter()
            .filter(|(_, r)| r[ci] == *value)
            .map(|(id, _)| id)
            .collect()
    }

    /// Does the table have an index on `col`?
    pub fn has_index(&self, col: Symbol) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Total row slots (live + tombstoned) — the table's "page" footprint
    /// grows with this, not with [`Table::len`].
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Total live `(value → row-id)` postings across all secondary indexes.
    pub fn index_entry_count(&self) -> u64 {
        self.indexes
            .values()
            .flat_map(|m| m.values())
            .map(|ids| ids.len() as u64)
            .sum()
    }

    /// Estimated live bytes of row storage: live rows × (header + columns)
    /// (live-set methodology — see [`sorete_base::MemoryReport`]).
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let cols = self.schema.cols.len();
        (self.live * (size_of::<Row>() + cols * size_of::<Value>())) as u64
    }

    /// Estimated live bytes of secondary-index postings.
    pub fn index_bytes(&self) -> u64 {
        use std::mem::size_of;
        self.indexes
            .values()
            .map(|m| {
                m.values()
                    .map(|ids| (size_of::<Value>() + ids.len() * size_of::<RowId>()) as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(Schema::new("people", &["name", "age"]));
        t.insert(vec![Value::sym("ann"), Value::Int(30)]).unwrap();
        t.insert(vec![Value::sym("bob"), Value::Int(25)]).unwrap();
        t.insert(vec![Value::sym("cat"), Value::Int(30)]).unwrap();
        t
    }

    #[test]
    fn insert_get_delete() {
        let mut t = people();
        assert_eq!(t.len(), 3);
        let id = RowId::new(1);
        assert_eq!(t.get(id).unwrap()[0], Value::sym("bob"));
        let row = t.delete(id).unwrap();
        assert_eq!(row[0], Value::sym("bob"));
        assert_eq!(t.len(), 2);
        assert!(t.get(id).is_none());
        assert!(t.delete(id).is_err(), "double delete");
    }

    #[test]
    fn arity_checked() {
        let mut t = people();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn slot_reuse_bumps_version() {
        let mut t = people();
        let id = RowId::new(0);
        let v0 = t.version(id);
        t.delete(id).unwrap();
        let id2 = t.insert(vec![Value::sym("dan"), Value::Int(40)]).unwrap();
        assert_eq!(id2, id, "slot reused");
        assert!(t.version(id) > v0, "version distinguishes incarnations");
    }

    #[test]
    fn index_lookup_and_maintenance() {
        let mut t = people();
        t.create_index(Symbol::new("age")).unwrap();
        assert_eq!(t.lookup(Symbol::new("age"), &Value::Int(30)).len(), 2);
        // Update moves index entries.
        t.update(RowId::new(0), Symbol::new("age"), Value::Int(31))
            .unwrap();
        assert_eq!(t.lookup(Symbol::new("age"), &Value::Int(30)).len(), 1);
        assert_eq!(t.lookup(Symbol::new("age"), &Value::Int(31)).len(), 1);
        // Delete removes them.
        t.delete(RowId::new(2)).unwrap();
        assert_eq!(t.lookup(Symbol::new("age"), &Value::Int(30)).len(), 0);
    }

    #[test]
    fn insert_at_keeps_gap_slots_allocatable() {
        // Replaying an insert pinned at slot 2 into an empty table leaves
        // slots 0 and 1 as tombstones; they were allocatable in the run
        // that wrote the log, so ordinary inserts must reuse them — in
        // the same most-recent-first order the free-list stack gives an
        // uninterrupted run.
        let mut t = Table::new(Schema::new("people", &["name", "age"]));
        t.insert_at(RowId::new(2), vec![Value::sym("cat"), Value::Int(30)])
            .unwrap();
        assert_eq!(t.len(), 1);
        let a = t.insert(vec![Value::sym("dan"), Value::Int(40)]).unwrap();
        let b = t.insert(vec![Value::sym("eve"), Value::Int(20)]).unwrap();
        assert_eq!((a, b), (RowId::new(1), RowId::new(0)), "gaps reused");
        let c = t.insert(vec![Value::sym("fred"), Value::Int(50)]).unwrap();
        assert_eq!(c, RowId::new(3), "then fresh slots");
        // A replayed insert landing *on* a gap slot takes it off the
        // free list (the retain in insert_at).
        let mut t = Table::new(Schema::new("people", &["name"]));
        t.insert_at(RowId::new(1), vec![Value::sym("x")]).unwrap();
        t.insert_at(RowId::new(0), vec![Value::sym("y")]).unwrap();
        let id = t.insert(vec![Value::sym("z")]).unwrap();
        assert_eq!(id, RowId::new(2), "no phantom free slots");
    }

    #[test]
    fn unindexed_lookup_scans() {
        let t = people();
        assert!(!t.has_index(Symbol::new("name")));
        assert_eq!(t.lookup(Symbol::new("name"), &Value::sym("ann")).len(), 1);
    }
}
