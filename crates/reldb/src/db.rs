//! The database catalog.

use crate::algebra::{execute, Plan, Relation};
use crate::error::DbError;
use crate::table::{RowId, Schema, Table};
use crate::tx::{AppliedWrite, Transaction};
use sorete_base::{FxHashMap, Symbol, Value};

/// A named collection of tables with plan execution, the SQL subset, and
/// optimistic transactions.
#[derive(Default)]
pub struct Database {
    tables: FxHashMap<Symbol, Table>,
    commits: u64,
    aborts: u64,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, schema: Schema) -> Result<(), DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::DuplicateTable(schema.name.to_string()));
        }
        self.tables.insert(schema.name, Table::new(schema));
        Ok(())
    }

    /// Access a table.
    pub fn table(&self, name: Symbol) -> Result<&Table, DbError> {
        self.tables
            .get(&name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Access a table by string name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table, DbError> {
        self.table(Symbol::new(name))
    }

    /// Mutable table access.
    pub fn table_mut(&mut self, name: Symbol) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Insert a row directly (outside any transaction).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        self.table_mut(Symbol::new(table))?.insert(row)
    }

    /// Execute an algebra plan.
    pub fn query(&self, plan: &Plan) -> Result<Relation, DbError> {
        execute(self, plan)
    }

    /// Parse and execute a SQL-subset query.
    pub fn sql(&self, query: &str) -> Result<Relation, DbError> {
        let plan = crate::sql::parse_query(query)?;
        self.query(&plan)
    }

    /// Begin an optimistic transaction.
    pub fn begin(&self) -> Transaction {
        Transaction::new()
    }

    /// Try to commit: validates the read/write sets (first committer wins)
    /// and applies buffered writes atomically on success.
    pub fn commit(&mut self, tx: Transaction) -> Result<(), DbError> {
        self.commit_applied(tx).map(|_| ())
    }

    /// Like [`Database::commit`], but returns the writes as applied —
    /// inserts carry their assigned [`RowId`]s — so a write-ahead log
    /// ([`crate::durable::DurableDb`]) can record a physical redo stream.
    pub fn commit_applied(&mut self, tx: Transaction) -> Result<Vec<AppliedWrite>, DbError> {
        match tx.validate_and_apply(self) {
            Ok(applied) => {
                self.commits += 1;
                Ok(applied)
            }
            Err(e) => {
                self.aborts += 1;
                Err(e)
            }
        }
    }

    /// Committed transaction count.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Aborted (conflicted) transaction count.
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// Table names (sorted, for dumps).
    pub fn table_names(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.tables.keys().copied().collect();
        v.sort();
        v
    }

    /// Byte-level memory accounting across all tables: live rows, heap
    /// "pages" (64-slot extents, counting tombstones — heap files do not
    /// shrink on delete), and secondary-index postings. Live-set
    /// methodology for bytes — see [`sorete_base::MemoryReport`].
    pub fn memory_report(&self) -> sorete_base::MemoryReport {
        let mut report = sorete_base::MemoryReport::default();
        let mut row_bytes = 0u64;
        let mut rows = 0u64;
        let mut pages = 0u64;
        let mut idx_bytes = 0u64;
        let mut idx_entries = 0u64;
        for t in self.tables.values() {
            row_bytes += t.approx_bytes();
            rows += t.len() as u64;
            pages += t.slot_count().div_ceil(64) as u64;
            idx_bytes += t.index_bytes();
            idx_entries += t.index_entry_count();
        }
        report.push("db_rows", row_bytes, rows);
        report.push("db_pages", pages * 64 * 16, pages);
        report.push("db_index", idx_bytes, idx_entries);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{AggFun, CmpOp, ColRef, Plan, Pred, Scalar};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new("emp", &["name", "dept", "sal"]))
            .unwrap();
        for (n, d, s) in [
            ("ann", "eng", 120),
            ("bob", "eng", 100),
            ("cat", "sales", 90),
            ("dan", "sales", 80),
        ] {
            db.insert("emp", vec![Value::sym(n), Value::sym(d), Value::Int(s)])
                .unwrap();
        }
        db.create_table(Schema::new("dept", &["name", "city"]))
            .unwrap();
        db.insert("dept", vec![Value::sym("eng"), Value::sym("nyc")])
            .unwrap();
        db.insert("dept", vec![Value::sym("sales"), Value::sym("sfo")])
            .unwrap();
        db
    }

    #[test]
    fn scan_select_project() {
        let db = db();
        let plan = Plan::Project {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan("emp".into())),
                pred: Pred::Cmp(
                    CmpOp::Gt,
                    Scalar::Col(ColRef::new("sal")),
                    Scalar::Lit(Value::Int(90)),
                ),
            }),
            cols: vec![ColRef::new("name")],
        };
        let rel = db.query(&plan).unwrap();
        assert_eq!(rel.cols, vec!["emp.name"]);
        assert_eq!(rel.rows.len(), 2);
    }

    #[test]
    fn hash_join() {
        let db = db();
        let plan = Plan::Join {
            left: Box::new(Plan::Scan("emp".into())),
            right: Box::new(Plan::Scan("dept".into())),
            on: vec![(ColRef::new("emp.dept"), ColRef::new("dept.name"))],
        };
        let rel = db.query(&plan).unwrap();
        assert_eq!(rel.rows.len(), 4);
        assert_eq!(rel.cols.len(), 5);
    }

    #[test]
    fn cross_join() {
        let db = db();
        let plan = Plan::Join {
            left: Box::new(Plan::Scan("emp".into())),
            right: Box::new(Plan::Scan("dept".into())),
            on: vec![],
        };
        assert_eq!(db.query(&plan).unwrap().rows.len(), 8);
    }

    #[test]
    fn group_by_with_aggregates() {
        let db = db();
        let plan = Plan::GroupBy {
            input: Box::new(Plan::Scan("emp".into())),
            keys: vec![ColRef::new("dept")],
            aggs: vec![
                (AggFun::Count, ColRef::new("name")),
                (AggFun::Sum, ColRef::new("sal")),
                (AggFun::Avg, ColRef::new("sal")),
                (AggFun::Min, ColRef::new("sal")),
                (AggFun::Max, ColRef::new("sal")),
            ],
        };
        let rel = db.query(&plan).unwrap();
        assert_eq!(rel.rows.len(), 2);
        // Groups sorted by key: eng, sales.
        assert_eq!(rel.rows[0][0], Value::sym("eng"));
        assert_eq!(rel.rows[0][1], Value::Int(2));
        assert_eq!(rel.rows[0][2], Value::Int(220));
        assert_eq!(rel.rows[0][3], Value::Float(110.0));
        assert_eq!(rel.rows[0][4], Value::Int(100));
        assert_eq!(rel.rows[0][5], Value::Int(120));
    }

    #[test]
    fn group_by_without_aggregates_is_figure6_form() {
        let db = db();
        let plan = Plan::GroupBy {
            input: Box::new(Plan::Scan("emp".into())),
            keys: vec![ColRef::new("dept")],
            aggs: vec![],
        };
        let rel = db.query(&plan).unwrap();
        assert_eq!(rel.cols[0], "group");
        assert_eq!(rel.rows.len(), 4);
        // Two eng rows in group 1, two sales rows in group 2.
        assert_eq!(rel.rows[0][0], Value::Int(1));
        assert_eq!(rel.rows[2][0], Value::Int(2));
    }

    #[test]
    fn order_by_and_limit() {
        let db = db();
        let plan = Plan::Limit {
            input: Box::new(Plan::OrderBy {
                input: Box::new(Plan::Scan("emp".into())),
                keys: vec![(ColRef::new("sal"), false)],
            }),
            n: 2,
        };
        let rel = db.query(&plan).unwrap();
        assert_eq!(rel.rows.len(), 2);
        assert_eq!(rel.rows[0][0], Value::sym("ann"));
        assert_eq!(rel.rows[1][0], Value::sym("bob"));
    }

    #[test]
    fn null_semantics() {
        let mut db = db();
        db.insert("emp", vec![Value::sym("eve"), Value::Nil, Value::Nil])
            .unwrap();
        // NULL never joins.
        let join = Plan::Join {
            left: Box::new(Plan::Scan("emp".into())),
            right: Box::new(Plan::Scan("dept".into())),
            on: vec![(ColRef::new("emp.dept"), ColRef::new("dept.name"))],
        };
        assert_eq!(db.query(&join).unwrap().rows.len(), 4);
        // IS NULL / IS NOT NULL.
        let nulls = Plan::Select {
            input: Box::new(Plan::Scan("emp".into())),
            pred: Pred::IsNull(ColRef::new("dept"), false),
        };
        assert_eq!(db.query(&nulls).unwrap().rows.len(), 1);
        let not_nulls = Plan::Select {
            input: Box::new(Plan::Scan("emp".into())),
            pred: Pred::IsNull(ColRef::new("dept"), true),
        };
        assert_eq!(db.query(&not_nulls).unwrap().rows.len(), 4);
        // Comparisons with NULL are false.
        let cmp = Plan::Select {
            input: Box::new(Plan::Scan("emp".into())),
            pred: Pred::Cmp(
                CmpOp::Ne,
                Scalar::Col(ColRef::new("dept")),
                Scalar::Lit(Value::sym("eng")),
            ),
        };
        assert_eq!(
            db.query(&cmp).unwrap().rows.len(),
            2,
            "eve's NULL dept doesn't match <>"
        );
    }

    #[test]
    fn ambiguous_column_errors() {
        let db = db();
        let plan = Plan::Project {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Scan("emp".into())),
                right: Box::new(Plan::Scan("dept".into())),
                on: vec![],
            }),
            cols: vec![ColRef::new("name")],
        };
        let err = db.query(&plan).unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{}", err);
    }

    #[test]
    fn empty_relation_renders_header_only() {
        let mut db = Database::new();
        db.create_table(Schema::new("t", &["a"])).unwrap();
        let rel = db.query(&Plan::Scan("t".into())).unwrap();
        let text = rel.render();
        assert!(text.contains("t.a"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn limit_beyond_len_is_noop() {
        let db = db();
        let rel = db
            .query(&Plan::Limit {
                input: Box::new(Plan::Scan("emp".into())),
                n: 100,
            })
            .unwrap();
        assert_eq!(rel.rows.len(), 4);
    }

    #[test]
    fn project_can_reorder_and_duplicate() {
        let db = db();
        let rel = db
            .query(&Plan::Project {
                input: Box::new(Plan::Scan("dept".into())),
                cols: vec![
                    ColRef::new("city"),
                    ColRef::new("name"),
                    ColRef::new("city"),
                ],
            })
            .unwrap();
        assert_eq!(rel.cols, vec!["dept.city", "dept.name", "dept.city"]);
        assert_eq!(rel.rows[0].len(), 3);
    }

    #[test]
    fn render_produces_table() {
        let db = db();
        let rel = db.query(&Plan::Scan("dept".into())).unwrap();
        let text = rel.render();
        assert!(text.contains("dept.name"));
        assert!(text.contains("eng"));
    }
}
