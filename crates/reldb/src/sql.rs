//! A small SQL subset — just enough to run the paper's Figure 6 query
//! verbatim:
//!
//! ```sql
//! select COND-E.WME-TAG, COND-W.WME-TAG
//! from COND-E, COND-W
//! where COND-E.RULE-ID = COND-W.RULE-ID
//!   and COND-E.WME-TAG is not NULL
//!   and COND-W.WME-TAG is not NULL
//! group-by COND-E.WME-TAG
//! ```
//!
//! Supported: `SELECT cols|aggregates|COUNT(*)|* FROM t1, t2, … [WHERE
//! conjunctions/disjunctions of comparisons and IS [NOT] NULL]
//! [GROUP BY cols] [HAVING pred-over-aggregates]
//! [ORDER BY col [ASC|DESC], …] [LIMIT n]`. Both `GROUP BY` and the
//! paper's `group-by` spelling are accepted. Identifiers may contain `-`
//! (the paper's `COND-E.WME-TAG`). Qualified equality predicates between
//! two tables are compiled into hash joins; everything else filters after
//! the join.

use crate::algebra::{AggFun, CmpOp, ColRef, Plan, Pred, Scalar};
use crate::error::DbError;
use sorete_base::Value;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Star,
    Op(CmpOp),
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '$' | '#')
}

fn lex(src: &str) -> Result<Vec<Tok>, DbError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Op(CmpOp::Eq));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Op(CmpOp::Ne));
                i += 2;
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != '\'' {
                    s.push(chars[j]);
                    j += 1;
                }
                if j == chars.len() {
                    return Err(DbError::Sql("unterminated string literal".into()));
                }
                out.push(Tok::Str(s));
                i = j + 1;
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                if text.contains('.') {
                    out.push(Tok::Float(
                        text.parse()
                            .map_err(|_| DbError::Sql(format!("bad number `{}`", text)))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        text.parse()
                            .map_err(|_| DbError::Sql(format!("bad number `{}`", text)))?,
                    ));
                }
                i = j;
            }
            a if is_ident_char(a) => {
                let mut j = i;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                out.push(Tok::Ident(chars[i..j].iter().collect()));
                i = j;
            }
            other => return Err(DbError::Sql(format!("unexpected character `{}`", other))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

#[derive(Debug)]
enum SelectItem {
    All,
    Col(ColRef),
    Agg(AggFun, ColRef),
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, DbError> {
        Err(DbError::Sql(msg.into()))
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{}`", kw.to_uppercase()))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {:?}", other)),
        }
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, DbError> {
        let mut items = Vec::new();
        loop {
            if matches!(self.peek(), Some(Tok::Star)) {
                self.pos += 1;
                items.push(SelectItem::All);
            } else {
                let name = self.ident()?;
                let agg = match name.to_ascii_lowercase().as_str() {
                    "count" => Some(AggFun::Count),
                    "sum" => Some(AggFun::Sum),
                    "min" => Some(AggFun::Min),
                    "max" => Some(AggFun::Max),
                    "avg" => Some(AggFun::Avg),
                    _ => None,
                };
                if let (Some(f), Some(Tok::LParen)) = (agg, self.peek()) {
                    self.pos += 1;
                    let col = match self.next() {
                        Some(Tok::Ident(c)) => c,
                        Some(Tok::Star) => "*".to_string(),
                        other => return self.err(format!("bad aggregate argument {:?}", other)),
                    };
                    match self.next() {
                        Some(Tok::RParen) => {}
                        _ => return self.err("expected `)` after aggregate argument"),
                    }
                    items.push(SelectItem::Agg(f, ColRef::new(&col)));
                } else {
                    items.push(SelectItem::Col(ColRef::new(&name)));
                }
            }
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    // Predicate grammar: or := and (OR and)* ; and := prim (AND prim)* ;
    // prim := NOT prim | '(' or ')' | scalar op scalar | col IS [NOT] NULL.
    fn pred(&mut self) -> Result<Pred, DbError> {
        let mut parts = vec![self.and_pred()?];
        while self.eat_kw("or") {
            parts.push(self.and_pred()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Pred::Or(parts)
        })
    }

    fn and_pred(&mut self) -> Result<Pred, DbError> {
        let mut parts = vec![self.prim_pred()?];
        while self.eat_kw("and") {
            parts.push(self.prim_pred()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Pred::And(parts)
        })
    }

    fn prim_pred(&mut self) -> Result<Pred, DbError> {
        if self.eat_kw("not") {
            return Ok(Pred::Not(Box::new(self.prim_pred()?)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let p = self.pred()?;
            match self.next() {
                Some(Tok::RParen) => return Ok(p),
                _ => return self.err("expected `)`"),
            }
        }
        let left = self.scalar()?;
        // `IS [NOT] NULL`
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            if !self.eat_kw("null") {
                return self.err("expected NULL after IS [NOT]");
            }
            let Scalar::Col(c) = left else {
                return self.err("IS NULL applies to a column");
            };
            return Ok(Pred::IsNull(c, negated));
        }
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => return self.err(format!("expected comparison operator, found {:?}", other)),
        };
        let right = self.scalar()?;
        Ok(Pred::Cmp(op, left, right))
    }

    fn scalar(&mut self) -> Result<Scalar, DbError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Scalar::Lit(Value::Nil)),
            Some(Tok::Ident(s)) => {
                // Aggregate reference (in HAVING): `fun(col)` becomes a
                // column ref matching GroupBy's output column name.
                let is_agg = matches!(
                    s.to_ascii_lowercase().as_str(),
                    "count" | "sum" | "min" | "max" | "avg"
                );
                if is_agg && matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1;
                    let arg = match self.next() {
                        Some(Tok::Ident(c)) => c,
                        Some(Tok::Star) => "*".to_string(),
                        other => return self.err(format!("bad aggregate argument {:?}", other)),
                    };
                    match self.next() {
                        Some(Tok::RParen) => {}
                        _ => return self.err("expected `)` after aggregate argument"),
                    }
                    return Ok(Scalar::Col(ColRef(format!(
                        "{}({})",
                        s.to_ascii_lowercase(),
                        arg
                    ))));
                }
                Ok(Scalar::Col(ColRef(s)))
            }
            Some(Tok::Int(i)) => Ok(Scalar::Lit(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Scalar::Lit(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(Scalar::Lit(Value::sym(&s))),
            other => self.err(format!("expected a scalar, found {:?}", other)),
        }
    }
}

/// Parse a SQL-subset query into a [`Plan`].
pub fn parse_query(src: &str) -> Result<Plan, DbError> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
    };
    p.expect_kw("select")?;
    let items = p.select_items()?;
    p.expect_kw("from")?;
    let mut tables = vec![p.ident()?];
    while matches!(p.peek(), Some(Tok::Comma)) {
        p.pos += 1;
        tables.push(p.ident()?);
    }
    let mut where_pred = if p.eat_kw("where") {
        Some(p.pred()?)
    } else {
        None
    };

    // GROUP BY / group-by
    let mut group_cols: Vec<ColRef> = Vec::new();
    if p.eat_kw("group-by")
        || (p.at_kw("group") && {
            p.pos += 1;
            p.expect_kw("by")?;
            true
        })
    {
        group_cols.push(ColRef::new(&p.ident()?));
        while matches!(p.peek(), Some(Tok::Comma)) {
            p.pos += 1;
            group_cols.push(ColRef::new(&p.ident()?));
        }
    }

    // HAVING (applies to the grouped output)
    let having = if p.eat_kw("having") {
        Some(p.pred()?)
    } else {
        None
    };

    // ORDER BY
    let mut order: Vec<(ColRef, bool)> = Vec::new();
    if p.eat_kw("order-by")
        || (p.at_kw("order") && {
            p.pos += 1;
            p.expect_kw("by")?;
            true
        })
    {
        loop {
            let col = ColRef::new(&p.ident()?);
            let asc = if p.eat_kw("desc") {
                false
            } else {
                let _ = p.eat_kw("asc"); // explicit ASC is optional
                true
            };
            order.push((col, asc));
            if matches!(p.peek(), Some(Tok::Comma)) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }

    let limit = if p.eat_kw("limit") {
        match p.next() {
            Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
            _ => return p.err("expected a row count after LIMIT"),
        }
    } else {
        None
    };
    if p.peek().is_some() {
        return p.err("trailing tokens after query");
    }

    // ---- build the plan: joins from qualified equalities, then filters.
    let mut conjuncts: Vec<Pred> = Vec::new();
    if let Some(w) = where_pred.take() {
        flatten_and(w, &mut conjuncts);
    }

    let mut plan = Plan::Scan(tables[0].clone());
    let mut bound: Vec<String> = vec![tables[0].to_lowercase()];
    for t in &tables[1..] {
        let tl = t.to_lowercase();
        // Pull out equality conjuncts linking bound tables to `t`.
        let mut on: Vec<(ColRef, ColRef)> = Vec::new();
        conjuncts.retain(|c| {
            if let Pred::Cmp(CmpOp::Eq, Scalar::Col(a), Scalar::Col(b)) = c {
                let qa = qualifier(&a.0);
                let qb = qualifier(&b.0);
                if let (Some(qa), Some(qb)) = (qa, qb) {
                    if bound.contains(&qa) && qb == tl {
                        on.push((a.clone(), b.clone()));
                        return false;
                    }
                    if bound.contains(&qb) && qa == tl {
                        on.push((b.clone(), a.clone()));
                        return false;
                    }
                }
            }
            true
        });
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(Plan::Scan(t.clone())),
            on,
        };
        bound.push(tl);
    }
    if !conjuncts.is_empty() {
        let pred = if conjuncts.len() == 1 {
            conjuncts.pop().unwrap()
        } else {
            Pred::And(conjuncts)
        };
        plan = Plan::Select {
            input: Box::new(plan),
            pred,
        };
    }

    // Aggregates?
    let aggs: Vec<(AggFun, ColRef)> = items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Agg(f, c) => Some((*f, c.clone())),
            _ => None,
        })
        .collect();

    if !group_cols.is_empty() || !aggs.is_empty() {
        if aggs.is_empty() {
            // Figure-6 form: project the select list, then group.
            let proj: Vec<ColRef> = items
                .iter()
                .filter_map(|i| match i {
                    SelectItem::Col(c) => Some(c.clone()),
                    _ => None,
                })
                .collect();
            if !proj.is_empty() && !matches!(items[0], SelectItem::All) {
                plan = Plan::Project {
                    input: Box::new(plan),
                    cols: proj,
                };
            }
            plan = Plan::GroupBy {
                input: Box::new(plan),
                keys: group_cols,
                aggs: vec![],
            };
        } else {
            plan = Plan::GroupBy {
                input: Box::new(plan),
                keys: group_cols,
                aggs,
            };
        }
        if let Some(h) = having {
            plan = Plan::Select {
                input: Box::new(plan),
                pred: h,
            };
        }
        if !order.is_empty() {
            plan = Plan::OrderBy {
                input: Box::new(plan),
                keys: order,
            };
        }
    } else {
        if having.is_some() {
            return Err(DbError::Sql("HAVING requires GROUP BY".into()));
        }
        // Sort before projecting, so ORDER BY may reference non-selected
        // columns (standard SQL behaviour).
        if !order.is_empty() {
            plan = Plan::OrderBy {
                input: Box::new(plan),
                keys: order,
            };
        }
        if !matches!(items.as_slice(), [SelectItem::All]) {
            let proj: Vec<ColRef> = items
                .iter()
                .filter_map(|i| match i {
                    SelectItem::Col(c) => Some(c.clone()),
                    SelectItem::All => None,
                    SelectItem::Agg(..) => None,
                })
                .collect();
            plan = Plan::Project {
                input: Box::new(plan),
                cols: proj,
            };
        }
    }
    if let Some(n) = limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

fn flatten_and(p: Pred, out: &mut Vec<Pred>) {
    match p {
        Pred::And(parts) => {
            for q in parts {
                flatten_and(q, out);
            }
        }
        other => out.push(other),
    }
}

fn qualifier(name: &str) -> Option<String> {
    name.rsplit_once('.').map(|(q, _)| q.to_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::table::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new("emp", &["name", "dept", "sal"]))
            .unwrap();
        for (n, d, s) in [
            ("ann", "eng", 120),
            ("bob", "eng", 100),
            ("cat", "sales", 90),
            ("dan", "sales", 80),
        ] {
            db.insert("emp", vec![Value::sym(n), Value::sym(d), Value::Int(s)])
                .unwrap();
        }
        db.create_table(Schema::new("dept", &["name", "city"]))
            .unwrap();
        db.insert("dept", vec![Value::sym("eng"), Value::sym("nyc")])
            .unwrap();
        db.insert("dept", vec![Value::sym("sales"), Value::sym("sfo")])
            .unwrap();
        db
    }

    #[test]
    fn select_star() {
        let rel = db().sql("SELECT * FROM emp").unwrap();
        assert_eq!(rel.rows.len(), 4);
        assert_eq!(rel.cols.len(), 3);
    }

    #[test]
    fn where_filters() {
        let rel = db()
            .sql("SELECT name FROM emp WHERE sal > 90 AND dept = 'eng'")
            .unwrap();
        assert_eq!(rel.rows.len(), 2);
    }

    #[test]
    fn unquoted_symbols_are_columns_quoted_are_literals() {
        // dept = 'eng' compares to a literal; dept = name compares columns.
        let rel = db().sql("SELECT name FROM emp WHERE dept = name").unwrap();
        assert_eq!(rel.rows.len(), 0);
    }

    #[test]
    fn join_via_where_equality() {
        let rel = db()
            .sql("SELECT emp.name, dept.city FROM emp, dept WHERE emp.dept = dept.name")
            .unwrap();
        assert_eq!(rel.rows.len(), 4);
        assert_eq!(rel.cols, vec!["emp.name", "dept.city"]);
    }

    #[test]
    fn group_by_with_aggregates() {
        let rel = db()
            .sql("SELECT dept, count(name), avg(sal) FROM emp GROUP BY dept ORDER BY dept")
            .unwrap();
        assert_eq!(rel.rows.len(), 2);
        assert_eq!(rel.rows[0][1], Value::Int(2));
        assert_eq!(rel.rows[0][2], Value::Float(110.0));
    }

    #[test]
    fn figure6_style_group_by_without_aggregates() {
        let rel = db()
            .sql("select emp.name, emp.dept from emp where emp.sal is not NULL group-by emp.dept")
            .unwrap();
        assert_eq!(rel.cols[0], "group");
        assert_eq!(rel.rows.len(), 4);
        // Sorted by key: group 1 = eng rows, group 2 = sales rows.
        assert_eq!(rel.rows[0][0], Value::Int(1));
        assert_eq!(rel.rows[3][0], Value::Int(2));
    }

    #[test]
    fn is_null_and_or() {
        let mut db = db();
        db.insert("emp", vec![Value::sym("eve"), Value::Nil, Value::Int(10)])
            .unwrap();
        let rel = db
            .sql("SELECT name FROM emp WHERE dept IS NULL OR sal < 85")
            .unwrap();
        assert_eq!(rel.rows.len(), 2);
        let rel = db
            .sql("SELECT name FROM emp WHERE NOT (dept IS NULL)")
            .unwrap();
        assert_eq!(rel.rows.len(), 4);
    }

    #[test]
    fn order_and_limit() {
        let rel = db()
            .sql("SELECT name FROM emp ORDER BY sal DESC LIMIT 2")
            .unwrap();
        assert_eq!(rel.rows.len(), 2);
        assert_eq!(rel.rows[0][0], Value::sym("ann"));
    }

    #[test]
    fn hyphenated_identifiers() {
        let mut db = Database::new();
        db.create_table(Schema::new("COND-E", &["RULE-ID", "WME-TAG"]))
            .unwrap();
        db.insert("COND-E", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.insert("COND-E", vec![Value::Int(1), Value::Nil])
            .unwrap();
        let rel = db
            .sql("select COND-E.WME-TAG from COND-E where COND-E.WME-TAG is not NULL")
            .unwrap();
        assert_eq!(rel.rows.len(), 1);
    }

    #[test]
    fn count_star_and_having() {
        let rel = db()
            .sql("SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) >= 2 ORDER BY dept")
            .unwrap();
        assert_eq!(rel.rows.len(), 2);
        assert_eq!(rel.rows[0][1], Value::Int(2));
        let rel = db()
            .sql("SELECT dept, sum(sal) FROM emp GROUP BY dept HAVING sum(sal) > 200")
            .unwrap();
        assert_eq!(rel.rows.len(), 1);
        assert_eq!(rel.rows[0][0], Value::sym("eng"));
        // HAVING without GROUP BY is rejected.
        assert!(db()
            .sql("SELECT name FROM emp HAVING count(*) > 1")
            .is_err());
    }

    #[test]
    fn count_star_counts_null_rows_too() {
        let mut db = db();
        db.insert("emp", vec![Value::sym("eve"), Value::Nil, Value::Nil])
            .unwrap();
        let rel = db
            .sql("SELECT dept, count(*), count(sal) FROM emp GROUP BY dept ORDER BY dept")
            .unwrap();
        // The NULL-dept row forms its own group; count(*) counts it while
        // count(sal) skips its NULL salary.
        let null_group = rel.rows.iter().find(|r| r[0].is_nil()).expect("nil group");
        assert_eq!(null_group[1], Value::Int(1));
        assert_eq!(null_group[2], Value::Int(0));
    }

    #[test]
    fn parse_errors() {
        assert!(db().sql("SELEC * FROM emp").is_err());
        assert!(db().sql("SELECT * FROM emp WHERE").is_err());
        assert!(db().sql("SELECT * FROM emp LIMIT x").is_err());
        assert!(db().sql("SELECT * FROM emp trailing").is_err());
        assert!(db().sql("SELECT * FROM nosuch").is_err());
    }
}
