//! Pretty-printer: re-emits parseable source from the AST.
//!
//! `parse(print(ast)) == ast` is checked by property tests; the printer is
//! also what trace output and error messages use to show rules to users.

use crate::ast::*;
use sorete_base::Value;
use std::fmt::Write as _;

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for l in &p.literalizes {
        let _ = write!(out, "(literalize {}", l.class);
        for a in &l.attrs {
            let _ = write!(out, " {}", a);
        }
        out.push_str(")\n");
    }
    for r in &p.rules {
        out.push_str(&print_rule(r));
        out.push('\n');
    }
    out
}

/// Render one production.
pub fn print_rule(r: &Rule) -> String {
    let mut out = String::new();
    let _ = write!(out, "(p {}", r.name);
    for ce in &r.lhs {
        out.push_str("\n  ");
        out.push_str(&print_ce(ce));
    }
    if !r.scalar.is_empty() {
        out.push_str("\n  :scalar (");
        for (i, v) in r.scalar.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "<{}>", v);
        }
        out.push(')');
    }
    for t in &r.tests {
        out.push_str("\n  :test (");
        out.push_str(&print_expr(t));
        out.push(')');
    }
    out.push_str("\n  -->");
    for a in &r.rhs {
        out.push_str("\n  ");
        out.push_str(&print_action(a));
    }
    out.push(')');
    out
}

/// Render a condition element.
pub fn print_ce(ce: &CondElem) -> String {
    let mut out = String::new();
    if ce.negated {
        out.push('-');
    }
    if ce.elem_var.is_some() {
        out.push_str("{ ");
    }
    let (open, close) = if ce.set_oriented {
        ('[', ']')
    } else {
        ('(', ')')
    };
    out.push(open);
    let _ = write!(out, "{}", ce.class);
    for t in &ce.tests {
        let _ = write!(out, " ^{}", t.attr);
        for term in &t.terms {
            out.push(' ');
            out.push_str(&print_term(term));
        }
    }
    out.push(close);
    if let Some(ev) = ce.elem_var {
        let _ = write!(out, " <{}> }}", ev);
    }
    out
}

fn print_term(t: &TestTerm) -> String {
    match t {
        TestTerm::Pred(Pred::Eq, op) => print_operand(op),
        TestTerm::Pred(p, op) => format!("{} {}", pred_text(*p), print_operand(op)),
        TestTerm::AnyOf(vals) => {
            let mut s = String::from("<<");
            for v in vals {
                let _ = write!(s, " {}", print_value(v));
            }
            s.push_str(" >>");
            s
        }
        TestTerm::Conj(terms) => {
            let mut s = String::from("{");
            for t in terms {
                s.push(' ');
                s.push_str(&print_term(t));
            }
            s.push_str(" }");
            s
        }
    }
}

fn pred_text(p: Pred) -> &'static str {
    match p {
        Pred::Eq => "=",
        Pred::Ne => "<>",
        Pred::Lt => "<",
        Pred::Le => "<=",
        Pred::Gt => ">",
        Pred::Ge => ">=",
    }
}

fn print_operand(op: &Operand) -> String {
    match op {
        Operand::Const(v) => print_value(v),
        Operand::Var(v) => format!("<{}>", v),
    }
}

fn print_value(v: &Value) -> String {
    v.to_string()
}

/// Render an expression (fully parenthesised, so precedence survives the
/// round trip).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => print_value(v),
        Expr::Var(v) => format!("<{}>", v),
        Expr::Agg(op, var) => format!("({} <{}>)", op.name(), var),
        Expr::Bin(op, l, r) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "mod",
            };
            format!("({} {} {})", print_expr(l), sym, print_expr(r))
        }
        Expr::Cmp(p, l, r) => {
            format!("({} {} {})", print_expr(l), pred_text(*p), print_expr(r))
        }
        Expr::And(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("({})", inner.join(" and "))
        }
        Expr::Or(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("({})", inner.join(" or "))
        }
        Expr::Not(inner) => format!("(not {})", print_expr(inner)),
    }
}

/// Render one RHS action.
pub fn print_action(a: &Action) -> String {
    match a {
        Action::Make { class, slots } => {
            let mut s = format!("(make {}", class);
            push_slots(&mut s, slots);
            s.push(')');
            s
        }
        Action::Remove(t) => format!("(remove {})", print_target(t)),
        Action::Modify { target, slots } => {
            let mut s = format!("(modify {}", print_target(target));
            push_slots(&mut s, slots);
            s.push(')');
            s
        }
        Action::SetRemove(v) => format!("(set-remove <{}>)", v),
        Action::SetModify { var, slots } => {
            let mut s = format!("(set-modify <{}>", var);
            push_slots(&mut s, slots);
            s.push(')');
            s
        }
        Action::Write(parts) => {
            let mut s = String::from("(write");
            for p in parts {
                let _ = write!(s, " {}", print_expr(p));
            }
            s.push(')');
            s
        }
        Action::Bind(v, e) => format!("(bind <{}> {})", v, print_expr(e)),
        Action::Halt => "(halt)".to_string(),
        Action::ForEach { var, order, body } => {
            let mut s = format!("(foreach <{}>", var);
            match order {
                IterOrder::Default => {}
                IterOrder::Ascending => s.push_str(" ascending"),
                IterOrder::Descending => s.push_str(" descending"),
            }
            for a in body {
                let _ = write!(s, " {}", print_action(a));
            }
            s.push(')');
            s
        }
        Action::If { cond, then, els } => {
            let mut s = format!("(if {}", print_expr(cond));
            for a in then {
                let _ = write!(s, " {}", print_action(a));
            }
            if !els.is_empty() {
                s.push_str(" else");
                for a in els {
                    let _ = write!(s, " {}", print_action(a));
                }
            }
            s.push(')');
            s
        }
    }
}

fn print_target(t: &RhsTarget) -> String {
    match t {
        RhsTarget::Var(v) => format!("<{}>", v),
        RhsTarget::Idx(i) => i.to_string(),
    }
}

fn push_slots(s: &mut String, slots: &[(sorete_base::Symbol, Expr)]) {
    for (attr, e) in slots {
        let _ = write!(s, " ^{} {}", attr, print_expr(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn roundtrip(src: &str) {
        let ast1 = parse_rule(src).unwrap();
        let printed = print_rule(&ast1);
        let ast2 =
            parse_rule(&printed).unwrap_or_else(|e| panic!("reparse failed: {}\n{}", e, printed));
        assert_eq!(ast1, ast2, "printed form:\n{}", printed);
    }

    #[test]
    fn roundtrips_paper_rules() {
        roundtrip(
            "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
              (write Player-A: <n1> Player-B: <n2>))",
        );
        roundtrip(
            "(p SwitchTeams
               { [player ^team A] <ATeam> }
               { [player ^team B] <BTeam> }
               :test ((count <ATeam>) == (count <BTeam>))
               (set-modify <ATeam> ^team B)
               (set-modify <BTeam> ^team A))",
        );
        roundtrip(
            "(p RemoveDups
               { [player ^name <n> ^team <t>] <P> }
               :scalar (<n> <t>)
               :test ((count <P>) > 1)
               (bind <First> true)
               (foreach <P> descending
                 (if (<First> == true) (bind <First> false) else (remove <P>))))",
        );
        roundtrip(
            "(p GroupByTeam [player ^team <t> ^name <n>]
               (foreach <t> (write <t>) (foreach <n> (write <n>))))",
        );
    }

    #[test]
    fn roundtrips_predicates() {
        roundtrip(
            "(p sel (emp ^salary > 10000 ^dept << sales eng >> ^age { > 18 <= 65 } ^boss <> nil)
              (write ok))",
        );
    }

    #[test]
    fn roundtrips_negation_and_arith() {
        roundtrip("(p r (a ^x <x>) -(b ^x <x>) (bind <y> (1 + <x> * 2)) (make b ^x <y>))");
    }

    #[test]
    fn prints_whole_programs() {
        use crate::parser::parse_program;
        let src = "(literalize player name team)
            (p r1 (player ^team A) (halt))
            (p r2 [player ^team B] (write done))";
        let prog1 = parse_program(src).unwrap();
        let printed = print_program(&prog1);
        let prog2 = parse_program(&printed).unwrap();
        assert_eq!(prog1, prog2, "{}", printed);
        assert!(printed.contains("(literalize player name team)"));
    }

    #[test]
    fn roundtrips_logic() {
        roundtrip("(p r [a ^x <x>] :test ((count <x>) > 2 and (count <x>) < 9) (halt))");
        roundtrip("(p r [a ^x <x>] :test (not ((count <x>) == 3)) (halt))");
    }
}
