//! Expression evaluation, shared by the S-node (`:test`) and the RHS
//! interpreter.

use crate::ast::{bool_value, truthy, AggOp, BinOp, Expr};
use sorete_base::{Symbol, Value};
use std::fmt;

/// Evaluation error (type errors, unbound variables, divide by zero).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError {
    /// Explanation.
    pub message: String,
}

impl EvalError {
    /// Build from a message.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Name resolution for [`eval`]: the caller supplies variable values and
/// (pre-computed) aggregate values.
pub trait Env {
    /// Value of a variable, if bound in this context.
    fn var(&self, v: Symbol) -> Option<Value>;
    /// Value of `(op <v>)`, if the rule declares that aggregate.
    fn agg(&self, op: AggOp, var: Symbol) -> Option<Value>;
}

/// An [`Env`] backed by two closures — convenient for matchers and tests.
pub struct FnEnv<V, A>
where
    V: Fn(Symbol) -> Option<Value>,
    A: Fn(AggOp, Symbol) -> Option<Value>,
{
    /// Variable lookup.
    pub vars: V,
    /// Aggregate lookup.
    pub aggs: A,
}

impl<V, A> Env for FnEnv<V, A>
where
    V: Fn(Symbol) -> Option<Value>,
    A: Fn(AggOp, Symbol) -> Option<Value>,
{
    fn var(&self, v: Symbol) -> Option<Value> {
        (self.vars)(v)
    }
    fn agg(&self, op: AggOp, var: Symbol) -> Option<Value> {
        (self.aggs)(op, var)
    }
}

/// Evaluate an expression.
pub fn eval(expr: &Expr, env: &dyn Env) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(*v),
        Expr::Var(v) => env
            .var(*v)
            .ok_or_else(|| EvalError::new(format!("unbound variable <{}>", v))),
        Expr::Agg(op, var) => env.agg(*op, *var).ok_or_else(|| {
            EvalError::new(format!("aggregate ({} <{}>) unavailable", op.name(), var))
        }),
        Expr::Bin(op, l, r) => {
            let (lv, rv) = (eval(l, env)?, eval(r, env)?);
            let result = match op {
                BinOp::Add => lv.add(&rv),
                BinOp::Sub => lv.sub(&rv),
                BinOp::Mul => lv.mul(&rv),
                BinOp::Div => lv.div(&rv),
                BinOp::Mod => lv.modulo(&rv),
            };
            result.ok_or_else(|| {
                EvalError::new(format!(
                    "arithmetic on non-numeric values {} and {}",
                    lv, rv
                ))
            })
        }
        Expr::Cmp(pred, l, r) => {
            let (lv, rv) = (eval(l, env)?, eval(r, env)?);
            Ok(bool_value(pred.apply(&lv, &rv)))
        }
        Expr::And(parts) => {
            for p in parts {
                if !truthy(&eval(p, env)?) {
                    return Ok(bool_value(false));
                }
            }
            Ok(bool_value(true))
        }
        Expr::Or(parts) => {
            for p in parts {
                if truthy(&eval(p, env)?) {
                    return Ok(bool_value(true));
                }
            }
            Ok(bool_value(false))
        }
        Expr::Not(inner) => Ok(bool_value(!truthy(&eval(inner, env)?))),
    }
}

/// Evaluate an expression and coerce to a boolean (used by `:test` / `if`).
pub fn eval_truthy(expr: &Expr, env: &dyn Env) -> Result<bool, EvalError> {
    Ok(truthy(&eval(expr, env)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pred;

    fn env<'a>(pairs: &'a [(&'a str, Value)]) -> impl Env + 'a {
        FnEnv {
            vars: move |v: Symbol| {
                pairs
                    .iter()
                    .find(|(name, _)| Symbol::new(name) == v)
                    .map(|(_, val)| *val)
            },
            aggs: |op: AggOp, _| {
                if op == AggOp::Count {
                    Some(Value::Int(3))
                } else {
                    None
                }
            },
        }
    }

    #[test]
    fn arithmetic_and_vars() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Var(Symbol::new("x"))),
            Box::new(Expr::Const(Value::Int(2))),
        );
        assert_eq!(
            eval(&e, &env(&[("x", Value::Int(40))])).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn comparison_yields_bool_symbols() {
        let e = Expr::Cmp(
            Pred::Gt,
            Box::new(Expr::Agg(AggOp::Count, Symbol::new("P"))),
            Box::new(Expr::Const(Value::Int(1))),
        );
        assert_eq!(eval(&e, &env(&[])).unwrap(), Value::sym("true"));
        assert!(eval_truthy(&e, &env(&[])).unwrap());
    }

    #[test]
    fn logic_short_circuits() {
        // `false and (1/0)` — the division must never run.
        let boom = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::Const(Value::Int(1))),
            Box::new(Expr::Const(Value::Int(0))),
        );
        let e = Expr::And(vec![Expr::Const(Value::sym("false")), boom.clone()]);
        assert_eq!(eval(&e, &env(&[])).unwrap(), Value::sym("false"));
        let e = Expr::Or(vec![Expr::Const(Value::sym("true")), boom]);
        assert_eq!(eval(&e, &env(&[])).unwrap(), Value::sym("true"));
    }

    #[test]
    fn errors() {
        let unbound = Expr::Var(Symbol::new("missing"));
        assert!(eval(&unbound, &env(&[])).is_err());
        let bad = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Const(Value::sym("a"))),
            Box::new(Expr::Const(Value::Int(2))),
        );
        assert!(eval(&bad, &env(&[])).is_err());
        let div0 = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::Const(Value::Int(1))),
            Box::new(Expr::Const(Value::Int(0))),
        );
        assert!(eval(&div0, &env(&[])).is_err());
    }

    #[test]
    fn not_inverts() {
        let e = Expr::Not(Box::new(Expr::Const(Value::Nil)));
        assert_eq!(eval(&e, &env(&[])).unwrap(), Value::sym("true"));
    }
}
