//! Tokenizer for the rule language.
//!
//! Lexical notes (matching OPS5 conventions plus the paper's extensions):
//!
//! - `;` starts a comment that runs to end of line;
//! - `,` is whitespace (the paper writes `(write Player A: <n>, ...)`);
//! - `<name>` is a pattern variable; `<` / `<=` / `<>` / `<<` are operators
//!   (disambiguated by look-ahead);
//! - `-` immediately before `(` or `[` or `{` is CE negation; otherwise it
//!   may begin a number or a symbol;
//! - `^attr` introduces an attribute;
//! - `:scalar` / `:test` are clause keywords;
//! - `-->` separates LHS from RHS (optional in the paper's figures).

use std::fmt;

/// A lexical token with its source offset (byte index, for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind + payload.
    pub kind: TokKind,
    /// Byte offset in the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `-` before an opening bracket: CE negation.
    Negation,
    /// `-->`
    Arrow,
    /// `^attr`
    Attr(String),
    /// `<name>`
    Var(String),
    /// `:keyword` (e.g. `scalar`, `test`)
    ClauseKw(String),
    /// Bare symbol.
    Sym(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `=` or `==`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    DblLt,
    /// `>>`
    DblGt,
    /// `+`
    Plus,
    /// `-` in operator position (expressions).
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::LParen => f.write_str("("),
            TokKind::RParen => f.write_str(")"),
            TokKind::LBracket => f.write_str("["),
            TokKind::RBracket => f.write_str("]"),
            TokKind::LBrace => f.write_str("{"),
            TokKind::RBrace => f.write_str("}"),
            TokKind::Negation => f.write_str("-"),
            TokKind::Arrow => f.write_str("-->"),
            TokKind::Attr(a) => write!(f, "^{}", a),
            TokKind::Var(v) => write!(f, "<{}>", v),
            TokKind::ClauseKw(k) => write!(f, ":{}", k),
            TokKind::Sym(s) => f.write_str(s),
            TokKind::Int(i) => write!(f, "{}", i),
            TokKind::Float(x) => write!(f, "{}", x),
            TokKind::Eq => f.write_str("="),
            TokKind::Ne => f.write_str("<>"),
            TokKind::Lt => f.write_str("<"),
            TokKind::Le => f.write_str("<="),
            TokKind::Gt => f.write_str(">"),
            TokKind::Ge => f.write_str(">="),
            TokKind::DblLt => f.write_str("<<"),
            TokKind::DblGt => f.write_str(">>"),
            TokKind::Plus => f.write_str("+"),
            TokKind::Minus => f.write_str("-"),
            TokKind::Star => f.write_str("*"),
            TokKind::Slash => f.write_str("/"),
        }
    }
}

/// A tokenization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_sym_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '!' | '?' | ':' | '$' | '&' | '@' | '#')
}

fn is_var_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenize `src`.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr) => {
            out.push(Token {
                kind: $kind,
                offset: i,
                line,
            })
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ch if ch.is_whitespace() || ch == ',' => {
                i += 1;
            }
            ';' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(TokKind::LParen);
                i += 1;
            }
            ')' => {
                push!(TokKind::RParen);
                i += 1;
            }
            '[' => {
                push!(TokKind::LBracket);
                i += 1;
            }
            ']' => {
                push!(TokKind::RBracket);
                i += 1;
            }
            '{' => {
                push!(TokKind::LBrace);
                i += 1;
            }
            '}' => {
                push!(TokKind::RBrace);
                i += 1;
            }
            '^' => {
                let start = i + 1;
                let mut j = start;
                while j < n && is_sym_char(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        message: "`^` must be followed by an attribute name".into(),
                        line,
                    });
                }
                push!(TokKind::Attr(bytes[start..j].iter().collect()));
                i = j;
            }
            ':' => {
                let start = i + 1;
                let mut j = start;
                while j < n && bytes[j].is_alphanumeric() {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        message: "`:` must be followed by a clause keyword".into(),
                        line,
                    });
                }
                push!(TokKind::ClauseKw(bytes[start..j].iter().collect()));
                i = j;
            }
            '<' => {
                // <=  <>  <<  <var>  or bare <
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(TokKind::Le);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '>' {
                    push!(TokKind::Ne);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '<' {
                    push!(TokKind::DblLt);
                    i += 2;
                } else {
                    // Look ahead for `<name>`.
                    let start = i + 1;
                    let mut j = start;
                    while j < n && is_var_char(bytes[j]) {
                        j += 1;
                    }
                    if j > start && j < n && bytes[j] == '>' {
                        push!(TokKind::Var(bytes[start..j].iter().collect()));
                        i = j + 1;
                    } else {
                        push!(TokKind::Lt);
                        i += 1;
                    }
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(TokKind::Ge);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '>' {
                    push!(TokKind::DblGt);
                    i += 2;
                } else {
                    push!(TokKind::Gt);
                    i += 1;
                }
            }
            '=' => {
                // Both `=` and `==` denote equality.
                push!(TokKind::Eq);
                i += if i + 1 < n && bytes[i + 1] == '=' {
                    2
                } else {
                    1
                };
            }
            '!' if i + 1 < n && bytes[i + 1] == '=' => {
                push!(TokKind::Ne);
                i += 2;
            }
            '+' => {
                push!(TokKind::Plus);
                i += 1;
            }
            '*' => {
                push!(TokKind::Star);
                i += 1;
            }
            '/' => {
                push!(TokKind::Slash);
                i += 1;
            }
            '-' => {
                // `-->`, negation of a CE, a negative number, or minus.
                if i + 2 < n && bytes[i + 1] == '-' && bytes[i + 2] == '>' {
                    push!(TokKind::Arrow);
                    i += 3;
                } else if i + 1 < n && matches!(bytes[i + 1], '(' | '[' | '{') {
                    push!(TokKind::Negation);
                    i += 1;
                } else if i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    let (tok, j) = lex_number(&bytes, i);
                    push!(tok);
                    i = j;
                } else {
                    push!(TokKind::Minus);
                    i += 1;
                }
            }
            d if d.is_ascii_digit() => {
                let (tok, j) = lex_number(&bytes, i);
                push!(tok);
                i = j;
            }
            s if is_sym_char(s) => {
                let start = i;
                let mut j = i;
                while j < n && is_sym_char(bytes[j]) {
                    j += 1;
                }
                // Keywords like `mod`, `and`, `or` stay symbols here; the
                // parser treats them as operators contextually.
                let word: String = bytes[start..j].iter().collect();
                push!(TokKind::Sym(word));
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other),
                    line,
                });
            }
        }
    }
    Ok(out)
}

/// Lex a (possibly negative) number starting at `i`; returns the token and
/// the index just past it. If the "number" continues with symbol characters
/// (e.g. `2nd`), the whole word is a symbol, as in OPS5.
fn lex_number(bytes: &[char], i: usize) -> (TokKind, usize) {
    let n = bytes.len();
    let start = i;
    let mut j = i;
    if bytes[j] == '-' {
        j += 1;
    }
    while j < n && bytes[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_float = false;
    if j + 1 < n && bytes[j] == '.' && bytes[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < n && bytes[j].is_ascii_digit() {
            j += 1;
        }
    }
    // Trailing symbol characters make the whole word symbolic.
    if j < n && is_sym_char(bytes[j]) && bytes[j] != '.' {
        let mut k = j;
        while k < n && is_sym_char(bytes[k]) {
            k += 1;
        }
        return (TokKind::Sym(bytes[start..k].iter().collect()), k);
    }
    let text: String = bytes[start..j].iter().collect();
    if is_float {
        (TokKind::Float(text.parse().unwrap()), j)
    } else {
        (TokKind::Int(text.parse().unwrap()), j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_rule_shape() {
        let ks = kinds("(p compete (player ^name <n> ^team A))");
        assert_eq!(
            ks,
            vec![
                TokKind::LParen,
                TokKind::Sym("p".into()),
                TokKind::Sym("compete".into()),
                TokKind::LParen,
                TokKind::Sym("player".into()),
                TokKind::Attr("name".into()),
                TokKind::Var("n".into()),
                TokKind::Attr("team".into()),
                TokKind::Sym("A".into()),
                TokKind::RParen,
                TokKind::RParen,
            ]
        );
    }

    #[test]
    fn var_vs_comparison_operators() {
        assert_eq!(kinds("<n>"), vec![TokKind::Var("n".into())]);
        assert_eq!(kinds("<="), vec![TokKind::Le]);
        assert_eq!(kinds("<>"), vec![TokKind::Ne]);
        assert_eq!(
            kinds("<<a b>>"),
            vec![
                TokKind::DblLt,
                TokKind::Sym("a".into()),
                TokKind::Sym("b".into()),
                TokKind::DblGt
            ]
        );
        assert_eq!(kinds("< 5"), vec![TokKind::Lt, TokKind::Int(5)]);
        // `<x` with no closing `>` is a bare less-than followed by a symbol.
        assert_eq!(kinds("<x "), vec![TokKind::Lt, TokKind::Sym("x".into())]);
    }

    #[test]
    fn negation_vs_minus_vs_arrow() {
        assert_eq!(kinds("-->"), vec![TokKind::Arrow]);
        assert_eq!(
            kinds("-(player)"),
            vec![
                TokKind::Negation,
                TokKind::LParen,
                TokKind::Sym("player".into()),
                TokKind::RParen
            ]
        );
        assert_eq!(kinds("-5"), vec![TokKind::Int(-5)]);
        assert_eq!(
            kinds("a - b"),
            vec![
                TokKind::Sym("a".into()),
                TokKind::Minus,
                TokKind::Sym("b".into())
            ]
        );
    }

    #[test]
    fn numbers_and_symbols() {
        assert_eq!(kinds("42"), vec![TokKind::Int(42)]);
        assert_eq!(kinds("-4.25"), vec![TokKind::Float(-4.25)]);
        assert_eq!(kinds("3rd"), vec![TokKind::Sym("3rd".into())]);
        assert_eq!(kinds("team-A"), vec![TokKind::Sym("team-A".into())]);
    }

    #[test]
    fn comments_and_commas_skipped() {
        assert_eq!(
            kinds("a, b ; trailing comment\n c"),
            vec![
                TokKind::Sym("a".into()),
                TokKind::Sym("b".into()),
                TokKind::Sym("c".into())
            ]
        );
    }

    #[test]
    fn clause_keywords_and_attrs() {
        assert_eq!(kinds(":scalar"), vec![TokKind::ClauseKw("scalar".into())]);
        assert_eq!(kinds("^team"), vec![TokKind::Attr("team".into())]);
    }

    #[test]
    fn eq_forms() {
        assert_eq!(kinds("="), vec![TokKind::Eq]);
        assert_eq!(kinds("=="), vec![TokKind::Eq]);
        assert_eq!(kinds("!="), vec![TokKind::Ne]);
    }

    #[test]
    fn line_numbers_in_errors() {
        let err = tokenize("a\nb\n  %").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn braces_for_element_vars() {
        assert_eq!(
            kinds("{ [player] <P> }"),
            vec![
                TokKind::LBrace,
                TokKind::LBracket,
                TokKind::Sym("player".into()),
                TokKind::RBracket,
                TokKind::Var("P".into()),
                TokKind::RBrace
            ]
        );
    }
}
