//! Abstract syntax of the rule language.
//!
//! The language is the OPS5 subset the paper assumes, plus every
//! set-oriented construct the paper introduces:
//!
//! - set-oriented condition elements written `[class ...]` (§4.1);
//! - element-variable binding `{ CE <Var> }`;
//! - the `:scalar (<v> ...)` clause (§4.1);
//! - the `:test (expr)` clause with LHS aggregate operators (§4.2);
//! - RHS `set-modify`, `set-remove`, `foreach` (with `ascending` /
//!   `descending` / default order), `if/else`, and `bind` (§6).

use sorete_base::{Symbol, Value};

/// A whole program: `literalize` declarations plus productions.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Class declarations.
    pub literalizes: Vec<Literalize>,
    /// Productions in source order.
    pub rules: Vec<Rule>,
}

/// `(literalize class attr...)` — declares a WME class and its attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literalize {
    /// Class name.
    pub class: Symbol,
    /// Declared attributes.
    pub attrs: Vec<Symbol>,
}

/// A production: `(p name LHS [:scalar ...] [:test ...] [-->] RHS)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Rule name.
    pub name: Symbol,
    /// Condition elements in order.
    pub lhs: Vec<CondElem>,
    /// Pattern variables forced scalar by a `:scalar` clause.
    pub scalar: Vec<Symbol>,
    /// `:test` expressions (conjoined).
    pub tests: Vec<Expr>,
    /// Right-hand-side actions.
    pub rhs: Vec<Action>,
}

/// One condition element.
#[derive(Clone, Debug, PartialEq)]
pub struct CondElem {
    /// WME class matched.
    pub class: Symbol,
    /// `-(...)`: negated CE (absence test).
    pub negated: bool,
    /// `[...]`: set-oriented CE — all consistent matches join one
    /// instantiation instead of multiplying instantiations.
    pub set_oriented: bool,
    /// `{ CE <Var> }` element variable bound to the matched WME(s).
    pub elem_var: Option<Symbol>,
    /// Attribute tests in source order.
    pub tests: Vec<AttrTest>,
}

/// Tests applied to one attribute of a CE: `^attr term term ...`
/// (multiple terms conjoin, as in OPS5 `{ ... }` groups).
#[derive(Clone, Debug, PartialEq)]
pub struct AttrTest {
    /// The attribute.
    pub attr: Symbol,
    /// Conjoined test terms.
    pub terms: Vec<TestTerm>,
}

/// A single attribute test term.
#[derive(Clone, Debug, PartialEq)]
pub enum TestTerm {
    /// `pred operand`, e.g. `<n>`, `> 5`, `<> nil`.
    Pred(Pred, Operand),
    /// `<< v1 v2 ... >>` — matches any listed constant.
    AnyOf(Vec<Value>),
    /// `{ t1 t2 ... }` — conjunction group.
    Conj(Vec<TestTerm>),
}

/// Comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `=` (implicit when a bare constant/variable is written).
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Pred {
    /// Apply the predicate to two values. Ordered predicates require both
    /// sides comparable (numbers with numbers, symbols with symbols);
    /// mismatched kinds fail the test rather than erroring, as OPS5 does.
    pub fn apply(self, left: &Value, right: &Value) -> bool {
        match self {
            Pred::Eq => left == right,
            Pred::Ne => left != right,
            _ => {
                let comparable = matches!(
                    (left, right),
                    (
                        Value::Int(_) | Value::Float(_),
                        Value::Int(_) | Value::Float(_)
                    ) | (Value::Sym(_), Value::Sym(_))
                );
                if !comparable {
                    return false;
                }
                let ord = left.cmp(right);
                match self {
                    Pred::Lt => ord.is_lt(),
                    Pred::Le => ord.is_le(),
                    Pred::Gt => ord.is_gt(),
                    Pred::Ge => ord.is_ge(),
                    Pred::Eq | Pred::Ne => unreachable!(),
                }
            }
        }
    }

    /// The predicate with sides swapped (`a < b` ⇔ `b > a`), used when a
    /// join test is evaluated from the other operand's point of view.
    pub fn flipped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Lt => Pred::Gt,
            Pred::Le => Pred::Ge,
            Pred::Gt => Pred::Lt,
            Pred::Ge => Pred::Le,
        }
    }
}

/// Right operand of an attribute test.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// A constant.
    Const(Value),
    /// A pattern variable `<v>`.
    Var(Symbol),
}

/// LHS aggregate operators (§4.2) — "the standard ones from SQL".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Cardinality. Over an element variable: number of matched WMEs.
    /// Over a set-oriented PV: number of distinct values in its domain.
    Count,
    /// Sum of occurrences (bag semantics).
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Mean of occurrences (bag semantics).
    Avg,
}

impl AggOp {
    /// Keyword spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Avg => "avg",
        }
    }

    /// Parse a keyword spelling.
    pub fn from_name(s: &str) -> Option<AggOp> {
        Some(match s {
            "count" => AggOp::Count,
            "sum" => AggOp::Sum,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            "avg" => AggOp::Avg,
            _ => return None,
        })
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
}

/// Expressions, used in `:test` clauses and RHS value positions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal.
    Const(Value),
    /// A variable reference `<v>` (pattern variable, element variable, or
    /// RHS `bind` variable).
    Var(Symbol),
    /// `(count <v>)` etc. — aggregate over a set-oriented PV or element var.
    Agg(AggOp, Symbol),
    /// Arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison; evaluates to the symbol `true` or `false`.
    Cmp(Pred, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Vec<Expr>),
    /// Logical disjunction.
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

/// `foreach` iteration order (§6: "ascending, descending, or default
/// order"; default = conflict-set/recency order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IterOrder {
    /// Conflict-set order: most recent first.
    Default,
    /// Ascending by value (by time tag for element variables).
    Ascending,
    /// Descending by value (by time tag for element variables).
    Descending,
}

/// Target of `remove` / `modify`: an element variable or a 1-based CE index
/// (classic OPS5 style).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RhsTarget {
    /// `<Elem>` element variable.
    Var(Symbol),
    /// `(remove 1)` — the WME matched by the i-th CE (1-based).
    Idx(usize),
}

/// RHS actions.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// `(make class ^attr expr ...)`
    Make {
        /// Class of the created WME.
        class: Symbol,
        /// Slot initialisers.
        slots: Vec<(Symbol, Expr)>,
    },
    /// `(remove <elem>)` or `(remove 2)` — scalar removal.
    Remove(RhsTarget),
    /// `(modify <elem> ^attr expr ...)` — scalar modify (remove + re-make
    /// with a fresh time tag, as in OPS5).
    Modify {
        /// The WME to modify.
        target: RhsTarget,
        /// Slot updates.
        slots: Vec<(Symbol, Expr)>,
    },
    /// `(set-remove <elem>)` — remove every WME the set-oriented element
    /// variable matches in the current (sub)instantiation (§6).
    SetRemove(Symbol),
    /// `(set-modify <elem> ^attr expr ...)` — modify every such WME (§6).
    SetModify {
        /// The set-oriented element variable.
        var: Symbol,
        /// Slot updates.
        slots: Vec<(Symbol, Expr)>,
    },
    /// `(write expr ...)`
    Write(Vec<Expr>),
    /// `(bind <v> expr)` — RHS local binding.
    Bind(Symbol, Expr),
    /// `(halt)`
    Halt,
    /// `(foreach <v> [ascending|descending] action ...)` (§6.1/§6.2).
    ForEach {
        /// Iterator variable: set-oriented PV or element variable.
        var: Symbol,
        /// Iteration order.
        order: IterOrder,
        /// Body executed once per distinct value / WME.
        body: Vec<Action>,
    },
    /// `(if expr action... [else action...])`.
    If {
        /// Condition (truthy = anything but `nil` / the symbol `false`).
        cond: Expr,
        /// Then-branch.
        then: Vec<Action>,
        /// Else-branch.
        els: Vec<Action>,
    },
}

/// Truthiness used by `:test` and `(if ...)`: everything is true except
/// `nil` and the symbol `false`.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Nil => false,
        Value::Sym(s) => s.as_str() != "false",
        _ => true,
    }
}

/// The boolean symbols comparisons evaluate to.
pub fn bool_value(b: bool) -> Value {
    if b {
        Value::sym("true")
    } else {
        Value::sym("false")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_apply_numeric() {
        assert!(Pred::Lt.apply(&Value::Int(1), &Value::Float(1.5)));
        assert!(Pred::Ge.apply(&Value::Int(2), &Value::Int(2)));
        assert!(!Pred::Gt.apply(&Value::Int(2), &Value::Int(2)));
        assert!(Pred::Ne.apply(&Value::sym("a"), &Value::sym("b")));
    }

    #[test]
    fn ordered_pred_on_mixed_kinds_fails_not_errors() {
        assert!(!Pred::Lt.apply(&Value::sym("a"), &Value::Int(1)));
        assert!(!Pred::Gt.apply(&Value::sym("a"), &Value::Int(1)));
        // Equality across kinds is just false.
        assert!(!Pred::Eq.apply(&Value::sym("a"), &Value::Int(1)));
        assert!(Pred::Ne.apply(&Value::sym("a"), &Value::Int(1)));
    }

    #[test]
    fn pred_flip() {
        assert_eq!(Pred::Lt.flipped(), Pred::Gt);
        assert_eq!(Pred::Le.flipped(), Pred::Ge);
        assert_eq!(Pred::Eq.flipped(), Pred::Eq);
        for p in [Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge] {
            // Flipping twice is the identity.
            assert_eq!(p.flipped().flipped(), p);
            // a p b  ⇔  b flip(p) a
            let (a, b) = (Value::Int(3), Value::Int(7));
            assert_eq!(p.apply(&a, &b), p.flipped().apply(&b, &a));
        }
    }

    #[test]
    fn agg_names_roundtrip() {
        for op in [AggOp::Count, AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Avg] {
            assert_eq!(AggOp::from_name(op.name()), Some(op));
        }
        assert_eq!(AggOp::from_name("median"), None);
    }

    #[test]
    fn truthiness() {
        assert!(!truthy(&Value::Nil));
        assert!(!truthy(&Value::sym("false")));
        assert!(truthy(&Value::sym("true")));
        assert!(truthy(&Value::Int(0)));
        assert_eq!(bool_value(true), Value::sym("true"));
        assert_eq!(bool_value(false), Value::sym("false"));
    }
}
