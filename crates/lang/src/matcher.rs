//! The interface every match algorithm implements.
//!
//! The engine drives a matcher through working-memory changes and reads back
//! conflict-set deltas — the `+` / `-` / `time` token protocol of the
//! paper's §5. Rete (`sorete-rete`), TREAT (`sorete-treat`) and the naive
//! oracle (`sorete-naive`) are interchangeable behind this trait.

use crate::analyze::AnalyzedRule;
use sorete_base::{
    ConflictItem, CsDelta, InstKey, MatchStats, MemoryReport, NetProfile, RuleId, Spans, Tracer,
    Wme,
};
use std::sync::Arc;

/// A production-match algorithm.
///
/// `Send` is a supertrait so whole matchers can be moved to (and driven
/// from) pool workers — the parallel backend shards rules across several
/// inner matchers and fans working-memory changes out across threads.
pub trait Matcher: Send {
    /// Compile a production into the match network. Returns the id the
    /// matcher will use in conflict-set deltas. Ids are assigned densely in
    /// call order, so the caller can index its own rule table with them.
    fn add_rule(&mut self, rule: Arc<AnalyzedRule>) -> RuleId;

    /// A WME entered working memory.
    fn insert_wme(&mut self, wme: &Wme);

    /// A WME left working memory.
    fn remove_wme(&mut self, wme: &Wme);

    /// Conflict-set changes accumulated since the previous drain, in
    /// emission order.
    fn drain_deltas(&mut self) -> Vec<CsDelta>;

    /// Fetch the current full contents of a conflict-set entry. `time`
    /// tokens are slim (the paper passes "only a pointer"); the engine
    /// calls this when an entry actually fires.
    ///
    /// For SOI keys, returns `None` when the γ-entry is gone or inactive.
    /// Tuple keys are fully determined by their tags, so matchers may
    /// reconstruct them unconditionally — callers only pass keys they saw
    /// in un-retracted deltas.
    fn materialize(&self, key: &InstKey) -> Option<ConflictItem>;

    /// Bulk-load a working memory into the network, in slice order —
    /// checkpoint resume rebuilding matcher state (γ-memories included)
    /// from the surviving WMEs. The default feeds [`Self::insert_wme`]
    /// one WME at a time; backends with a cheaper batch path may
    /// override. Callers drain deltas once afterwards.
    fn rebuild_from(&mut self, wmes: &[Wme]) {
        for w in wmes {
            self.insert_wme(w);
        }
    }

    /// Work counters.
    fn stats(&self) -> MatchStats;

    /// Short algorithm name for reports ("rete", "treat", "naive").
    fn algorithm_name(&self) -> &'static str;

    /// Graphviz rendering of the match network, if the algorithm has one.
    fn to_dot(&self) -> Option<String> {
        None
    }

    /// Exhaustive internal-consistency check (a test/debug aid, not part
    /// of the match protocol). Matchers that maintain derived state — the
    /// Rete hash-join indexes — compare it against a from-scratch rebuild
    /// and report the first divergence.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Excise a production: its conflict-set entries are retracted (as
    /// `Remove` deltas) and it never matches again. The id remains
    /// allocated (ids are positional) but inert.
    fn remove_rule(&mut self, rule: RuleId);

    /// Install the tracer through which the matcher emits *physical*
    /// [`sorete_base::TraceEvent`]s (alpha/beta activations, join probes,
    /// S-node activity). The default implementation ignores it; backends
    /// without instrumentation simply stay silent.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Install the span recorder through which the matcher emits
    /// *physical* execution spans (per-shard `shard_match` intervals on
    /// pool lanes). The default ignores it; monolithic backends have no
    /// internal parallelism worth a span.
    fn set_spans(&mut self, _spans: Spans) {}

    /// Enable or disable per-node profiling (activation counts and
    /// self-time attribution). Off by default; matchers without a network
    /// to profile ignore the call.
    fn set_profiling(&mut self, _on: bool) {}

    /// The per-node profile gathered since [`Matcher::set_profiling`] was
    /// enabled, or `None` when the backend does not profile.
    fn profile(&self) -> Option<NetProfile> {
        None
    }

    /// The static network path from the entry alpha memories down to the
    /// production node for `rule`, hottest description first — used by the
    /// `explain` command. `None` for backends without a network.
    fn rule_network_path(&self, _rule: RuleId) -> Option<Vec<String>> {
        None
    }

    /// Point-in-time byte-level memory accounting, one
    /// [`sorete_base::MemoryRegion`] per internal store (alpha memories,
    /// beta tokens, γ-memories, hash-index buckets, ...). Live-set
    /// methodology — see [`MemoryReport`]. The default reports nothing;
    /// the engine samples this once per cycle when metrics are enabled.
    fn memory_report(&self) -> MemoryReport {
        MemoryReport::default()
    }

    /// Backend-specific monotone counters beyond [`MatchStats`] — e.g. the
    /// S-node `+`/`-`/`time` token counts and γ-entry churn. Each entry is
    /// `(kind, total)`; the engine exposes them as one labeled counter
    /// family. The default reports nothing.
    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}
